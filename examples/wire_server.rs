//! Serving Maya over the network: a `maya-wire` TCP server on
//! loopback plus typed clients doing a full round trip.
//!
//! One process plays both roles so the example is self-contained and
//! CI-runnable: it binds a [`WireServer`] over a two-target
//! [`MayaService`], then drives it from concurrent [`WireClient`]s —
//! pipelined predictions, a config search, a ground-truth measurement,
//! a deliberate overload burst, and a graceful drain shutdown.
//!
//! Run with `cargo run --release --example wire_server`.

use std::sync::Arc;

use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_serve::{MayaService, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{AlgorithmKind, ConfigSpace, WireClient, WireServer};

fn job(cluster: &ClusterSpec, parallel: ParallelConfig) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel,
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 16 * cluster.num_gpus(),
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn main() {
    let h100 = ClusterSpec::h100(1, 4);
    let a40 = ClusterSpec::a40(1, 2);

    // The service is plain maya-serve — the wire layer wraps it
    // without touching engines. A memo cap keeps a network-facing
    // process bounded no matter what shapes clients send.
    let service = Arc::new(
        MayaService::builder()
            .target("h100-quad", EmulationSpec::new(h100.clone()))
            .target("a40-pair", EmulationSpec::new(a40.clone()))
            .workers(4)
            .queue_capacity(16)
            .memo_capacity(65_536)
            .build()
            .expect("service builds"),
    );
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let addr = server.local_addr();
    println!("wire server listening on {addr}");

    // Two concurrent clients over their own reused connections.
    std::thread::scope(|s| {
        s.spawn(|| {
            let client = WireClient::connect(addr).expect("connect");
            // Pipeline: both requests are in flight before either
            // response is read.
            let p1 = client
                .submit(&Request::Predict {
                    target: "h100-quad".into(),
                    jobs: vec![
                        job(&h100, ParallelConfig::default()),
                        job(
                            &h100,
                            ParallelConfig {
                                tp: 2,
                                ..Default::default()
                            },
                        ),
                    ],
                })
                .expect("submit predict");
            let p2 = client
                .submit(&Request::Measure {
                    target: "a40-pair".into(),
                    job: job(&a40, ParallelConfig::default()),
                })
                .expect("submit measure");
            let predict = p1.wait().expect("predict response");
            println!("predict: {}", predict.to_json());
            let measure = p2.wait().expect("measure response");
            println!("measure: {}", measure.to_json());
        });
        s.spawn(|| {
            let client = WireClient::connect(addr).expect("connect");
            let search = client
                .call(&Request::Search {
                    target: "h100-quad".into(),
                    template: job(&h100, ParallelConfig::default()),
                    space: ConfigSpace {
                        tp: vec![1, 2],
                        pp: vec![1, 2],
                        microbatch_multiplier: vec![1, 2],
                        virtual_stages: vec![1],
                        activation_recompute: vec![false],
                        sequence_parallel: vec![false],
                        distributed_optimizer: vec![false],
                    },
                    algorithm: AlgorithmKind::CmaEs,
                    budget: 8,
                    seed: 42,
                })
                .expect("search response");
            println!("search: {}", search.to_json());
            let best = search
                .search()
                .and_then(|s| s.best_time())
                .expect("search found a config");
            println!(
                "search best iteration time: {:.3} ms (queue wait {:?})",
                best.as_secs_f64() * 1e3,
                search.telemetry.queue_wait,
            );
        });
    });

    // Overload: burst past the 16-slot queue from one connection. The
    // shed requests come back as typed `overloaded` errors on the same
    // healthy connection — the wire never drops it.
    let client = WireClient::connect(addr).expect("connect");
    let burst: Vec<_> = (0..48)
        .map(|_| {
            client
                .submit(&Request::Predict {
                    target: "a40-pair".into(),
                    jobs: vec![job(&a40, ParallelConfig::default())],
                })
                .expect("submit")
        })
        .collect();
    let (mut served, mut shed) = (0, 0);
    for pending in burst {
        match pending.wait() {
            Ok(_) => served += 1,
            Err(e) if e.is_overloaded() => shed += 1,
            Err(e) => panic!("unexpected wire error: {e}"),
        }
    }
    println!("overload burst: {served} served, {shed} shed with typed Overloaded frames");
    assert!(served > 0, "admitted requests must be answered");

    let stats = server.stats();
    println!(
        "server stats: {} connections, {} admitted, {} overloaded, {} protocol errors",
        stats.connections, stats.admitted, stats.overloaded, stats.protocol_errors
    );

    // Graceful shutdown drains anything still in flight, then the
    // service keeps serving in-process callers.
    server.shutdown();
    let direct = service
        .call(Request::Predict {
            target: "h100-quad".into(),
            jobs: vec![job(&h100, ParallelConfig::default())],
        })
        .expect("service survives the front end");
    println!(
        "after shutdown, direct in-process call still served: {}",
        direct.predictions().unwrap()[0]
            .as_ref()
            .map(|p| p.to_json())
            .unwrap()
    );
}
