//! Maya-Serve: one service, many tenants, many clusters.
//!
//! Registers two named cluster targets, fans concurrent client requests
//! (predictions and a recipe search) through the service's shared
//! worker pool, prints the per-request telemetry — then persists the
//! estimator memo and warm-starts a second service instance from it,
//! the restart story of a long-running deployment.
//!
//! ```text
//! cargo run --release --example service
//! ```

use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, ConfigSpace};
use maya_serve::{MayaService, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn job(cluster: &ClusterSpec, tp: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig {
            tp,
            ..Default::default()
        },
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 64,
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn main() {
    let h100 = ClusterSpec::h100(1, 8);
    let a40 = ClusterSpec::a40(1, 4);
    // Process-unique dir: concurrent runs (or stale state from an older
    // binary with a different snapshot version) can't trip each other.
    let snapshot_dir =
        std::env::temp_dir().join(format!("maya-serve-example-{}", std::process::id()));

    let service = MayaService::builder()
        .target("h100-node", EmulationSpec::new(h100.clone()))
        .target("a40-node", EmulationSpec::new(a40.clone()))
        .workers(4)
        .queue_capacity(32)
        .snapshot_dir(&snapshot_dir)
        .build()
        .expect("service builds");
    println!("serving targets: {:?}", service.targets());

    // Concurrent clients: four prediction tenants plus one searching
    // for the best recipe — all multiplexed over one worker pool, all
    // H100 tenants sharing one estimator memo.
    let handles: Vec<_> = vec![
        service
            .submit(Request::Predict {
                target: "h100-node".into(),
                jobs: vec![job(&h100, 1), job(&h100, 2)],
            })
            .expect("admitted"),
        service
            .submit(Request::Predict {
                target: "h100-node".into(),
                jobs: vec![job(&h100, 2)], // same shapes: served from the shared cache
            })
            .expect("admitted"),
        service
            .submit(Request::Predict {
                target: "a40-node".into(),
                jobs: vec![job(&a40, 1)],
            })
            .expect("admitted"),
        service
            .submit(Request::Search {
                target: "h100-node".into(),
                template: job(&h100, 1),
                space: ConfigSpace {
                    tp: vec![1, 2, 4],
                    pp: vec![1, 2],
                    microbatch_multiplier: vec![1, 2],
                    virtual_stages: vec![1],
                    activation_recompute: vec![false],
                    sequence_parallel: vec![false],
                    distributed_optimizer: vec![false],
                },
                algorithm: AlgorithmKind::CmaEs,
                budget: 60,
                seed: 7,
            })
            .expect("admitted"),
    ];

    println!(
        "\n{:<10} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "kind", "worker", "queue wait", "service", "hits", "misses"
    );
    for handle in handles {
        let resp = handle.wait().expect("response");
        let t = &resp.telemetry;
        println!(
            "{:<10} {:>9} {:>12.3?} {:>12.3?} {:>10} {:>10}",
            resp.kind,
            t.worker,
            t.queue_wait,
            t.service_time,
            t.cache_delta.hits,
            t.cache_delta.misses
        );
        if let Some(result) = resp.search() {
            if let Some((config, _)) = &result.best {
                println!("           best recipe on h100-node: {config}");
            }
        }
    }

    let stats = service.stats();
    println!(
        "\nservice: {} requests served by {} workers over {} engine(s)",
        stats.served, stats.workers, stats.engines_built
    );

    // Persist the memo and warm-start a second service instance.
    let written = service.persist_snapshots().expect("snapshots persist");
    println!(
        "persisted {written} snapshot file(s) to {}",
        snapshot_dir.display()
    );
    drop(service);

    let restarted = MayaService::builder()
        .target("h100-node", EmulationSpec::new(h100.clone()))
        .target("a40-node", EmulationSpec::new(a40.clone()))
        .snapshot_dir(&snapshot_dir)
        .build()
        .expect("service rebuilds");
    let resp = restarted
        .call(Request::Predict {
            target: "h100-node".into(),
            jobs: vec![job(&h100, 2)],
        })
        .expect("warm response");
    println!(
        "after restart: repeated workload answered with {} cache misses ({} hits)",
        resp.telemetry.cache.misses, resp.telemetry.cache.hits
    );
    let _ = std::fs::remove_dir_all(&snapshot_dir);
}
