//! The observability subsystem end to end: metrics, span trees, the
//! remote `Scrape` frame, and the proof that it all costs ~nothing
//! when off.
//!
//! One process plays both roles so the example is self-contained and
//! CI-runnable: it binds a [`WireServer`] over a [`MayaService`] with
//! the default [`ObsConfig::on`], drives some work through it, then —
//!
//! 1. **per-response spans**: every reply carries its own job span
//!    tree (`job` → `queued` / `execute` → pipeline stages) in
//!    [`Telemetry::spans`];
//! 2. **remote scrape**: a v5 `Scrape` frame pulls the full
//!    [`ObsSnapshot`] — service counters, queue gauges, per-tenant
//!    wait/service histograms, the simulator's event/flow-solver
//!    tallies, and recent job trees — over the same connection the
//!    work went through;
//! 3. **determinism**: two back-to-back scrapes of a quiesced service
//!    are byte-identical (the scrape counter deliberately lives in the
//!    server's own stats, not the registry);
//! 4. **wall-clock accounting**: the newest job tree's children
//!    account for its whole duration (nothing untracked);
//! 5. **Chrome trace**: the flight recorder renders straight to
//!    `chrome://tracing` JSON;
//! 6. **zero-cost off switch**: the same service built with
//!    [`ObsConfig::off`] serves identically but scrapes empty.
//!
//! Run with `cargo run --release --example observability`.

use std::sync::Arc;
use std::time::Duration;

use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_serve::ObsConfig;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{
    AlgorithmKind, ConfigSpace, JobOptions, MayaService, Priority, Request, WireClient, WireServer,
};

const TARGET: &str = "h100-pair";

fn job(global_batch: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch,
        world: 2,
        gpus_per_node: 2,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn predict(global_batch: u32) -> Request {
    Request::Predict {
        target: TARGET.into(),
        jobs: vec![job(global_batch)],
    }
}

fn small_search() -> Request {
    Request::Search {
        target: TARGET.into(),
        template: job(16),
        space: ConfigSpace {
            tp: vec![1, 2],
            pp: vec![1],
            microbatch_multiplier: vec![1, 2],
            virtual_stages: vec![1],
            activation_recompute: vec![false],
            sequence_parallel: vec![false],
            distributed_optimizer: vec![true],
        },
        algorithm: AlgorithmKind::Grid,
        budget: 8,
        seed: 7,
    }
}

fn main() {
    let service = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(2)
            .build()
            .expect("service builds"),
    );
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let addr = server.local_addr();
    println!("wire server listening on {addr} (observability on by default)\n");
    let client = WireClient::connect(addr).expect("connect");

    // Drive some work through: a few predicts from two tenants plus a
    // small grid search, so every instrument has something to say.
    for (i, tenant) in [(1u32, "ops"), (2, "ops"), (3, "research")] {
        client
            .submit_with(
                &predict(8 * i),
                JobOptions::new()
                    .with_tenant(tenant)
                    .with_priority(Priority::Normal),
            )
            .expect("submit")
            .wait()
            .expect("served");
    }
    let search_resp = client.call(&small_search()).expect("search served");

    // 1) Every response carries its own span tree.
    let spans = &search_resp.telemetry.spans;
    assert_eq!(spans.len(), 1, "one job tree per response");
    let root = &spans[0];
    println!("search response span tree ({} nodes):", root.len());
    print_tree(root, 0);
    assert!(root.find("queued").is_some() && root.find("execute").is_some());

    // 2) Pull the full snapshot over the wire with a v5 Scrape frame.
    let snap = client.scrape().expect("scrape");
    println!(
        "\nscraped {} counters, {} gauges, {} histograms, {} recent job trees",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        snap.recent_jobs.len()
    );
    let served = snap.counter("serve.served").expect("served counter");
    let sim_events = snap
        .counter("sim.events_processed")
        .expect("sim events counter");
    let flow_solves = snap.counter("sim.flow_solves").unwrap_or(0);
    let heap_hw = snap
        .gauge("sim.heap_depth_high_water")
        .expect("heap high-water gauge");
    println!("  serve.served              = {served}");
    println!("  sim.events_processed      = {sim_events}");
    println!("  sim.flow_solves           = {flow_solves}");
    println!("  sim.heap_depth_high_water = {heap_hw}");
    assert!(served >= 4, "3 predicts + 1 search served");
    assert!(sim_events > 0, "the simulator published its event tally");
    assert!(heap_hw > 0, "the event heap was non-empty at some point");
    let waits = snap
        .histogram("serve.queue_wait_us.tenant.ops")
        .expect("per-tenant wait histogram");
    println!(
        "  tenant `ops` queue wait: {} samples, p50 {}us, p99 {}us",
        waits.count,
        waits.quantile(0.50),
        waits.quantile(0.99)
    );
    assert_eq!(waits.count, 2, "tenant `ops` queued twice");

    // 3) A quiesced service scrapes byte-identically: the snapshot is
    //    deterministic, and scraping is deliberately not self-counting.
    let a = client.scrape_raw().expect("scrape");
    let b = client.scrape_raw().expect("scrape");
    assert_eq!(a, b, "back-to-back scrapes of an idle service agree");
    println!(
        "\ntwo consecutive scrapes: byte-identical ({} bytes)",
        a.len()
    );

    // 4) The newest job tree accounts for the job's whole wall-clock:
    //    queued + execute + the wire server's appended reply span.
    let tree = snap.recent_jobs.last().expect("recent job tree");
    let covered = tree.child_coverage();
    println!(
        "newest job tree: {:?} total, {:?} covered by {} phases",
        tree.duration,
        covered,
        tree.children.len()
    );
    assert!(
        covered >= tree.duration.mul_f64(0.95),
        "phases must account for >=95% of the job ({covered:?} of {:?})",
        tree.duration
    );

    // 5) The flight recorder renders straight to chrome://tracing.
    let trace = service.chrome_trace();
    assert!(trace.starts_with('[') && trace.contains("\"sim.run\""));
    println!(
        "chrome trace: {} bytes (load at chrome://tracing)",
        trace.len()
    );

    server.shutdown();

    // 6) The off switch: same service, ObsConfig::off — identical
    //    answers, empty scrape. The uninstrumented path is the
    //    *default* sim core, byte-identical to the reference (that
    //    equivalence is pinned by tests; here we just show the knob).
    let dark = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .observability(ObsConfig::off())
            .build()
            .expect("service builds"),
    );
    let resp = dark.call(predict(8)).expect("served");
    assert!(resp.telemetry.spans.is_empty(), "no spans when off");
    let dark_snap = dark.obs_snapshot();
    assert!(
        dark_snap.counters.is_empty()
            && dark_snap.gauges.is_empty()
            && dark_snap.histograms.is_empty()
            && dark_snap.recent_jobs.is_empty(),
        "nothing registered, nothing recorded"
    );
    println!(
        "\nObsConfig::off: same answers, empty scrape — the instruments were never registered"
    );

    // Give the drained sockets a beat on slow CI machines.
    std::thread::sleep(Duration::from_millis(20));
    println!("done");
}

fn print_tree(node: &maya_wire::SpanNode, depth: usize) {
    println!(
        "{:indent$}{} @{:?} for {:?}",
        "",
        node.name,
        node.start,
        node.duration,
        indent = 2 + depth * 2
    );
    for c in &node.children {
        print_tree(c, depth + 1);
    }
}
