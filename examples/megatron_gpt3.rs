//! Prediction accuracy on Megatron-style GPT-3 training (the §7.2 flow).
//!
//! Trains the default random-forest estimator from profiled
//! microbenchmarks, predicts several GPT-3 2.7B recipes on a 8×V100
//! cluster, and compares against the ground-truth testbed — printing the
//! per-config error like a row of Figure 7.
//!
//! ```text
//! cargo run --release --example megatron_gpt3
//! ```

use maya::MayaBuilder;
use maya_estimator::ProfileScale;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    let cluster = ClusterSpec::v100(1, 8);
    println!("profiling kernels and training the random-forest estimator...");
    let maya = MayaBuilder::new(cluster.clone())
        .forest(ProfileScale::Test, 42)
        .build()
        .expect("builds");

    let recipes = [
        ParallelConfig {
            tp: 1,
            pp: 2,
            microbatch_multiplier: 2,
            activation_recompute: true,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            pp: 1,
            microbatch_multiplier: 2,
            activation_recompute: true,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            activation_recompute: true,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            pp: 4,
            microbatch_multiplier: 2,
            activation_recompute: true,
            ..Default::default()
        },
        ParallelConfig {
            tp: 4,
            pp: 2,
            microbatch_multiplier: 2,
            activation_recompute: true,
            ..Default::default()
        },
    ];

    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "config", "predicted", "actual", "error"
    );
    for parallel in recipes {
        let job = TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            parallel,
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 16,
            world: cluster.num_gpus(),
            gpus_per_node: cluster.gpus_per_node,
            precision: Dtype::Fp16,
            iterations: 1,
        };
        let pred = maya.predict_job(&job).expect("pipeline runs");
        let actual = maya.measure_actual(&job).expect("testbed runs");
        match (pred.iteration_time(), actual) {
            (Some(p), Ok(m)) => {
                let a = m.iteration_time;
                let err = (p.as_secs_f64() / a.as_secs_f64() - 1.0) * 100.0;
                println!(
                    "{:<28} {:>12} {:>12} {:>7.2}%",
                    parallel.to_string(),
                    p.to_string(),
                    a.to_string(),
                    err
                );
            }
            (None, _) => println!("{:<28} predicted OOM", parallel.to_string()),
            (_, Err(peak)) => {
                println!("{:<28} actual OOM at {} bytes", parallel.to_string(), peak)
            }
        }
    }
}
