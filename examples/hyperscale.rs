//! Hyperscale modeling: thousands of GPUs with selective worker launch
//! (§7.4 / Figure 12's setting, scaled to run in seconds).
//!
//! With Megatron-aware selective launch, only one worker per pipeline
//! stage is emulated no matter how large the data-parallel degree gets;
//! collective wire times for the full communicator come from the
//! topology-aware network model (the paper plugs in ASTRA-sim here).
//!
//! ```text
//! cargo run --release --example hyperscale
//! ```

use maya::MayaBuilder;
use maya_hw::{mfu, ClusterSpec};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    // GPT-3 18.4B, TP8 PP8, growing DP — a scaled-down cousin of the
    // paper's 145.6B study that finishes quickly in an example.
    println!(
        "{:>6} {:>6} {:>14} {:>8} {:>10}",
        "GPUs", "DP", "iter time", "MFU", "emulated"
    );
    for dp in [2u32, 4, 8, 16] {
        let world = 8 * 8 * dp;
        let cluster = ClusterSpec::h100(world / 8, 8);
        let maya = MayaBuilder::new(cluster.clone())
            .selective_launch(true)
            .build()
            .expect("builds");
        let parallel = ParallelConfig {
            tp: 8,
            pp: 8,
            microbatch_multiplier: 2,
            activation_recompute: true,
            sequence_parallel: true,
            distributed_optimizer: true,
            ..Default::default()
        };
        let job = TrainingJob {
            model: ModelSpec::gpt3_18_4b(),
            parallel,
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 16 * dp * parallel.num_microbatches(),
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        };
        let pred = maya.predict_job(&job).expect("pipeline runs");
        match pred.report() {
            None => println!("{world:>6} {dp:>6} OOM"),
            Some(report) => {
                let spec = job.flops_spec().expect("transformer");
                let m = mfu::mfu(&spec, report.total_time.as_secs_f64(), &cluster);
                println!(
                    "{:>6} {:>6} {:>14} {:>7.1}% {:>10}",
                    world,
                    dp,
                    report.total_time.to_string(),
                    m * 100.0,
                    pred.workers_emulated
                );
            }
        }
    }
    println!("\n(8 emulated workers regardless of cluster size: one per pipeline stage)");
}
