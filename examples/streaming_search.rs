//! The job-oriented serving flow over loopback TCP: submit a long
//! search, watch its progress stream live, bound another job with a
//! deadline, and cancel a third mid-flight.
//!
//! One process plays both roles so the example is self-contained and
//! CI-runnable: it binds a [`WireServer`] over a [`MayaService`], then
//! drives the [`WireClient`] job API end to end —
//!
//! 1. **stream**: a `Search` job's `Progress` frames arrive while it
//!    runs; their concatenated trial batches equal the final result
//!    exactly;
//! 2. **cancel**: a second identical search is cancelled after the
//!    first progress frame and comes back `Cancelled` with the
//!    deterministic committed prefix of run 1;
//! 3. **deadline**: a job submitted behind a busy worker with a
//!    zero budget is shed as `Expired` without ever executing;
//! 4. **retry**: a burst against a 1-slot queue rides out the typed
//!    `overloaded` shedding with bounded exponential backoff.
//!
//! Run with `cargo run --release --example streaming_search`.

use std::sync::Arc;
use std::time::Duration;

use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_serve::{MayaService, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{
    AlgorithmKind, Backoff, ConfigSpace, JobOptions, WireClient, WireJobOutcome, WireServer,
};

const TARGET: &str = "h100-quad";

fn job(cluster: &ClusterSpec) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 16 * cluster.num_gpus(),
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn search(cluster: &ClusterSpec, budget: usize) -> Request {
    Request::Search {
        target: TARGET.into(),
        template: job(cluster),
        space: ConfigSpace {
            tp: vec![1, 2],
            pp: vec![1, 2],
            microbatch_multiplier: vec![1, 2],
            virtual_stages: vec![1],
            activation_recompute: vec![true, false],
            sequence_parallel: vec![false],
            distributed_optimizer: vec![true, false],
        },
        algorithm: AlgorithmKind::Random,
        budget,
        seed: 42,
    }
}

fn main() {
    let h100 = ClusterSpec::h100(1, 4);
    let service = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(h100.clone()))
            .workers(2)
            .queue_capacity(2)
            .memo_capacity(65_536)
            // Long-lived deployments also age stale memo entries out.
            .memo_ttl(Duration::from_secs(3600))
            .build()
            .expect("service builds"),
    );
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let addr = server.local_addr();
    println!("wire server listening on {addr}");

    // 1) Stream a long search's progress live.
    let client = WireClient::connect(addr).expect("connect");
    let mut streaming = client.submit(&search(&h100, 40)).expect("submit search");
    let mut batches = 0usize;
    let mut streamed = Vec::new();
    while let Some(event) = streaming.next_progress() {
        batches += 1;
        println!(
            "progress {batches:2}: +{} trials ({} committed), best mfu {}, cache Δ {}h/{}m",
            event.trials.len(),
            event.committed,
            event
                .best
                .and_then(|(_, o)| o.mfu())
                .map_or("-".into(), |m| format!("{m:.3}")),
            event.cache_delta.hits,
            event.cache_delta.misses,
        );
        streamed.extend(event.trials);
    }
    let outcome = streaming.wait_outcome().expect("terminal frame");
    let WireJobOutcome::Done(resp) = outcome else {
        panic!("expected Done, got {outcome:?}");
    };
    let full = resp.search().expect("search payload").clone();
    assert!(batches >= 2, "a 40-trial search spans several waves");
    assert_eq!(
        serde::to_string(&streamed),
        serde::to_string(&full.trials),
        "streamed batches must reassemble the result byte-for-byte"
    );
    println!(
        "streamed search done: {} trials over {batches} progress frames, best {:.3} ms\n",
        full.trials.len(),
        full.best_time().expect("a config completed").as_secs_f64() * 1e3,
    );

    // 2) Cancel the same search mid-flight: the partial result is an
    //    exact prefix of the run above (deterministic pipeline +
    //    commit-boundary cancellation).
    let mut doomed = client.submit(&search(&h100, 40)).expect("submit search");
    let first = doomed.next_progress().expect("one wave before cancel");
    doomed.cancel().expect("send cancel frame");
    println!(
        "cancelled after the first progress frame ({} trials committed)...",
        first.committed
    );
    match doomed.wait_outcome().expect("terminal frame") {
        WireJobOutcome::Cancelled(Some(resp)) => {
            let partial = resp.search().unwrap();
            assert_eq!(
                serde::to_string(&partial.trials),
                serde::to_string(&full.trials[..partial.trials.len()].to_vec()),
                "cancelled prefix must match the uncancelled run"
            );
            println!(
                "cancelled with {} committed trials — an exact prefix of the full run\n",
                partial.trials.len()
            );
        }
        other => panic!("expected Cancelled with a prefix, got {other:?}"),
    }

    // 3) Deadlines shed queued work before it costs anything: park a
    //    long search on the worker pool, then submit a job whose
    //    budget is already gone.
    let mut blocker_a = client.submit(&search(&h100, 4_000)).expect("submit");
    let mut blocker_b = client.submit(&search(&h100, 4_000)).expect("submit");
    // Their first progress frames prove both searches are on workers
    // (and the admission queue is empty again).
    let _ = blocker_a.next_progress().expect("blocker A running");
    let _ = blocker_b.next_progress().expect("blocker B running");
    let hopeless = client
        .submit_with(
            &Request::Predict {
                target: TARGET.into(),
                jobs: vec![job(&h100)],
            },
            JobOptions::new().with_deadline(Duration::ZERO),
        )
        .expect("submit with deadline");
    match hopeless.wait_outcome().expect("terminal frame") {
        WireJobOutcome::Expired(None) => {
            println!(
                "deadline job shed while queued (service expired count: {})\n",
                service.stats().expired
            );
        }
        other => panic!("expected Expired(None), got {other:?}"),
    }
    blocker_a.cancel().expect("cancel");
    blocker_b.cancel().expect("cancel");
    let _ = blocker_a.wait_outcome();
    let _ = blocker_b.wait_outcome();

    // 4) Overload + retry: enough concurrent callers to overrun the
    //    2-slot queue are shed with typed frames; bounded backoff
    //    rides it out.
    std::thread::scope(|s| {
        for _ in 0..6 {
            s.spawn(|| {
                let client = WireClient::connect(addr).expect("connect");
                for _ in 0..3 {
                    client
                        .submit_with_retry(
                            &Request::Predict {
                                target: TARGET.into(),
                                jobs: vec![job(&h100)],
                            },
                            Backoff::default(),
                        )
                        .expect("retries ride out the shedding");
                }
            });
        }
    });
    let stats = server.stats();
    println!(
        "server stats: {} connections, {} admitted, {} overloaded, {} cancel frames",
        stats.connections, stats.admitted, stats.overloaded, stats.cancels
    );

    server.shutdown();
    println!("graceful shutdown complete");
}
