//! Vision workloads: ResNet-152 under DDP on an 8×A40 node (Figure 10's
//! setting), with and without torch.compile-style fusion.
//!
//! ```text
//! cargo run --release --example resnet_vision
//! ```

use maya::MayaBuilder;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    let cluster = ClusterSpec::a40(1, 8);
    let maya = MayaBuilder::new(cluster.clone()).build().expect("builds");

    println!(
        "{:<30} {:>12} {:>12} {:>8}",
        "config", "predicted", "actual", "error"
    );
    for (batch, compile) in [
        (128u32, false),
        (128, true),
        (256, false),
        (256, true),
        (512, false),
        (512, true),
    ] {
        let job = TrainingJob {
            model: ModelSpec::resnet152(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Ddp,
            compile,
            global_batch: batch,
            world: cluster.num_gpus(),
            gpus_per_node: cluster.gpus_per_node,
            precision: Dtype::Fp32,
            iterations: 1,
        };
        let label = format!("batch {batch}{}", if compile { " +compile" } else { "" });
        let pred = maya.predict_job(&job).expect("pipeline runs");
        let actual = maya.measure_actual(&job).expect("testbed runs");
        match (pred.iteration_time(), actual) {
            (Some(p), Ok(m)) => {
                let a = m.iteration_time;
                let err = (p.as_secs_f64() / a.as_secs_f64() - 1.0) * 100.0;
                println!(
                    "{:<30} {:>12} {:>12} {:>7.2}%",
                    label,
                    p.to_string(),
                    a.to_string(),
                    err
                );
            }
            (None, _) => println!("{label:<30} predicted OOM"),
            (_, Err(_)) => println!("{label:<30} actual OOM"),
        }
    }
}
