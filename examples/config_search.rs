//! Maya-Search: find the cheapest training recipe without touching a GPU
//! (the §7.3 flow).
//!
//! Searches the Table 5 knob space for GPT-3 2.7B on 8×H100 with CMA-ES,
//! caching, fidelity-preserving pruning and early stopping, then prints
//! the best recipe plus the trial-status breakdown (Figure 15's bars).
//!
//! ```text
//! cargo run --release --example config_search
//! ```

use maya::MayaBuilder;
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, ConfigSpace, Objective, TrialScheduler};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    let cluster = ClusterSpec::h100(1, 8);
    let maya = MayaBuilder::new(cluster.clone())
        .selective_launch(true)
        .build()
        .expect("builds");

    let template = TrainingJob {
        model: ModelSpec::gpt3_2_7b(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 64,
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    };
    let objective = Objective::new(maya.engine(), template);

    // A reduced space keeps the example snappy; drop `.with_space` to
    // search the full 1920-point Table 5 space.
    let space = ConfigSpace {
        tp: vec![1, 2, 4],
        pp: vec![1, 2, 4],
        microbatch_multiplier: vec![1, 2, 4],
        virtual_stages: vec![1, 2],
        activation_recompute: vec![true, false],
        sequence_parallel: vec![true, false],
        distributed_optimizer: vec![true, false],
    };

    println!(
        "searching {} candidate recipes with CMA-ES...",
        space.cardinality()
    );
    let result =
        TrialScheduler::new(&objective)
            .with_space(space)
            .run(AlgorithmKind::CmaEs, 400, 7);

    match &result.best {
        None => println!("no feasible configuration found"),
        Some((config, outcome)) => {
            println!("best recipe : {config}");
            if let maya_search::TrialOutcome::Completed {
                iteration_time,
                mfu,
                cost,
            } = outcome
            {
                println!("iteration   : {iteration_time}");
                println!("MFU         : {:.1}%", mfu * 100.0);
                println!("cost/iter   : ${cost:.4}");
            }
        }
    }
    println!(
        "trials: {} executed, {} cached, {} skipped by pruning, {} invalid",
        result.stats.executed, result.stats.cached, result.stats.skipped, result.stats.invalid
    );
    println!("search wall time: {:.2?}", result.wall);
}
