//! Modeling an imperfect cluster: heterogeneous ranks, injected
//! faults, and a cost-aware search.
//!
//! Three passes over the same GPT-3 125M job on one 8-GPU node:
//!
//! 1. A clean homogeneous H100 prediction (the baseline).
//! 2. The same node with a link topology (collectives now share
//!    bandwidth), two ranks downgraded to A100s, and a seed-drawn
//!    fault plan — a straggler window plus a mid-run rank failure
//!    with a checkpoint/restart cost.
//! 3. A cost-weighted configuration search that prices trials by
//!    GPU-hour dollars *plus* the energy bill from a datacenter power
//!    model, instead of iteration time alone.
//!
//! ```text
//! cargo run --release --example faulty_cluster
//! ```

use maya::{FaultPlan, MayaBuilder, PredictOutcome};
use maya_hw::{ClusterSpec, GpuSpec, HeteroPool, PowerModel, RankClass};
use maya_search::{AlgorithmKind, ConfigSpace, Objective, TrialScheduler};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn job_for(cluster: &ClusterSpec) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 32,
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn main() {
    // 1. Clean baseline: homogeneous H100 node, no topology, no faults.
    let clean_cluster = ClusterSpec::h100(1, 8);
    let job = job_for(&clean_cluster);
    let clean = MayaBuilder::new(clean_cluster.clone())
        .build()
        .expect("builds")
        .predict_job(&job)
        .expect("predicts");
    let clean_report = match &clean.outcome {
        PredictOutcome::Completed(r) => r.clone(),
        PredictOutcome::OutOfMemory { rank, .. } => {
            panic!("baseline unexpectedly OOMs on rank {rank}")
        }
    };
    println!("clean H100 node     : {}", clean_report.total_time);

    // 2. The imperfect version of the same node: shared-bandwidth
    //    links, two ranks one generation behind, and a deterministic
    //    fault plan drawn over the clean horizon (so the failure lands
    //    mid-run). The same (seed, world, horizon) triple names this
    //    exact fault schedule forever.
    let imperfect_cluster =
        clean_cluster
            .clone()
            .with_default_topology()
            .with_hetero(HeteroPool::new(vec![RankClass {
                gpu: GpuSpec::a100(),
                count: 2,
            }]));
    let faults = FaultPlan::generate(42, job.world, clean_report.total_time);
    println!(
        "fault plan (seed 42): {} straggler window(s), {} rank failure(s)",
        faults.stragglers.len(),
        faults.failures.len()
    );
    for f in &faults.failures {
        println!(
            "  rank {} fails at {} (restart cost {})",
            f.rank, f.at, f.restart_cost
        );
    }
    let faulty = MayaBuilder::new(imperfect_cluster.clone())
        .faults(faults)
        .build()
        .expect("builds")
        .predict_job(&job)
        .expect("predicts");
    let faulty_report = match &faulty.outcome {
        PredictOutcome::Completed(r) => r.clone(),
        PredictOutcome::OutOfMemory { rank, .. } => {
            panic!("faulty run unexpectedly OOMs on rank {rank}")
        }
    };
    let slowdown =
        faulty_report.total_time.as_secs_f64() / clean_report.total_time.as_secs_f64().max(1e-12);
    println!(
        "imperfect cluster   : {} ({slowdown:.2}x the clean run)",
        faulty_report.total_time
    );
    assert!(
        faulty_report.total_time > clean_report.total_time,
        "contention + stragglers + a restart must cost time"
    );

    // 3. Search the recipe space on the imperfect cluster, pricing each
    //    trial with GPU-hour dollars plus the datacenter energy bill.
    let maya = MayaBuilder::new(imperfect_cluster).build().expect("builds");
    let objective = Objective::cost_weighted(maya.engine(), job, PowerModel::datacenter());
    let space = ConfigSpace {
        tp: vec![1, 2, 4],
        pp: vec![1, 2],
        microbatch_multiplier: vec![1, 2],
        virtual_stages: vec![1],
        activation_recompute: vec![true, false],
        sequence_parallel: vec![false],
        distributed_optimizer: vec![false],
    };
    let result = TrialScheduler::new(&objective)
        .with_space(space)
        .run(AlgorithmKind::Grid, 24, 0);
    match &result.best {
        None => println!("no feasible configuration found"),
        Some((config, outcome)) => {
            println!("cheapest recipe     : {config}");
            if let maya_search::TrialOutcome::Completed {
                iteration_time,
                mfu,
                cost,
            } = outcome
            {
                println!("  iteration         : {iteration_time}");
                println!("  MFU               : {:.1}%", mfu * 100.0);
                println!("  cost/iter         : ${cost:.6} (gpu-hours + energy)");
            }
        }
    }
    println!(
        "trials: {} executed, {} cached, {} skipped, {} invalid",
        result.stats.executed, result.stats.cached, result.stats.skipped, result.stats.invalid
    );
}
