//! Quickstart: predict a training iteration without any GPU.
//!
//! Runs an unmodified "training script" (a GPT-3 125M data-parallel job)
//! against Maya's virtual devices, then prints the simulation report —
//! the flow of the paper's Figure 5.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use maya::MayaBuilder;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    // 1. Describe the deployment: one DGX-H100 node.
    let cluster = ClusterSpec::h100(1, 8);

    // 2. Build the Maya virtual runtime. The builder defaults to the
    //    oracle estimator (true per-op runtimes); chain
    //    `.forest(scale, seed)` to profile + fit the random forest
    //    instead (see the megatron_gpt3 example), or `.snapshot_path`
    //    to warm-start the estimator memo from a previous run.
    let maya = MayaBuilder::new(cluster.clone()).build().expect("builds");

    // 3. The user workload: unmodified training code. Here, torchlet's
    //    GPT-3 125M with a Megatron-style recipe.
    let job = TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig {
            tp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 64,
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    };
    println!("workload: {}", job.describe());

    // 4. Predict.
    let prediction = maya.predict_job(&job).expect("pipeline runs");
    match prediction.report() {
        None => println!("predicted: OUT OF MEMORY"),
        Some(report) => {
            println!("predicted batch time   : {}", report.total_time);
            println!("communication time     : {}", report.comm_time);
            println!("peak memory usage      : {:.1} GiB", report.peak_mem_gib());
            println!(
                "workers emulated/simulated: {}/{} (worker dedup)",
                prediction.workers_emulated, prediction.workers_simulated
            );
            println!("trace events simulated : {}", prediction.trace_events);
        }
    }

    // 5. Bonus: the same transparency works for arbitrary device-API
    //    code, not just torchlet models.
    let traces = maya.trace_workload(&[0], |_rank, ctx| {
        let blas = ctx.cublas_create();
        ctx.cublas_gemm_ex(blas, 4096, 4096, 4096, Dtype::Bf16)?;
        ctx.device_synchronize();
        Ok(())
    });
    println!(
        "custom script traced {} kernel(s) through the device API",
        traces[0].0.summary.num_kernels
    );
}
