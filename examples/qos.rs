//! Per-tenant QoS over loopback TCP: two tenants share one service —
//! a bursting batch pipeline and a quiet interactive caller — and the
//! QoS admission queue keeps them fair.
//!
//! One process plays both roles so the example is self-contained and
//! CI-runnable: it binds a [`WireServer`] over a [`MayaService`] with
//! per-tenant quotas, then drives the [`WireClient`] end to end —
//!
//! 1. **burst + quota**: tenant `pipeline` parks a long `Batch` search
//!    on the single worker and floods the queue; its submissions past
//!    the per-tenant cap come back as typed `quota_exceeded` frames
//!    while the connection keeps serving;
//! 2. **priority overtake**: tenant `interactive` submits one `High`
//!    job after the flood — it is dispatched before every queued
//!    `Batch` job (visible in the cache telemetry: the High job pays
//!    the cold misses for the shape all contenders share);
//! 3. **deadline-capped retry**: a retry loop bounded by the job's own
//!    deadline gives up with the typed expired error instead of
//!    backing off past it;
//! 4. **stats**: the service's per-tenant counters tell the whole
//!    story (admitted / served / quota-shed per tenant).
//!
//! Run with `cargo run --release --example qos`.

use std::sync::Arc;
use std::time::Duration;

use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_serve::{MayaService, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{
    AlgorithmKind, Backoff, ConfigSpace, JobOptions, Priority, RemoteErrorKind, WireClient,
    WireError, WireServer,
};

const TARGET: &str = "h100-pair";

fn job(global_batch: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch,
        world: 2,
        gpus_per_node: 2,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

/// A shape nothing else in this example submits: the first-executed of
/// several identical such requests pays the engine's cold misses,
/// which makes dispatch order visible in the response telemetry.
fn cold_predict() -> Request {
    Request::Predict {
        target: TARGET.into(),
        jobs: vec![job(48)],
    }
}

/// A search over a wide space (many distinct cold configurations and
/// a deep budget), so it occupies the worker for the demo's duration.
fn long_search(seed: u64) -> Request {
    Request::Search {
        target: TARGET.into(),
        template: job(16),
        space: ConfigSpace {
            tp: vec![1, 2],
            pp: vec![1, 2],
            microbatch_multiplier: vec![1, 2, 4],
            virtual_stages: vec![1, 2],
            activation_recompute: vec![true, false],
            sequence_parallel: vec![false, true],
            distributed_optimizer: vec![true, false],
        },
        algorithm: AlgorithmKind::Random,
        budget: 500_000,
        seed,
    }
}

fn main() {
    let service = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .queue_capacity(16)
            .tenant_max_queued(2)
            // This demo shows class order; a long guard keeps a slow
            // CI machine from aging the Batch flood into High class
            // mid-run (aging is its own feature, tested in-crate).
            .starvation_guard(Duration::from_secs(3600))
            .build()
            .expect("service builds"),
    );
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let addr = server.local_addr();
    println!("wire server listening on {addr} (1 worker, tenant quota: 2 queued)\n");
    let client = WireClient::connect(addr).expect("connect");

    // 1) Tenant `pipeline` bursts: a long Batch search occupies the
    //    single worker, then a flood of Batch predicts hits the queue.
    let pipeline = |p: Priority| JobOptions::new().with_priority(p).with_tenant("pipeline");
    let mut blocker = client
        .submit_with(&long_search(42), pipeline(Priority::Batch))
        .expect("submit blocker");
    let _ = blocker.next_progress().expect("blocker running");
    println!("tenant `pipeline`: long Batch search running on the only worker");

    let mut admitted = Vec::new();
    let mut shed = 0u32;
    for i in 1..=4 {
        let job = client
            .submit_with(&cold_predict(), pipeline(Priority::Batch))
            .expect("submit");
        // The quota verdict arrives as this job's typed terminal
        // frame; probe it by submitting and redeeming one at a time.
        if i <= 2 {
            admitted.push(job);
            println!("tenant `pipeline`: batch predict {i} admitted");
        } else {
            match job.wait() {
                Err(WireError::Remote(e)) if e.kind == RemoteErrorKind::QuotaExceeded => {
                    shed += 1;
                    println!("tenant `pipeline`: batch predict {i} shed — {e}");
                }
                other => panic!("expected quota shed, got {other:?}"),
            }
        }
    }
    assert_eq!(shed, 2, "submissions past the 2-queued cap are shed");

    // 2) Tenant `interactive` submits one High job after the flood —
    //    the scheduler will dispatch it before every queued Batch job.
    let quiet = client
        .submit_with(
            &cold_predict(),
            JobOptions::new()
                .with_priority(Priority::High)
                .with_tenant("interactive"),
        )
        .expect("submit interactive");
    println!("tenant `interactive`: High predict submitted (after the flood)");

    // 3) Deadline-capped retry: with the worker still parked on the
    //    cold search, fill the queue's remaining slots (distinct cold
    //    shapes, each costing real pipeline work to drain), then retry
    //    against the overload with a 100ms total budget. The loop
    //    stops at the budget with the typed expired error instead of
    //    sleeping through its multi-second backoff schedule.
    let fillers: Vec<_> = (0..13u32)
        .map(|i| {
            client
                .submit(&Request::Predict {
                    target: TARGET.into(),
                    jobs: vec![job(64 + 16 * i)],
                })
                .expect("fill queue")
        })
        .collect();
    let t0 = std::time::Instant::now();
    let verdict = client.submit_with_retry_opts(
        &cold_predict(),
        JobOptions::new().with_deadline(Duration::from_millis(100)),
        Backoff {
            attempts: 1_000,
            initial: Duration::from_millis(20),
            factor: 2,
            max_delay: Duration::from_millis(50),
        },
    );
    let elapsed = t0.elapsed();
    // The policy alone would sleep for ~50 seconds; the budget caps
    // it. Whatever the race with the draining queue, the loop is over
    // in roughly the 100ms budget — served, or typed `expired`.
    assert!(
        elapsed < Duration::from_secs(3),
        "the retry loop must not back off past the deadline: {elapsed:?}"
    );
    match verdict {
        Err(WireError::Remote(e)) if e.kind == RemoteErrorKind::Expired => {
            println!("retry with a 100ms budget gave up after {elapsed:?}: {e}\n");
        }
        Ok(_) => println!("retry landed inside its 100ms budget ({elapsed:?})\n"),
        other => panic!("expected served or typed expired, got {other:?}"),
    }

    // Release the worker and watch the overtake.
    blocker.cancel().expect("cancel blocker");
    let _ = blocker.wait_outcome();

    let quiet_resp = quiet.wait().expect("interactive served");
    assert!(
        quiet_resp.telemetry.cache_delta.misses > 0,
        "the High job must execute first (it pays the cold misses)"
    );
    println!(
        "interactive High job served FIRST: cold cache ({} misses)",
        quiet_resp.telemetry.cache_delta.misses
    );
    for (i, job) in admitted.into_iter().enumerate() {
        let resp = job.wait().expect("batch served");
        assert_eq!(
            resp.telemetry.cache_delta.misses, 0,
            "queued Batch jobs run after the High job"
        );
        println!(
            "pipeline Batch job {} served after it: warm cache ({} hits)",
            i + 1,
            resp.telemetry.cache_delta.hits
        );
    }

    // Drain the fillers so the ledger below is settled.
    for f in fillers {
        f.wait().expect("filler served");
    }

    // 4) The per-tenant ledger.
    let stats = service.stats();
    println!(
        "\nservice stats: served {}, cancelled {}, quota shed {}, expired {}",
        stats.served, stats.cancelled, stats.quota_shed, stats.expired
    );
    for t in &stats.tenants {
        println!(
            "  tenant {:12} admitted {:2}, served {:2}, quota shed {:2}, cancelled {:2}",
            format!("`{}`", t.tenant),
            t.admitted,
            t.served,
            t.quota_shed,
            t.cancelled
        );
    }
    let pipeline_stats = stats.tenant("pipeline").expect("pipeline tracked");
    assert!(pipeline_stats.quota_shed >= 2);
    assert_eq!(stats.tenant("interactive").unwrap().served, 1);

    server.shutdown();
    println!("\ngraceful shutdown complete");
}
