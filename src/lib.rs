//! Workspace-level re-exports for integration tests and examples.
pub use maya;
