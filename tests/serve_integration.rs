//! End-to-end exercise of `maya-serve`: concurrent clients, mixed
//! request kinds, two cluster targets, byte-identical results against
//! direct engine calls, and cross-process-style snapshot warm-starts.

use maya::{EmulationSpec, MayaBuilder};
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, ConfigSpace, Objective, TrialScheduler};
use maya_serve::{MayaService, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

const H100_TARGET: &str = "h100-quad";
const A40_TARGET: &str = "a40-pair";

fn h100_cluster() -> ClusterSpec {
    ClusterSpec::h100(1, 4)
}

fn a40_cluster() -> ClusterSpec {
    ClusterSpec::a40(1, 2)
}

fn job(cluster: &ClusterSpec, parallel: ParallelConfig) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel,
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 16 * cluster.num_gpus(),
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn search_space() -> ConfigSpace {
    ConfigSpace {
        tp: vec![1, 2],
        pp: vec![1, 2],
        microbatch_multiplier: vec![1, 2],
        virtual_stages: vec![1],
        activation_recompute: vec![false],
        sequence_parallel: vec![false],
        distributed_optimizer: vec![false],
    }
}

fn service() -> MayaService {
    MayaService::builder()
        .target(H100_TARGET, EmulationSpec::new(h100_cluster()))
        .target(A40_TARGET, EmulationSpec::new(a40_cluster()))
        .workers(4)
        .queue_capacity(32)
        .build()
        .expect("service builds")
}

#[test]
fn concurrent_mixed_requests_match_direct_engine_calls() {
    let service = service();
    let h100 = h100_cluster();
    let a40 = a40_cluster();

    let tp2 = ParallelConfig {
        tp: 2,
        ..Default::default()
    };
    let pp2 = ParallelConfig {
        pp: 2,
        ..Default::default()
    };

    // Six concurrent clients: four predict tenants (both targets),
    // two searchers with different algorithms.
    let requests = vec![
        Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100, ParallelConfig::default()), job(&h100, tp2)],
        },
        Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100, pp2)],
        },
        Request::Predict {
            target: A40_TARGET.into(),
            jobs: vec![job(&a40, ParallelConfig::default())],
        },
        Request::Predict {
            target: A40_TARGET.into(),
            jobs: vec![job(&a40, tp2)],
        },
        Request::Search {
            target: H100_TARGET.into(),
            template: job(&h100, ParallelConfig::default()),
            space: search_space(),
            algorithm: AlgorithmKind::CmaEs,
            budget: 40,
            seed: 11,
        },
        Request::Search {
            target: H100_TARGET.into(),
            template: job(&h100, ParallelConfig::default()),
            space: search_space(),
            algorithm: AlgorithmKind::Random,
            budget: 30,
            seed: 5,
        },
    ];

    // Submit everything from distinct client threads, then gather.
    let responses: Vec<maya_serve::Response> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .into_iter()
            .map(|req| {
                let service = &service;
                s.spawn(move || service.call(req).expect("served"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Reference: direct PredictionEngine / TrialScheduler runs, one
    // fresh engine per cluster (cold caches cannot change values, only
    // telemetry — every stage is deterministic).
    let h100_engine = MayaBuilder::new(h100.clone()).build_engine();
    let a40_engine = MayaBuilder::new(a40.clone()).build_engine();

    // Every prediction completed; the real value-level comparisons
    // against direct engine runs follow below, job by job.
    for resp in &responses {
        match resp.kind {
            "predict" => {
                for served in resp.predictions().expect("predict payload") {
                    let served = served.as_ref().expect("prediction succeeds");
                    assert!(!served.oom(), "no test job OOMs");
                }
            }
            "search" => {}
            other => panic!("unexpected kind {other}"),
        }
    }

    // Byte-identical predict results, job by job.
    for (parallel, target) in [
        (ParallelConfig::default(), H100_TARGET),
        (tp2, H100_TARGET),
        (pp2, H100_TARGET),
        (ParallelConfig::default(), A40_TARGET),
        (tp2, A40_TARGET),
    ] {
        let (engine, cluster) = if target == H100_TARGET {
            (&h100_engine, &h100)
        } else {
            (&a40_engine, &a40)
        };
        let direct = engine.predict_job(&job(cluster, parallel)).unwrap();
        let served = responses
            .iter()
            .filter(|r| r.kind == "predict" && r.target == target)
            .flat_map(|r| r.predictions().unwrap())
            .map(|p| p.as_ref().unwrap())
            .find(|p| {
                p.iteration_time() == direct.iteration_time()
                    && p.trace_events == direct.trace_events
            })
            .unwrap_or_else(|| panic!("no served prediction matches direct run of {parallel:?}"));
        assert_eq!(served.workers_emulated, direct.workers_emulated);
        assert_eq!(served.workers_simulated, direct.workers_simulated);
        assert_eq!(served.oom(), direct.oom());
    }

    // Byte-identical search results (best config, trials, stats,
    // convergence — everything but wall clock).
    for (algorithm, budget, seed) in [
        (AlgorithmKind::CmaEs, 40usize, 11u64),
        (AlgorithmKind::Random, 30, 5),
    ] {
        let objective = Objective::new(&h100_engine, job(&h100, ParallelConfig::default()));
        let direct = TrialScheduler::new(&objective)
            .with_space(search_space())
            .run(algorithm, budget, seed);
        let served = responses
            .iter()
            .filter_map(|r| r.search())
            .find(|s| s.trials == direct.trials)
            .unwrap_or_else(|| panic!("no served search matches direct {algorithm:?} run"));
        assert_eq!(
            served.best.as_ref().map(|(c, o)| (*c, *o)),
            direct.best.as_ref().map(|(c, o)| (*c, *o))
        );
        assert_eq!(served.stats, direct.stats);
        assert_eq!(served.convergence, direct.convergence);
    }

    // Two targets, two engines; every request was served.
    let stats = service.stats();
    assert_eq!(stats.engines_built, 2);
    assert_eq!(stats.served, 6);
}

#[test]
fn measure_requests_match_direct_testbed_runs() {
    let service = service();
    let a40 = a40_cluster();
    let j = job(&a40, ParallelConfig::default());
    let resp = service
        .call(Request::Measure {
            target: A40_TARGET.into(),
            job: j,
        })
        .expect("served");
    let served = match resp.measurement().expect("measure payload") {
        Ok(maya_serve::MeasureOutcome::Completed(m)) => m.clone(),
        other => panic!("unexpected outcome {other:?}"),
    };
    let direct = MayaBuilder::new(a40.clone())
        .build_engine()
        .measure_actual(&j)
        .unwrap()
        .expect("fits");
    assert_eq!(served.iteration_time, direct.iteration_time);
    assert_eq!(served.rank_end_times, direct.rank_end_times);
    assert_eq!(served.peak_mem_bytes, direct.peak_mem_bytes);
}

#[test]
fn snapshot_from_one_service_warm_starts_the_next() {
    let dir = std::env::temp_dir().join(format!("maya-serve-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let h100 = h100_cluster();
    let a40 = a40_cluster();
    let build = || {
        MayaService::builder()
            .target(H100_TARGET, EmulationSpec::new(h100.clone()))
            .target(A40_TARGET, EmulationSpec::new(a40.clone()))
            .snapshot_dir(&dir)
            .build()
            .expect("service builds")
    };
    let workload = |service: &MayaService| {
        for (target, cluster) in [(H100_TARGET, &h100), (A40_TARGET, &a40)] {
            service
                .call(Request::Predict {
                    target: target.into(),
                    jobs: vec![
                        job(cluster, ParallelConfig::default()),
                        job(
                            cluster,
                            ParallelConfig {
                                tp: 2,
                                ..Default::default()
                            },
                        ),
                    ],
                })
                .expect("served");
        }
    };

    let first = build();
    workload(&first);
    let cold_h100 = first.cache_stats(H100_TARGET).unwrap();
    assert!(cold_h100.misses > 0, "cold run must miss");
    assert_eq!(first.persist_snapshots().expect("persist"), 2);
    drop(first);

    // A brand-new service instance (fresh registry, fresh engines)
    // restores both targets' memos and answers the repeated workload
    // without a single estimator-cache miss.
    let second = build();
    workload(&second);
    for target in [H100_TARGET, A40_TARGET] {
        let stats = second.cache_stats(target).unwrap();
        assert_eq!(
            stats.misses, 0,
            "{target}: warm-started service must re-derive nothing"
        );
        assert!(stats.hits > 0, "{target}: repeat workload hits the memo");
    }

    // And the warm answers are identical to the cold ones.
    let direct = MayaBuilder::new(h100.clone()).build_engine();
    let reference = direct
        .predict_job(&job(&h100, ParallelConfig::default()))
        .unwrap();
    let warm = second
        .call(Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100, ParallelConfig::default())],
        })
        .expect("served");
    let warm = warm.predictions().unwrap()[0].as_ref().unwrap();
    assert_eq!(warm.iteration_time(), reference.iteration_time());
    assert_eq!(warm.trace_events, reference.trace_events);

    let _ = std::fs::remove_dir_all(&dir);
}
