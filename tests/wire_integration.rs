//! End-to-end exercise of `maya-wire`: a real loopback TCP server over
//! a `MayaService`, concurrent pipelined clients, results checked
//! byte-identical to direct in-process service calls, typed overload
//! shedding, malformed-frame handling, and graceful drain shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use maya::{EmulationSpec, Prediction, StageTimings};
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, ConfigSpace};
use maya_serve::{MayaService, Payload, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{
    frame, RemoteError, RemoteErrorKind, WireClient, WireError, WireJobOutcome, WirePayload,
    WireResponse, WireServer,
};

const H100_TARGET: &str = "h100-quad";
const A40_TARGET: &str = "a40-pair";

fn h100_cluster() -> ClusterSpec {
    ClusterSpec::h100(1, 4)
}

fn a40_cluster() -> ClusterSpec {
    ClusterSpec::a40(1, 2)
}

fn job(cluster: &ClusterSpec, parallel: ParallelConfig) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel,
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 16 * cluster.num_gpus(),
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn search_space() -> ConfigSpace {
    ConfigSpace {
        tp: vec![1, 2],
        pp: vec![1, 2],
        microbatch_multiplier: vec![1, 2],
        virtual_stages: vec![1],
        activation_recompute: vec![false],
        sequence_parallel: vec![false],
        distributed_optimizer: vec![false],
    }
}

fn service() -> Arc<MayaService> {
    Arc::new(
        MayaService::builder()
            .target(H100_TARGET, EmulationSpec::new(h100_cluster()))
            .target(A40_TARGET, EmulationSpec::new(a40_cluster()))
            .workers(4)
            .queue_capacity(32)
            .build()
            .expect("service builds"),
    )
}

fn mixed_requests() -> Vec<Request> {
    let h100 = h100_cluster();
    let a40 = a40_cluster();
    let tp2 = ParallelConfig {
        tp: 2,
        ..Default::default()
    };
    let pp2 = ParallelConfig {
        pp: 2,
        ..Default::default()
    };
    vec![
        Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100, ParallelConfig::default()), job(&h100, tp2)],
        },
        Request::Predict {
            target: A40_TARGET.into(),
            jobs: vec![job(&a40, ParallelConfig::default())],
        },
        Request::Search {
            target: H100_TARGET.into(),
            template: job(&h100, ParallelConfig::default()),
            space: search_space(),
            algorithm: AlgorithmKind::Random,
            budget: 6,
            seed: 42,
        },
        Request::Measure {
            target: A40_TARGET.into(),
            job: job(&a40, pp2),
        },
        Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100, pp2)],
        },
        Request::Search {
            target: A40_TARGET.into(),
            template: job(&a40, ParallelConfig::default()),
            space: search_space(),
            algorithm: AlgorithmKind::OnePlusOne,
            budget: 5,
            seed: 7,
        },
    ]
}

/// Reissues an equal request (Request is not Clone by design).
fn reissue(req: &Request) -> Request {
    serde::from_str(&serde::to_string(req)).expect("request round-trips")
}

/// Strips the wall-clock fields (stage timings, search wall time) that
/// legitimately differ run to run, then encodes. Everything else —
/// outcomes, reports, trial records, convergence floats, error codes
/// and messages — must match byte for byte.
fn canonical(payload: &WirePayload) -> String {
    fn norm_pred(p: &Prediction) -> Prediction {
        Prediction {
            timings: StageTimings::default(),
            ..p.clone()
        }
    }
    let normalized = match payload {
        WirePayload::Predict(results) => WirePayload::Predict(
            results
                .iter()
                .map(|r| r.as_ref().map(norm_pred).map_err(Clone::clone))
                .collect(),
        ),
        WirePayload::Search(s) => {
            let mut s = (**s).clone();
            s.wall = Duration::ZERO;
            WirePayload::Search(Box::new(s))
        }
        WirePayload::Measure(m) => WirePayload::Measure(m.clone()),
    };
    serde::to_string(&normalized)
}

/// Converts a direct in-process payload into the wire view (errors
/// become their typed remote form, exactly as the server encodes them).
fn to_wire_payload(payload: &Payload) -> WirePayload {
    match payload {
        Payload::Predict(results) => WirePayload::Predict(
            results
                .iter()
                .map(|r| match r {
                    Ok(p) => Ok(p.clone()),
                    Err(e) => Err(RemoteError::from(e)),
                })
                .collect(),
        ),
        Payload::Search(s) => WirePayload::Search(Box::new((**s).clone())),
        Payload::Measure(m) => match m {
            Ok(outcome) => WirePayload::Measure(Ok(outcome.clone())),
            Err(e) => WirePayload::Measure(Err(RemoteError::from(e))),
        },
    }
}

#[test]
fn concurrent_pipelined_clients_match_direct_service_calls() {
    let server = WireServer::bind("127.0.0.1:0", service()).expect("bind");
    let addr = server.local_addr();
    let requests = mixed_requests();

    // Direct answers from an identical but separate in-process service:
    // every pipeline stage is deterministic, so the network must add
    // multiplexing, never different bytes.
    let direct = service();
    let want: Vec<String> = requests
        .iter()
        .map(|r| {
            let resp = direct.call(reissue(r)).expect("direct call");
            canonical(&to_wire_payload(&resp.payload))
        })
        .collect();

    // Three concurrent clients, each pipelining every request on one
    // connection before redeeming any response.
    let got: Vec<Vec<(String, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let requests = &requests;
                s.spawn(move || {
                    let client = WireClient::connect(addr).expect("connect");
                    let pending: Vec<_> = requests
                        .iter()
                        .map(|r| client.submit(r).expect("submit"))
                        .collect();
                    pending
                        .into_iter()
                        .map(|p| {
                            let resp: WireResponse = p.wait().expect("response");
                            (resp.target.clone(), canonical(&resp.payload))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for per_client in &got {
        assert_eq!(per_client.len(), requests.len());
        for (i, (target, payload)) in per_client.iter().enumerate() {
            assert_eq!(target, requests[i].target(), "request {i} routed wrong");
            assert_eq!(
                payload, &want[i],
                "request {i} over the wire differs from the direct call"
            );
        }
    }
    assert_eq!(server.stats().connections, 3);
    assert_eq!(server.stats().admitted, 3 * requests.len() as u64);
    assert_eq!(server.stats().protocol_errors, 0);
}

#[test]
fn overload_is_a_typed_frame_not_a_dropped_connection() {
    let tiny = Arc::new(
        MayaService::builder()
            .target(H100_TARGET, EmulationSpec::new(h100_cluster()))
            .workers(1)
            .queue_capacity(1)
            .build()
            .unwrap(),
    );
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&tiny)).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();

    let predict = || Request::Predict {
        target: H100_TARGET.into(),
        jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
    };
    // Flood one connection far faster than one worker drains a 1-slot
    // queue. Every submission gets an answer frame: a response or a
    // typed overload — never a connection error.
    let pending: Vec<_> = (0..48)
        .map(|_| client.submit(&predict()).unwrap())
        .collect();
    let mut ok = 0u32;
    let mut shed = 0u32;
    for p in pending {
        match p.wait() {
            Ok(resp) => {
                assert!(resp.predictions().unwrap()[0].is_ok());
                ok += 1;
            }
            Err(e) if e.is_overloaded() => shed += 1,
            Err(other) => panic!("unexpected wire error: {other}"),
        }
    }
    assert!(ok > 0, "some requests must be admitted");
    assert!(shed > 0, "a 1-slot queue must shed part of a 48-burst");
    assert_eq!(server.stats().overloaded as u32, shed);

    // The connection survived the overload and still serves.
    let after = client.call(&predict()).expect("connection still usable");
    assert!(after.predictions().unwrap()[0].is_ok());
}

#[test]
fn malformed_frames_yield_typed_protocol_errors_and_the_server_survives() {
    let server = WireServer::bind("127.0.0.1:0", service()).unwrap();
    let addr = server.local_addr();

    // 1) A well-framed but undecodable body: per-request error, same
    //    connection keeps working.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        frame::write_frame(
            &mut raw,
            frame::FrameKind::Request,
            9,
            "definitely not a request",
            frame::DEFAULT_MAX_FRAME_LEN,
        )
        .unwrap();
        let reply = frame::read_frame(&mut raw, frame::DEFAULT_MAX_FRAME_LEN)
            .expect("readable reply")
            .expect("a frame");
        assert_eq!(reply.kind, frame::FrameKind::Error);
        assert_eq!(reply.id, 9, "error echoes the offending request id");
        let err: RemoteError = serde::from_str(&reply.body).unwrap();
        assert_eq!(err.kind, RemoteErrorKind::Protocol);

        // Same connection, now a valid request: still served. A v2
        // request body is a JobOptions envelope followed by the
        // request; the terminal Response frame leads with the job
        // outcome tag.
        let good = Request::Predict {
            target: A40_TARGET.into(),
            jobs: vec![job(&a40_cluster(), ParallelConfig::default())],
        };
        let mut w = serde::compact::Writer::new();
        use serde::Serialize as _;
        maya_serve::JobOptions::default().serialize(&mut w);
        good.serialize(&mut w);
        frame::write_frame(
            &mut raw,
            frame::FrameKind::Request,
            10,
            &w.finish(),
            frame::DEFAULT_MAX_FRAME_LEN,
        )
        .unwrap();
        let reply = frame::read_frame(&mut raw, frame::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("response frame");
        assert_eq!(reply.kind, frame::FrameKind::Response);
        assert_eq!(reply.id, 10);
        let outcome = WireJobOutcome::decode_response_frame(&reply.body, reply.version).unwrap();
        let resp = outcome.into_response().expect("done carries the response");
        assert!(resp.predictions().unwrap()[0].is_ok());
    }

    // 2) A corrupted header: the stream is untrustworthy, so the server
    //    reports a connection-scoped error (id 0) and closes *that*
    //    connection only.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"GARBAGE NOT A FRAME HEADER......").unwrap();
        let reply = frame::read_frame(&mut raw, frame::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("fatal error frame");
        assert_eq!(reply.kind, frame::FrameKind::Error);
        assert_eq!(reply.id, 0, "stream-fatal errors are connection-scoped");
        let err: RemoteError = serde::from_str(&reply.body).unwrap();
        assert_eq!(err.kind, RemoteErrorKind::Protocol);
        // The server closed this connection after reporting.
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "no further frames after a fatal error");
    }

    // 3) The server is alive and well for everyone else.
    let client = WireClient::connect(addr).unwrap();
    let resp = client
        .call(&Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
        })
        .expect("server survived the garbage");
    assert!(resp.predictions().unwrap()[0].is_ok());
    assert!(server.stats().protocol_errors >= 2);
}

#[test]
fn oversized_frames_are_refused_without_reading_the_body() {
    let small = WireServer::builder(service())
        .max_frame_len(256)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut raw = TcpStream::connect(small.local_addr()).unwrap();
    // A header declaring a body far over the guard; the body is never
    // sent — the server must reject on the header alone.
    let mut header = Vec::new();
    frame::write_frame(
        &mut header,
        frame::FrameKind::Request,
        1,
        "",
        frame::DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    header[16..20].copy_from_slice(&(1u32 << 30).to_be_bytes());
    raw.write_all(&header).unwrap();
    let reply = frame::read_frame(&mut raw, frame::DEFAULT_MAX_FRAME_LEN)
        .unwrap()
        .expect("error frame");
    assert_eq!(reply.kind, frame::FrameKind::Error);
    let err: RemoteError = serde::from_str(&reply.body).unwrap();
    assert_eq!(err.kind, RemoteErrorKind::Protocol);
    assert!(err.message.contains("guard"), "{}", err.message);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let svc = service();
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();

    // Pipeline a burst, then shut the server down as soon as every
    // request has been admitted (but long before all have executed).
    let n = 8usize;
    let pending: Vec<_> = (0..n)
        .map(|_| {
            client
                .submit(&Request::Predict {
                    target: H100_TARGET.into(),
                    jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
                })
                .unwrap()
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().admitted < n as u64 {
        assert!(Instant::now() < deadline, "requests never admitted");
        std::thread::yield_now();
    }
    server.shutdown();

    // Every admitted request still gets its response.
    for p in pending {
        let resp = p.wait().expect("drained response");
        assert!(resp.predictions().unwrap()[0].is_ok());
    }

    // New work after shutdown fails with a connection-level error, not
    // a hang.
    let err = client
        .call(&Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
        })
        .expect_err("server is gone");
    assert!(
        matches!(err, WireError::ConnectionClosed | WireError::Io(_)),
        "{err}"
    );

    // The wrapped service itself is untouched by the front end's
    // shutdown: in-process callers keep working.
    let direct = svc
        .call(Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
        })
        .unwrap();
    assert!(direct.predictions().unwrap()[0].is_ok());
}

/// A search space big enough that a cold search runs for many waves.
fn wide_space() -> ConfigSpace {
    ConfigSpace {
        tp: vec![1, 2],
        pp: vec![1, 2],
        microbatch_multiplier: vec![1, 2],
        virtual_stages: vec![1],
        activation_recompute: vec![true, false],
        sequence_parallel: vec![false],
        distributed_optimizer: vec![true, false],
    }
}

fn long_search(budget: usize) -> Request {
    Request::Search {
        target: H100_TARGET.into(),
        template: job(&h100_cluster(), ParallelConfig::default()),
        space: wide_space(),
        algorithm: AlgorithmKind::Random,
        budget,
        seed: 11,
    }
}

#[test]
fn streamed_progress_over_the_wire_reconstructs_the_search_byte_for_byte() {
    let server = WireServer::bind("127.0.0.1:0", service()).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();

    let mut pending = client.submit(&long_search(30)).expect("submit");
    let mut events = Vec::new();
    while let Some(event) = pending.next_progress() {
        events.push(event);
    }
    let outcome = pending.wait_outcome().expect("terminal frame");
    let WireJobOutcome::Done(resp) = outcome else {
        panic!("expected Done, got {outcome:?}");
    };
    let result = resp.search().expect("search payload");

    assert!(
        events.len() >= 2,
        "a 30-trial search must stream at least two progress frames, got {}",
        events.len()
    );
    let streamed: Vec<_> = events.iter().flat_map(|e| e.trials.clone()).collect();
    assert_eq!(
        serde::to_string(&streamed),
        serde::to_string(&result.trials),
        "concatenated progress records must equal the final trials byte-for-byte"
    );
    assert!(
        events.windows(2).all(|w| w[0].committed < w[1].committed),
        "committed counts must be strictly increasing"
    );
    assert_eq!(events.last().unwrap().committed, result.trials.len());

    // And the streamed search is byte-identical to a direct in-process
    // run of the same request (modulo wall clock).
    let direct = service().call(reissue(&long_search(30))).unwrap();
    assert_eq!(
        canonical(&to_wire_payload(&direct.payload)),
        canonical(&WirePayload::Search(Box::new(result.clone()))),
        "the streamed search must match the direct in-process result"
    );
}

#[test]
fn cancel_over_the_wire_returns_the_deterministic_committed_prefix() {
    // Reference: the same search, uncancelled.
    let full = service().call(reissue(&long_search(60))).unwrap();
    let full = full.search().unwrap().clone();

    let server = WireServer::bind("127.0.0.1:0", service()).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();
    let mut pending = client.submit(&long_search(60)).expect("submit");
    let first = pending.next_progress().expect("first wave before cancel");
    pending.cancel().expect("cancel frame sent");
    let outcome = pending.wait_outcome().expect("terminal frame");
    let WireJobOutcome::Cancelled(Some(resp)) = outcome else {
        panic!("expected Cancelled with a prefix, got {outcome:?}");
    };
    let partial = resp.search().unwrap();
    assert!(partial.trials.len() >= first.trials.len());
    assert!(
        partial.trials.len() < full.trials.len(),
        "cancellation must cut the search short ({} vs {})",
        partial.trials.len(),
        full.trials.len()
    );
    assert_eq!(
        serde::to_string(&partial.trials),
        serde::to_string(&full.trials[..partial.trials.len()].to_vec()),
        "the cancelled search must be an exact byte prefix of the uncancelled run"
    );
    assert_eq!(server.stats().cancels, 1);
    assert_eq!(server.service().stats().cancelled, 1);
}

#[test]
fn queued_deadline_expiry_sheds_the_job_without_a_worker_slot() {
    let svc = Arc::new(
        MayaService::builder()
            .target(H100_TARGET, EmulationSpec::new(h100_cluster()))
            .workers(1)
            .queue_capacity(4)
            .build()
            .unwrap(),
    );
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();

    // Occupy the single worker...
    let blocker = client.submit(&long_search(60)).unwrap();
    // ...then queue a job whose budget is already hopeless.
    let doomed = client
        .submit_with(
            &Request::Predict {
                target: H100_TARGET.into(),
                jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
            },
            maya_wire::JobOptions::new().with_deadline(Duration::ZERO),
        )
        .unwrap();
    let outcome = doomed.wait_outcome().expect("terminal frame");
    assert!(
        matches!(outcome, WireJobOutcome::Expired(None)),
        "a queue-expired job must arrive as an Expired frame with no \
         response, got {outcome:?}"
    );
    assert_eq!(
        svc.stats().expired,
        1,
        "service telemetry must count the shed job"
    );
    blocker.cancel().unwrap();
    let _ = blocker.wait_outcome();
}

#[test]
fn dropped_client_cancels_its_orphaned_jobs() {
    let svc = Arc::new(
        MayaService::builder()
            .target(H100_TARGET, EmulationSpec::new(h100_cluster()))
            .workers(1)
            .build()
            .unwrap(),
    );
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    {
        let client = WireClient::connect(server.local_addr()).unwrap();
        let mut orphan = client.submit(&long_search(50_000)).unwrap();
        let _ = orphan.next_progress().expect("search is running");
        // The client vanishes with the search mid-flight. Nobody can
        // ever receive its frames, so the server must cancel it
        // instead of letting it occupy the only worker for the full
        // 50k-trial budget.
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while svc.stats().cancelled == 0 {
        assert!(
            Instant::now() < deadline,
            "the orphaned search was never cancelled"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The worker is free again: a fresh client is served promptly.
    let client = WireClient::connect(server.local_addr()).unwrap();
    let resp = client
        .call(&Request::Predict {
            target: H100_TARGET.into(),
            jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
        })
        .expect("worker freed by the orphan cleanup");
    assert!(resp.predictions().unwrap()[0].is_ok());
}

#[test]
fn submit_with_retry_rides_out_a_one_slot_queue() {
    use maya_wire::Backoff;
    let tiny = Arc::new(
        MayaService::builder()
            .target(H100_TARGET, EmulationSpec::new(h100_cluster()))
            .workers(1)
            .queue_capacity(1)
            .build()
            .unwrap(),
    );
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&tiny)).unwrap();
    let addr = server.local_addr();
    let predict = || Request::Predict {
        target: H100_TARGET.into(),
        jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
    };

    // Enough concurrent callers to overrun a 1-slot queue many times
    // over; with backoff every one of them must eventually land.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let client = WireClient::connect(addr).expect("connect");
                    for _ in 0..4 {
                        let resp = client
                            .submit_with_retry(
                                &predict(),
                                Backoff {
                                    attempts: 64,
                                    initial: Duration::from_millis(1),
                                    factor: 2,
                                    max_delay: Duration::from_millis(50),
                                },
                            )
                            .expect("retries must ride out the overload");
                        assert!(resp.predictions().unwrap()[0].is_ok());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(
        server.stats().overloaded > 0,
        "the flood must actually have been shed at least once"
    );

    // Errors other than overload are not retried: an unknown target
    // fails on the first attempt.
    let client = WireClient::connect(addr).unwrap();
    let t0 = Instant::now();
    let err = client
        .submit_with_retry(
            &Request::Predict {
                target: "no-such-target".into(),
                jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
            },
            Backoff {
                attempts: 8,
                initial: Duration::from_secs(1),
                factor: 2,
                max_delay: Duration::from_secs(1),
            },
        )
        .expect_err("unknown target");
    assert!(
        matches!(
            &err,
            WireError::Remote(remote) if remote.kind == RemoteErrorKind::UnknownTarget
        ),
        "{err}"
    );
    assert!(
        t0.elapsed() < Duration::from_millis(900),
        "a non-overload error must not back off"
    );
}

#[test]
fn wire_telemetry_carries_cache_deltas_and_stage_timings() {
    let server = WireServer::bind("127.0.0.1:0", service()).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();
    let predict = || Request::Predict {
        target: H100_TARGET.into(),
        jobs: vec![job(&h100_cluster(), ParallelConfig::default())],
    };
    let first = client.call(&predict()).unwrap();
    assert!(first.telemetry.cache_delta.misses > 0, "cold cache");
    assert!(first.telemetry.stages.simulation > Duration::ZERO);
    let second = client.call(&predict()).unwrap();
    assert_eq!(
        second.telemetry.cache_delta.misses, 0,
        "repeat workload over the wire must be answered from the memo"
    );
    assert!(second.telemetry.cache.hits > 0);
}
