//! Cross-crate integration tests: the full emulate -> collate ->
//! estimate -> simulate pipeline against the ground-truth testbed.

use maya::MayaBuilder;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn job(model: ModelSpec, world: u32, parallel: ParallelConfig, batch: u32) -> TrainingJob {
    TrainingJob {
        model,
        parallel,
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: batch,
        world,
        gpus_per_node: 8,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

/// Oracle-estimator predictions should track the testbed within a few
/// percent across parallelism strategies (the Table 3 "Oracle" column).
#[test]
fn oracle_error_small_across_parallelisms() {
    let cluster = ClusterSpec::h100(1, 8);
    let maya = MayaBuilder::new(cluster).build().unwrap();
    let configs = [
        ParallelConfig::default(),
        ParallelConfig {
            tp: 2,
            ..Default::default()
        },
        ParallelConfig {
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            pp: 2,
            sequence_parallel: true,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            distributed_optimizer: true,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            pp: 2,
            virtual_stages: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        ParallelConfig {
            tp: 2,
            activation_recompute: true,
            ..Default::default()
        },
    ];
    for parallel in configs {
        let j = job(ModelSpec::gpt3_125m(), 8, parallel, 32);
        assert!(j.validate().is_ok(), "{parallel} invalid");
        let pred = maya.predict_job(&j).expect("predicts");
        let actual = maya
            .measure_actual(&j)
            .expect("testbed runs")
            .expect("fits");
        let p = pred.iteration_time().expect("fits").as_secs_f64();
        let a = actual.iteration_time.as_secs_f64();
        let err = (p / a - 1.0).abs();
        assert!(
            err < 0.10,
            "{parallel}: oracle error {:.1}% (pred {p:.4}s actual {a:.4}s)",
            err * 100.0
        );
    }
}

/// Dedup must not change predictions (fidelity-preserving).
#[test]
fn dedup_preserves_predictions() {
    let cluster = ClusterSpec::h100(1, 8);
    let parallel = ParallelConfig {
        tp: 2,
        pp: 2,
        microbatch_multiplier: 2,
        ..Default::default()
    };
    let j = job(ModelSpec::gpt3_125m(), 8, parallel, 32);
    let with = MayaBuilder::new(cluster.clone()).build().unwrap();
    let without = MayaBuilder::new(cluster)
        .without_optimizations()
        .build()
        .unwrap();
    let a = with.predict_job(&j).unwrap();
    let b = without.predict_job(&j).unwrap();
    assert!(a.workers_simulated < b.workers_simulated);
    let (ta, tb) = (a.iteration_time().unwrap(), b.iteration_time().unwrap());
    let drift = (ta.as_secs_f64() / tb.as_secs_f64() - 1.0).abs();
    assert!(drift < 0.02, "dedup drift {:.2}%", drift * 100.0);
}

/// Selective launch must agree with full emulation.
#[test]
fn selective_launch_preserves_predictions() {
    let cluster = ClusterSpec::h100(1, 8);
    let parallel = ParallelConfig {
        tp: 2,
        pp: 2,
        microbatch_multiplier: 2,
        ..Default::default()
    };
    let j = job(ModelSpec::gpt3_125m(), 8, parallel, 32);
    let full = MayaBuilder::new(cluster.clone()).build().unwrap();
    let selective = MayaBuilder::new(cluster)
        .selective_launch(true)
        .build()
        .unwrap();
    let a = full.predict_job(&j).unwrap();
    let b = selective.predict_job(&j).unwrap();
    assert!(b.workers_emulated < a.workers_emulated);
    let (ta, tb) = (a.iteration_time().unwrap(), b.iteration_time().unwrap());
    let drift = (ta.as_secs_f64() / tb.as_secs_f64() - 1.0).abs();
    assert!(drift < 0.03, "selective-launch drift {:.2}%", drift * 100.0);
}

/// More parallel hardware should not make the same global batch slower.
#[test]
fn scaling_out_does_not_slow_down() {
    let batch = 64;
    let t4 = {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 4)).build().unwrap();
        let j = job(ModelSpec::gpt3_125m(), 4, ParallelConfig::default(), batch);
        maya.predict_job(&j).unwrap().iteration_time().unwrap()
    };
    let t8 = {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 8)).build().unwrap();
        let j = job(ModelSpec::gpt3_125m(), 8, ParallelConfig::default(), batch);
        maya.predict_job(&j).unwrap().iteration_time().unwrap()
    };
    assert!(t8 < t4, "8 GPUs {t8} should beat 4 GPUs {t4}");
}

/// Activation recomputation should cost extra time but reduce memory.
#[test]
fn recompute_tradeoff_visible() {
    let cluster = ClusterSpec::h100(1, 8);
    let maya = MayaBuilder::new(cluster).build().unwrap();
    let base = job(
        ModelSpec::gpt3_125m(),
        8,
        ParallelConfig {
            tp: 2,
            ..Default::default()
        },
        32,
    );
    let rc = job(
        ModelSpec::gpt3_125m(),
        8,
        ParallelConfig {
            tp: 2,
            activation_recompute: true,
            ..Default::default()
        },
        32,
    );
    let pb = maya.predict_job(&base).unwrap();
    let pr = maya.predict_job(&rc).unwrap();
    let (rb, rr) = (pb.report().unwrap(), pr.report().unwrap());
    assert!(rr.total_time > rb.total_time, "recompute should cost time");
    assert!(
        rr.peak_mem_bytes < rb.peak_mem_bytes,
        "recompute should save memory"
    );
}

/// The paper's headline OOM story: recipes that fit on larger clusters
/// OOM on smaller ones.
#[test]
fn oom_boundary_depends_on_cluster_size() {
    let parallel = ParallelConfig {
        tp: 2,
        pp: 2,
        microbatch_multiplier: 2,
        ..Default::default()
    };
    // GPT-3 2.7B, batch 64, no recompute.
    let small = {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 8)).build().unwrap();
        maya.predict_job(&job(ModelSpec::gpt3_2_7b(), 8, parallel, 64))
            .unwrap()
    };
    let large = {
        let maya = MayaBuilder::new(ClusterSpec::h100(4, 8)).build().unwrap();
        maya.predict_job(&job(ModelSpec::gpt3_2_7b(), 32, parallel, 64))
            .unwrap()
    };
    assert!(small.oom(), "8 GPUs should OOM");
    assert!(!large.oom(), "32 GPUs (dp 8) should fit");
}

/// Interleaved pipeline schedules must not deadlock and should shrink
/// the bubble relative to plain 1F1B at equal microbatch count.
#[test]
fn interleaving_reduces_pipeline_bubble() {
    let cluster = ClusterSpec::h100(1, 8);
    let maya = MayaBuilder::new(cluster).build().unwrap();
    let plain = job(
        ModelSpec::gpt3_125m(),
        8,
        ParallelConfig {
            pp: 4,
            microbatch_multiplier: 1,
            ..Default::default()
        },
        32,
    );
    let interleaved = job(
        ModelSpec::gpt3_125m(),
        8,
        ParallelConfig {
            pp: 4,
            virtual_stages: 3,
            microbatch_multiplier: 1,
            ..Default::default()
        },
        32,
    );
    let tp = maya.predict_job(&plain).unwrap().iteration_time().unwrap();
    let ti = maya
        .predict_job(&interleaved)
        .unwrap()
        .iteration_time()
        .unwrap();
    assert!(
        ti.as_secs_f64() < tp.as_secs_f64() * 1.02,
        "interleaving should not slow things down: plain {tp} interleaved {ti}"
    );
}
