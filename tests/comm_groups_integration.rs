//! Verifies that the workload-knowledge communicator map used by
//! selective launch agrees exactly with what full emulation observes,
//! and that selective launch therefore predicts multi-node jobs
//! accurately (regression test for strided-group inference).

use maya::MayaBuilder;
use maya_hw::ClusterSpec;
use maya_torchlet::engine::megatron_comm_groups;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn job(world: u32, parallel: ParallelConfig) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel,
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 4 * world,
        world,
        gpus_per_node: 8,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

/// Every group observed under full emulation must appear, identically,
/// in the analytically-constructed map.
#[test]
fn megatron_comm_groups_match_observation() {
    let cases = [
        (
            8u32,
            ParallelConfig {
                tp: 2,
                pp: 2,
                microbatch_multiplier: 2,
                ..Default::default()
            },
        ),
        (
            8,
            ParallelConfig {
                tp: 4,
                ..Default::default()
            },
        ),
        (
            8,
            ParallelConfig {
                pp: 4,
                microbatch_multiplier: 2,
                ..Default::default()
            },
        ),
        (
            16,
            ParallelConfig {
                tp: 2,
                pp: 2,
                virtual_stages: 2,
                microbatch_multiplier: 2,
                ..Default::default()
            },
        ),
        (
            16,
            ParallelConfig {
                tp: 2,
                pp: 4,
                microbatch_multiplier: 2,
                distributed_optimizer: true,
                ..Default::default()
            },
        ),
    ];
    for (world, parallel) in cases {
        let cluster = ClusterSpec::h100(world.div_ceil(8), 8.min(world));
        let j = job(world, parallel);
        assert!(j.validate().is_ok(), "{parallel} invalid");
        let maya = MayaBuilder::new(cluster).build().unwrap();
        let ranks: Vec<u32> = (0..world).collect();
        let traced = maya.trace_workload(&ranks, |r, ctx| j.run_worker(r, ctx));
        let workers: Vec<_> = traced
            .into_iter()
            .map(|(t, res)| {
                res.expect("worker runs");
                t
            })
            .collect();
        let observed = maya_collate::collate(workers, world).expect("collates");
        let analytical = megatron_comm_groups(&j);
        for (comm, members) in &observed.comm_groups {
            assert_eq!(
                analytical.get(comm),
                Some(members),
                "{parallel} world {world}: comm {comm:#x} mismatch"
            );
        }
    }
}

/// Selective launch must agree with full emulation even when groups span
/// nodes with non-unit stride (the bug this test pins down: stride-1
/// inference mis-tiered strided DP groups).
#[test]
fn selective_launch_accurate_on_multinode_strided_groups() {
    for (world, nodes) in [(32u32, 4u32), (64, 8)] {
        let cluster = ClusterSpec::h100(nodes, 8);
        let parallel = ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        };
        let j = job(world, parallel);
        let full = MayaBuilder::new(cluster.clone()).build().unwrap();
        let selective = MayaBuilder::new(cluster)
            .selective_launch(true)
            .build()
            .unwrap();
        let a = full.predict_job(&j).unwrap().iteration_time().unwrap();
        let b = selective.predict_job(&j).unwrap().iteration_time().unwrap();
        let drift = (a.as_secs_f64() / b.as_secs_f64() - 1.0).abs();
        assert!(
            drift < 0.02,
            "{world} GPUs: selective-launch drift {:.2}% (full {a} selective {b})",
            drift * 100.0
        );
    }
}
