//! Integration tests for Maya-Search over the real pipeline.

use maya::{Maya, MayaBuilder};
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, ConfigSpace, Objective, TrialScheduler};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn fixture() -> (Maya, TrainingJob) {
    let cluster = ClusterSpec::h100(1, 8);
    let maya = MayaBuilder::new(cluster)
        .selective_launch(true)
        .build()
        .unwrap();
    let template = TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 48,
        world: 8,
        gpus_per_node: 8,
        precision: Dtype::Bf16,
        iterations: 1,
    };
    (maya, template)
}

fn space() -> ConfigSpace {
    ConfigSpace {
        tp: vec![1, 2, 4],
        pp: vec![1, 2],
        microbatch_multiplier: vec![1, 2],
        virtual_stages: vec![1],
        activation_recompute: vec![true, false],
        sequence_parallel: vec![true, false],
        distributed_optimizer: vec![true, false],
    }
}

/// Every algorithm should find a config within 15% of the grid optimum
/// on this small space.
#[test]
fn all_algorithms_land_near_grid_optimum() {
    let (maya, template) = fixture();
    let obj = Objective::new(maya.engine(), template);
    let grid = TrialScheduler::new(&obj).with_space(space()).run_grid();
    let optimum = grid.best_time().expect("grid finds optimum").as_secs_f64();
    for kind in [
        AlgorithmKind::CmaEs,
        AlgorithmKind::OnePlusOne,
        AlgorithmKind::Pso,
        AlgorithmKind::TwoPointsDe,
        AlgorithmKind::Random,
    ] {
        let result = TrialScheduler::new(&obj)
            .with_space(space())
            .run(kind, 150, 42);
        let found = result
            .best_time()
            .unwrap_or(maya_trace::SimTime::MAX)
            .as_secs_f64();
        assert!(
            found <= optimum * 1.15,
            "{kind:?} found {found:.4}s vs optimum {optimum:.4}s"
        );
    }
}

/// The best recipe the search finds must actually be good on the
/// testbed — the end-to-end claim of §7.3.
#[test]
fn search_result_validates_on_testbed() {
    let (maya, template) = fixture();
    let obj = Objective::new(maya.engine(), template);
    let result = TrialScheduler::new(&obj)
        .with_space(space())
        .run(AlgorithmKind::CmaEs, 150, 5);
    let (best_cfg, _) = result.best.expect("found something");
    let job = TrainingJob {
        parallel: best_cfg,
        ..template
    };
    let actual = maya
        .measure_actual(&job)
        .expect("testbed runs")
        .expect("fits");
    // Compare against a deliberately bad recipe.
    let bad = TrainingJob {
        parallel: ParallelConfig {
            tp: 4,
            pp: 2,
            microbatch_multiplier: 2,
            activation_recompute: true,
            ..Default::default()
        },
        ..template
    };
    let bad_actual = maya
        .measure_actual(&bad)
        .expect("testbed runs")
        .expect("fits");
    assert!(
        actual.iteration_time < bad_actual.iteration_time,
        "searched recipe {} should beat the bad recipe {}",
        actual.iteration_time,
        bad_actual.iteration_time
    );
}

/// Pruning must not change the best found config (fidelity preserving).
#[test]
fn pruning_is_fidelity_preserving() {
    let (maya, template) = fixture();
    let obj = Objective::new(maya.engine(), template);
    let mut with = TrialScheduler::new(&obj).with_space(space());
    with.pruning = true;
    with.early_stop_patience = None;
    let r_with = with.run_grid();
    let mut without = TrialScheduler::new(&obj).with_space(space());
    without.pruning = false;
    without.early_stop_patience = None;
    let r_without = without.run_grid();
    assert!(r_with.stats.skipped > 0, "tactics should fire on the grid");
    let a = r_with.best_time().unwrap().as_secs_f64();
    let b = r_without.best_time().unwrap().as_secs_f64();
    assert!(
        (a / b - 1.0).abs() < 0.03,
        "pruned best {a} vs full best {b}"
    );
}
