//! End-to-end exercise of the per-tenant QoS path over loopback TCP:
//! priority overtake, tenant quota shedding with per-tenant counters,
//! protocol-v2 request bodies decoding under the v3 server,
//! deadline-capped client retry, and byte-identical results for a
//! single tenant riding the QoS scheduler.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, ConfigSpace};
use maya_serve::{JobOptions, MayaService, Priority, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{frame, RemoteErrorKind, WireClient, WireError, WireJobOutcome, WireServer};

const TARGET: &str = "h100-pair";

fn cluster() -> ClusterSpec {
    ClusterSpec::h100(1, 2)
}

fn job(global_batch: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch,
        world: 2,
        gpus_per_node: 2,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

/// A predict whose shape nothing else in these tests submits: over a
/// single worker, exactly the first-executed of several identical such
/// requests pays the engine's memo misses, which makes dispatch order
/// observable through wire telemetry without wall-clock races.
fn cold_predict() -> Request {
    Request::Predict {
        target: TARGET.into(),
        jobs: vec![job(48)],
    }
}

fn search(budget: usize) -> Request {
    Request::Search {
        target: TARGET.into(),
        template: job(16),
        space: ConfigSpace {
            tp: vec![1, 2],
            pp: vec![1, 2],
            microbatch_multiplier: vec![1, 2],
            virtual_stages: vec![1],
            activation_recompute: vec![true, false],
            sequence_parallel: vec![false],
            distributed_optimizer: vec![true, false],
        },
        algorithm: AlgorithmKind::Random,
        budget,
        seed: 11,
    }
}

#[test]
fn two_tenant_qos_over_the_wire() {
    let svc = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(cluster()))
            .workers(1)
            .queue_capacity(16)
            .tenant_max_queued(2)
            // Class order is the point here; a CI stall must not age
            // the Batch jobs into High (aging is tested elsewhere).
            .starvation_guard(Duration::from_secs(3600))
            .build()
            .unwrap(),
    );
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();

    let pipeline = |p: Priority| JobOptions::new().with_priority(p).with_tenant("pipeline");
    // The bursting tenant parks a long search on the single worker...
    let mut blocker = client
        .submit_with(&search(4_000), pipeline(Priority::Batch))
        .unwrap();
    let _ = blocker.next_progress().expect("blocker running");
    // ...and floods the queue: two Batch jobs are admitted, the third
    // is shed by its own quota as a typed frame (connection survives).
    let b1 = client
        .submit_with(&cold_predict(), pipeline(Priority::Batch))
        .unwrap();
    let b2 = client
        .submit_with(&cold_predict(), pipeline(Priority::Batch))
        .unwrap();
    let shed = client
        .submit_with(&cold_predict(), pipeline(Priority::Batch))
        .unwrap();
    let err = shed.wait().expect_err("over-quota submission is shed");
    match &err {
        WireError::Remote(remote) => {
            assert_eq!(remote.kind, RemoteErrorKind::QuotaExceeded);
            assert!(remote.message.contains("pipeline"), "{}", remote.message);
        }
        other => panic!("expected a typed quota error, got {other}"),
    }

    // The quiet tenant's High job is admitted despite the burst...
    let quiet = client
        .submit_with(
            &cold_predict(),
            JobOptions::new()
                .with_priority(Priority::High)
                .with_tenant("interactive"),
        )
        .unwrap();
    blocker.cancel().unwrap();
    let _ = blocker.wait_outcome();
    // ...and executes before both queued Batch jobs: all three are the
    // same previously-unseen shape, so the first-served one pays the
    // cold misses.
    let quiet_resp = quiet.wait().expect("quiet tenant served");
    assert!(
        quiet_resp.telemetry.cache_delta.misses > 0,
        "the High job must run before the queued Batch jobs: {:?}",
        quiet_resp.telemetry.cache_delta
    );
    for b in [b1, b2] {
        let resp = b.wait().expect("batch job served");
        assert_eq!(
            resp.telemetry.cache_delta.misses, 0,
            "Batch ran after High: {:?}",
            resp.telemetry.cache_delta
        );
    }

    // Per-tenant counters tell the same story.
    let stats = svc.stats();
    assert_eq!(stats.quota_shed, 1);
    let pipeline_stats = stats.tenant("pipeline").expect("pipeline tracked");
    assert_eq!(pipeline_stats.quota_shed, 1);
    assert_eq!(pipeline_stats.admitted, 3, "blocker + two batch jobs");
    assert_eq!(pipeline_stats.served, 2);
    assert_eq!(pipeline_stats.cancelled, 1, "the cancelled blocker");
    assert_eq!((pipeline_stats.queued, pipeline_stats.in_flight), (0, 0));
    let quiet_stats = stats.tenant("interactive").expect("interactive tracked");
    assert_eq!(quiet_stats.served, 1);
    assert_eq!(quiet_stats.quota_shed, 0);
}

#[test]
fn v2_encoded_job_options_still_decode_under_the_v3_server() {
    use serde::Serialize as _;
    let server = WireServer::bind(
        "127.0.0.1:0",
        Arc::new(
            MayaService::builder()
                .target(TARGET, EmulationSpec::new(cluster()))
                .build()
                .unwrap(),
        ),
    )
    .unwrap();

    // A v2 client's request body: deadline-only JobOptions envelope
    // (here: no deadline) followed by the request — under a header
    // whose version field says 2.
    let mut body = serde::compact::Writer::new();
    Option::<Duration>::None.serialize(&mut body);
    cold_predict().serialize(&mut body);
    let mut frame_bytes = Vec::new();
    frame::write_frame(
        &mut frame_bytes,
        frame::FrameKind::Request,
        7,
        &body.finish(),
        frame::DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    frame_bytes[4..6].copy_from_slice(&2u16.to_be_bytes());

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    std::io::Write::write_all(&mut raw, &frame_bytes).unwrap();
    let reply = frame::read_frame(&mut raw, frame::DEFAULT_MAX_FRAME_LEN)
        .expect("readable reply")
        .expect("a frame");
    assert_eq!(reply.kind, frame::FrameKind::Response);
    assert_eq!(reply.id, 7);
    // The server echoes the peer's version on its replies: a real v2
    // client's reader rejects any other version, so this is what makes
    // the compatibility end-to-end rather than decode-only.
    assert_eq!(reply.version, 2, "replies to a v2 peer must be stamped v2");
    let outcome = WireJobOutcome::decode_response_frame(&reply.body, reply.version).unwrap();
    let resp = outcome.into_response().expect("served with QoS defaults");
    assert!(resp.predictions().unwrap()[0].is_ok());
}

#[test]
fn submit_with_retry_stops_at_the_deadline_instead_of_backing_off_past_it() {
    use maya_wire::Backoff;
    let svc = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(cluster()))
            .workers(1)
            .queue_capacity(1)
            .build()
            .unwrap(),
    );
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&svc)).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();

    // Occupy the worker and the single queue slot so the retry's
    // first attempt is shed as overloaded. Only that first attempt
    // needs the overload: the backoff delay below is *longer* than
    // the whole deadline budget, so what follows is decided entirely
    // client-side, whatever the blocker does afterwards.
    let mut blocker = client.submit(&search(50_000)).unwrap();
    let _ = blocker.next_progress().expect("blocker running");
    let filler = client.submit(&cold_predict()).unwrap();

    // Policy says "sleep 200ms between attempts"; the job's own 50ms
    // budget must cap that sleep and end the loop with the typed
    // expired error — not doze through the schedule and then submit a
    // job the service would immediately shed.
    let t0 = Instant::now();
    let err = client
        .submit_with_retry_opts(
            &cold_predict(),
            JobOptions::new().with_deadline(Duration::from_millis(50)),
            Backoff {
                attempts: 10_000,
                initial: Duration::from_millis(200),
                factor: 2,
                max_delay: Duration::from_millis(200),
            },
        )
        .expect_err("the deadline must end the retry loop");
    let elapsed = t0.elapsed();
    match &err {
        WireError::Remote(remote) => assert_eq!(remote.kind, RemoteErrorKind::Expired),
        other => panic!("expected the typed expired error, got {other}"),
    }
    assert!(
        elapsed >= Duration::from_millis(40),
        "the budget itself may be spent waiting for a retry: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_millis(190),
        "the sleep must be capped at the remaining budget, not the \
         policy's 200ms: {elapsed:?}"
    );

    blocker.cancel().unwrap();
    let _ = blocker.wait_outcome();
    let _ = filler.wait();
}

#[test]
fn single_tenant_qos_results_match_the_plain_service_byte_for_byte() {
    // Same search, three ways: direct in-process plain service, and
    // over the wire through a QoS-configured service with priorities,
    // quotas and a tenant attached. The scheduler reorders and sheds;
    // it must never change result bytes.
    let plain = MayaService::builder()
        .target(TARGET, EmulationSpec::new(cluster()))
        .build()
        .unwrap();
    let want = plain.call(search(30)).unwrap();
    let want_trials = serde::to_string(&want.search().unwrap().trials);

    let qos = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(cluster()))
            .tenant_max_queued(4)
            .tenant_max_in_flight(1)
            .starvation_guard(Duration::from_millis(20))
            .build()
            .unwrap(),
    );
    let server = WireServer::bind("127.0.0.1:0", qos).unwrap();
    let client = WireClient::connect(server.local_addr()).unwrap();
    let resp = client
        .submit_with(
            &search(30),
            JobOptions::new()
                .with_priority(Priority::Batch)
                .with_tenant("solo")
                .with_deadline(Duration::from_secs(600)),
        )
        .unwrap()
        .wait()
        .expect("served");
    assert_eq!(
        serde::to_string(&resp.search().unwrap().trials),
        want_trials,
        "QoS scheduling over the wire must not change search results"
    );
}
