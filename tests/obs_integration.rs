//! End-to-end exercise of the observability subsystem: metrics
//! consistency under concurrent load, the loopback-TCP `Scrape`
//! round trip pinned byte-identical to the in-process snapshot, and
//! the span trees' wall-clock accounting for a real search job.

use std::sync::Arc;
use std::time::{Duration, Instant};

use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_obs::Registry;
use maya_serve::{MayaService, ObsConfig, Request};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{AlgorithmKind, ConfigSpace, JobOptions, WireClient, WireServer};

const TARGET: &str = "h100-pair";

fn job(global_batch: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch,
        world: 2,
        gpus_per_node: 2,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn predict(global_batch: u32) -> Request {
    Request::Predict {
        target: TARGET.into(),
        jobs: vec![job(global_batch)],
    }
}

fn search() -> Request {
    Request::Search {
        target: TARGET.into(),
        template: job(16),
        space: ConfigSpace {
            tp: vec![1, 2],
            pp: vec![1],
            microbatch_multiplier: vec![1, 2],
            virtual_stages: vec![1],
            activation_recompute: vec![false],
            sequence_parallel: vec![false],
            distributed_optimizer: vec![true],
        },
        algorithm: AlgorithmKind::Grid,
        budget: 8,
        seed: 3,
    }
}

fn service() -> Arc<MayaService> {
    Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(2)
            .build()
            .expect("service builds"),
    )
}

/// Hammer one registry from many threads while a reader snapshots it
/// mid-flight: every snapshot must be internally consistent (histogram
/// `count` equals the bucket total) and counters must read monotonic
/// across successive snapshots. The final quiesced snapshot must equal
/// the arithmetic truth.
#[test]
fn snapshots_are_consistent_under_concurrent_load() {
    const THREADS: u64 = 8;
    const OPS: u64 = 20_000;
    let reg = Registry::new();
    // Intern before spawning so the reader sees the instruments from
    // snapshot one (registration order does not matter — snapshots
    // sort — but existence does).
    let c = reg.counter("hammer.count");
    let h = reg.histogram("hammer.value");
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    c.inc();
                    h.record(t * OPS + i);
                }
            });
        }
        let mut last_count = 0u64;
        let mut last_hist = 0u64;
        for _ in 0..200 {
            let snap = reg.snapshot();
            let count = snap.counter("hammer.count").expect("counter registered");
            assert!(count >= last_count, "counter went backwards");
            last_count = count;
            let hist = snap
                .histogram("hammer.value")
                .expect("histogram registered");
            let bucket_total: u64 = hist.buckets.iter().map(|&(_, n)| n).sum();
            assert_eq!(hist.count, bucket_total, "count must equal bucket total");
            assert!(hist.count >= last_hist, "histogram lost samples");
            last_hist = hist.count;
        }
    });
    let total = THREADS * OPS;
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hammer.count"), Some(total));
    let hist = snap.histogram("hammer.value").expect("registered");
    assert_eq!(hist.count, total);
    // Sum of 0..THREADS*OPS: every recorded value landed exactly once.
    assert_eq!(hist.sum, total * (total - 1) / 2);
    assert_eq!(hist.quantile(0.0), 0);
}

/// The wire `Scrape` answer is the in-process snapshot, byte for byte,
/// and repeating it against a quiesced service changes nothing — the
/// act of scraping is deliberately not self-observing.
#[test]
fn loopback_scrape_is_byte_identical_to_in_process_snapshot() {
    let service = service();
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let client = WireClient::connect(server.local_addr()).expect("connect");

    for i in 1..=3u32 {
        client
            .submit_with(&predict(8 * i), JobOptions::new().with_tenant("t1"))
            .expect("submit")
            .wait()
            .expect("served");
    }

    // The worker records the job tree after handing the reply to the
    // writer, so "the client saw the answer" does not mean "the ring
    // is settled". Poll until two consecutive scrapes agree.
    let deadline = Instant::now() + Duration::from_secs(10);
    let settled = loop {
        let a = client.scrape_raw().expect("scrape");
        let b = client.scrape_raw().expect("scrape");
        if a == b {
            break a;
        }
        assert!(Instant::now() < deadline, "service never quiesced");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        settled,
        serde::to_string(&service.obs_snapshot()),
        "the scrape body IS the serialized in-process snapshot"
    );

    // And the decoded form carries the full vocabulary.
    let snap = client.scrape().expect("scrape decodes");
    assert_eq!(snap.counter("serve.served"), Some(3));
    assert!(snap.counter("sim.events_processed").unwrap_or(0) > 0);
    assert!(snap.gauge("sim.heap_depth_high_water").unwrap_or(0) > 0);
    assert!(snap
        .histogram("serve.queue_wait_us.tenant.t1")
        .is_some_and(|h| h.count == 3));
    assert_eq!(snap.recent_jobs.len(), 3);

    // The scrape counter deliberately lives in the wire server's own
    // stats (not the registry) — that is what made the byte-identity
    // above possible despite the scrapes we issued to establish it.
    assert!(server.stats().scrapes >= 3);
    server.shutdown();
}

/// A search job's span tree, fetched over the wire, accounts for at
/// least 95% of the wall-clock the *client* observed — queued +
/// execute + reply leave no untracked gap.
#[test]
fn scraped_span_tree_covers_job_wall_clock() {
    let service = service();
    let mut server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let client = WireClient::connect(server.local_addr()).expect("connect");
    // Warm the engine so the measured job is steady-state (a cold
    // estimator build would all be `execute` anyway, but warm keeps
    // the test fast).
    client.call(&predict(16)).expect("warmup");

    let t0 = Instant::now();
    client.call(&search()).expect("search served");
    let wall = t0.elapsed();

    // Poll until the ring holds the search job's tree with the wire
    // server's appended `reply` child.
    let deadline = Instant::now() + Duration::from_secs(10);
    let tree = loop {
        let snap = client.scrape().expect("scrape");
        if let Some(tree) = snap
            .recent_jobs
            .iter()
            .rev()
            .find(|t| t.find("reply").is_some())
        {
            break tree.clone();
        }
        assert!(Instant::now() < deadline, "reply span never recorded");
        std::thread::sleep(Duration::from_millis(5));
    };

    assert_eq!(tree.name, "job");
    assert!(
        tree.duration >= wall.mul_f64(0.95).saturating_sub(Duration::from_millis(2)),
        "server-side tree ({:?}) must account for >=95% of the client wall-clock ({wall:?})",
        tree.duration
    );
    assert!(
        tree.duration <= wall + Duration::from_millis(50),
        "the tree cannot outlast the round trip by much ({:?} vs {wall:?})",
        tree.duration
    );
    let covered = tree.child_coverage();
    assert!(
        covered >= tree.duration.mul_f64(0.95),
        "phases ({covered:?}) must cover >=95% of the job ({:?})",
        tree.duration
    );
    server.shutdown();
}

/// `ObsConfig::off` registers nothing and records nothing, while the
/// answers stay identical to the instrumented service's.
#[test]
fn obs_off_serves_identically_with_an_empty_snapshot() {
    let on = service();
    let off = Arc::new(
        MayaService::builder()
            .target(TARGET, EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(2)
            .observability(ObsConfig::off())
            .build()
            .expect("service builds"),
    );
    let a = on.call(predict(24)).expect("served");
    let b = off.call(predict(24)).expect("served");
    // Compare the deterministic prediction outcomes; StageTimings are
    // wall-clock and differ run to run regardless of observability.
    let outcome = |r: &maya_serve::Response| {
        let preds = r.predictions().expect("predict payload");
        serde::to_string(&preds[0].as_ref().expect("predicts").outcome)
    };
    assert_eq!(
        outcome(&a),
        outcome(&b),
        "observability must not perturb answers"
    );
    assert!(!a.telemetry.spans.is_empty() && b.telemetry.spans.is_empty());
    let snap = off.obs_snapshot();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty());
    assert!(snap.histograms.is_empty() && snap.recent_jobs.is_empty());
}
