//! Offline shim for criterion (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`] with
//! [`Throughput::Elements`], `bench_function`/`iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Results are printed
//! as plain text (median / mean per iteration, plus throughput when
//! configured); there is no statistical regression machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, collecting `sample_size` samples after warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: target ~20ms per sample, at least 1 iter.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut line = format!(
        "{id:<50} median {:>11}   mean {:>11}",
        fmt_duration(median),
        fmt_duration(mean)
    );
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("   {:>12.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("   {:>12.2} MiB/s", per_sec(n) / (1 << 20) as f64));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(id, &mut b.samples, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group throughput used in reports.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        let full = format!("{}/{id}", self.name);
        report(&full, &mut b.samples, self.throughput);
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("x", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
