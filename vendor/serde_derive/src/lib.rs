//! Offline no-op derive shim for serde (see `vendor/README.md`).
//!
//! The workspace only *annotates* types with `serde::Serialize` /
//! `serde::Deserialize` (its JSON export is hand-rolled in
//! `maya-trace::json`), so these derives expand to nothing. The trait
//! markers live in the sibling `serde` shim crate.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
