//! Offline shim for proptest (see `vendor/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range strategies over integers
//! and floats, [`any`], [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion forms.
//!
//! Each generated test runs its body over `cases` deterministic samples
//! (default 256) drawn from an RNG seeded by the test's name, so
//! failures are reproducible run to run. Unlike real proptest there is
//! no shrinking: a failing case panics with the underlying assertion.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one test, seeded from the test's name.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of sampled values (no shrinking in the shim).
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);

    /// Strategy produced by [`super::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rand::RngCore::next_u64(rng)
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rand::RngCore::next_u32(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Strategy over any value of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for fixed-length vectors of an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    /// `len` samples of `elem` per case.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Property-test harness macro: expands each contained function into a
/// `#[test]` (the attribute is written inside the block, as in real
/// proptest) that runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Shim for `prop_assert!`: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-1.5..2.5).contains(&b));
        }

        /// Vec strategies produce the requested length.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        /// `any` covers the full u64 domain (high bits get set).
        #[test]
        fn any_u64_spread(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = 0u64..100;
        for _ in 0..10 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
