//! Offline shim for proptest (see `vendor/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range strategies over integers
//! and floats, [`any`], [`strategy::Just`], tuple strategies,
//! `prop_map`, the [`prop_oneof!`] union macro, [`collection::vec`]
//! (fixed or ranged length), and the `prop_assert!`/`prop_assert_eq!`
//! assertion forms.
//!
//! Each generated test runs its body over `cases` deterministic samples
//! (default 256) drawn from an RNG seeded by the test's name, so
//! failures are reproducible run to run. Unlike real proptest there is
//! no shrinking: a failing case panics with the underlying assertion.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one test, seeded from the test's name.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of sampled values (no shrinking in the shim).
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// One type-erased arm of a [`OneOf`] union.
    type OneOfArm<V> = Box<dyn Fn(&mut StdRng) -> V>;

    /// Weighted union of same-valued strategies (see [`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        arms: Vec<(u32, OneOfArm<V>)>,
        total: u32,
    }

    impl<V> OneOf<V> {
        /// An empty union; [`OneOf::with`] adds arms.
        pub fn new() -> Self {
            OneOf {
                arms: Vec::new(),
                total: 0,
            }
        }

        /// Adds an arm drawn with probability `weight / total_weight`.
        pub fn with<S>(mut self, weight: u32, strat: S) -> Self
        where
            S: Strategy<Value = V> + 'static,
        {
            self.total += weight;
            self.arms
                .push((weight, Box::new(move |rng| strat.sample(rng))));
            self
        }
    }

    impl<V> Default for OneOf<V> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn sample(&self, rng: &mut StdRng) -> V {
            assert!(self.total > 0, "prop_oneof! needs at least one arm");
            let mut pick = Rng::gen_range(rng, 0..self.total);
            for (weight, draw) in &self.arms {
                if pick < *weight {
                    return draw(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);

    /// Strategy produced by [`super::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rand::RngCore::next_u64(rng)
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rand::RngCore::next_u32(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Strategy over any value of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec()`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `len` samples of `elem` per case (fixed or ranged length).
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Weighted (or unweighted) union of strategies producing one value
/// type, as in proptest's `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new()
            $( .with($weight, $strat) )+
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new()
            $( .with(1, $strat) )+
    };
}

/// Property-test harness macro: expands each contained function into a
/// `#[test]` (the attribute is written inside the block, as in real
/// proptest) that runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Shim for `prop_assert!`: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-1.5..2.5).contains(&b));
        }

        /// Vec strategies produce the requested length.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        /// `any` covers the full u64 domain (high bits get set).
        #[test]
        fn any_u64_spread(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = 0u64..100;
        for _ in 0..10 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
