//! The compact token-stream data format behind the shim's
//! [`Serialize`](crate::Serialize) / [`Deserialize`](crate::Deserialize)
//! traits.
//!
//! A serialized value is a whitespace-separated sequence of tokens.
//! [`Writer`] appends tokens; [`Reader`] walks them back. Tokens never
//! contain whitespace: strings are escaped (`%s` = space, `%t` = tab,
//! `%n` = newline, `%r` = CR, `%p` = `%`, and a lone `%e` encodes the
//! empty string), everything else prints as plain decimal. The format is
//! self-framing through length prefixes and enum tags, so a reader never
//! needs lookahead.

use std::fmt;

/// Decode/parse failure for the compact format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended while a value still expected tokens.
    Eof,
    /// A token could not be parsed as the expected shape.
    Parse {
        /// The offending token (truncated for display).
        token: String,
        /// What the caller expected.
        expected: &'static str,
    },
    /// Tokens remained after the top-level value was fully read.
    Trailing {
        /// The first unconsumed token.
        token: String,
    },
}

impl Error {
    /// Builds a parse error, truncating long tokens.
    pub fn parse(token: &str, expected: &'static str) -> Self {
        let mut token = token.to_string();
        token.truncate(64);
        Error::Parse { token, expected }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "unexpected end of input"),
            Error::Parse { token, expected } => {
                write!(f, "token {token:?} is not a valid {expected}")
            }
            Error::Trailing { token } => write!(f, "trailing token {token:?} after value"),
        }
    }
}

impl std::error::Error for Error {}

/// Token-stream builder.
#[derive(Default)]
pub struct Writer {
    buf: String,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
    }

    /// Appends one display-formatted token. The rendering must not
    /// contain whitespace (numbers, identifiers).
    pub fn token(&mut self, t: impl fmt::Display) {
        self.sep();
        let start = self.buf.len();
        use fmt::Write;
        write!(self.buf, "{t}").expect("writing to String cannot fail");
        debug_assert!(
            !self.buf[start..].contains(char::is_whitespace),
            "token {:?} contains whitespace",
            &self.buf[start..]
        );
    }

    /// Appends a static tag token (enum discriminant, header word).
    pub fn tag(&mut self, tag: &'static str) {
        self.token(tag);
    }

    /// Appends an arbitrary string, escaped to a single token.
    pub fn str_token(&mut self, s: &str) {
        self.sep();
        if s.is_empty() {
            self.buf.push_str("%e");
            return;
        }
        for ch in s.chars() {
            match ch {
                '%' => self.buf.push_str("%p"),
                ' ' => self.buf.push_str("%s"),
                '\t' => self.buf.push_str("%t"),
                '\n' => self.buf.push_str("%n"),
                '\r' => self.buf.push_str("%r"),
                c if c.is_whitespace() => {
                    // Exotic unicode whitespace: escape via code point.
                    use fmt::Write;
                    write!(self.buf, "%u{:x};", c as u32).expect("write to String");
                }
                c => self.buf.push(c),
            }
        }
    }

    /// The accumulated token stream.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Token-stream cursor.
pub struct Reader<'a> {
    iter: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Reader<'a> {
    /// Reads tokens from `text`.
    pub fn new(text: &'a str) -> Self {
        Reader {
            iter: text.split_ascii_whitespace(),
        }
    }

    /// Next raw token.
    pub fn raw_token(&mut self) -> Result<&'a str, Error> {
        self.iter.next().ok_or(Error::Eof)
    }

    /// Next token parsed as `u64`.
    pub fn u64(&mut self) -> Result<u64, Error> {
        let t = self.raw_token()?;
        t.parse().map_err(|_| Error::parse(t, "u64"))
    }

    /// Next token, which must equal `tag`.
    pub fn expect_tag(&mut self, tag: &'static str) -> Result<(), Error> {
        let t = self.raw_token()?;
        if t == tag {
            Ok(())
        } else {
            Err(Error::parse(t, tag))
        }
    }

    /// Next token unescaped back to a string.
    pub fn str_token(&mut self) -> Result<String, Error> {
        let t = self.raw_token()?;
        if t == "%e" {
            return Ok(String::new());
        }
        let mut out = String::with_capacity(t.len());
        let mut chars = t.chars();
        while let Some(ch) = chars.next() {
            if ch != '%' {
                out.push(ch);
                continue;
            }
            match chars.next() {
                Some('p') => out.push('%'),
                Some('s') => out.push(' '),
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = chars.by_ref().take_while(|&c| c != ';').collect();
                    let cp = u32::from_str_radix(&hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| Error::parse(t, "escaped string"))?;
                    out.push(cp);
                }
                _ => return Err(Error::parse(t, "escaped string")),
            }
        }
        Ok(out)
    }

    /// Asserts the stream is exhausted.
    pub fn end(&mut self) -> Result<(), Error> {
        match self.iter.next() {
            None => Ok(()),
            Some(t) => {
                let mut token = t.to_string();
                token.truncate(64);
                Err(Error::Trailing { token })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_separates_tokens() {
        let mut w = Writer::new();
        w.token(1u64);
        w.tag("x");
        w.token(2u64);
        assert_eq!(w.finish(), "1 x 2");
    }

    #[test]
    fn string_escaping_round_trips() {
        for s in ["", "a b", "%", "%%e", "a\u{2028}b", "\r\n\t"] {
            let mut w = Writer::new();
            w.str_token(s);
            let text = w.finish();
            assert!(!text.contains(char::is_whitespace), "{text:?}");
            let mut r = Reader::new(&text);
            assert_eq!(r.str_token().unwrap(), s, "via {text:?}");
            r.end().unwrap();
        }
    }

    #[test]
    fn expect_tag_mismatch() {
        let mut r = Reader::new("kernels");
        assert!(r.expect_tag("memcpys").is_err());
    }
}
