//! Offline shim for serde (see `vendor/README.md`).
//!
//! Two layers, matching the two ways the workspace uses serde:
//!
//! - **Annotation compatibility**: `#[derive(serde::Serialize,
//!   serde::Deserialize)]` resolves to the no-op derives from the
//!   `serde_derive` shim, so type definitions written against real serde
//!   keep compiling unchanged.
//! - **A functional mini data-format layer**: the `Serialize` /
//!   `Deserialize` traits here are *real* (not markers) over the
//!   whitespace-separated token stream implemented in [`compact`].
//!   Types that need actual persistence (the estimator memo snapshots in
//!   `maya-estimator`) implement the traits by hand — exactly the code a
//!   real-serde `impl Serialize` would replace, which keeps the swap back
//!   to registry serde mechanical.
//!
//! The token format is deliberately simple: every value is a sequence of
//! non-whitespace tokens; integers print in decimal, floats as IEEE-754
//! bit patterns (lossless round-trip), strings percent-style escaped,
//! sequences length-prefixed, enums tag-prefixed. Human-greppable,
//! deterministic, no external dependencies.

pub mod compact;

pub use compact::{Error, Reader, Writer};

/// Serialize into a [`compact::Writer`] token stream.
///
/// Stands in for `serde::Serialize`; usable both as a trait and (via the
/// `serde_derive` shim) as a no-op `#[derive(...)]` annotation.
pub trait Serialize {
    /// Appends this value's tokens to the writer.
    fn serialize(&self, w: &mut Writer);
}

/// Deserialize from a [`compact::Reader`] token stream.
///
/// Stands in for `serde::Deserialize`; usable both as a trait and (via
/// the `serde_derive` shim) as a no-op `#[derive(...)]` annotation.
pub trait Deserialize<'de>: Sized {
    /// Parses one value's tokens from the reader.
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error>;
}

// `Serialize` / `Deserialize` name both the traits above (type
// namespace) and the no-op derive macros (macro namespace), as with
// real serde.
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut Writer) {
                w.token(*self as u64);
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
                let v = r.u64()?;
                <$t>::try_from(v).map_err(|_| Error::parse(&v.to_string(), stringify!($t)))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for i64 {
    fn serialize(&self, w: &mut Writer) {
        w.token(*self);
    }
}

impl<'de> Deserialize<'de> for i64 {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        let t = r.raw_token()?;
        t.parse().map_err(|_| Error::parse(t, "i64"))
    }
}

impl Serialize for bool {
    fn serialize(&self, w: &mut Writer) {
        w.token(if *self { 1u8 } else { 0u8 });
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        match r.raw_token()? {
            "0" => Ok(false),
            "1" => Ok(true),
            t => Err(Error::parse(t, "bool (0|1)")),
        }
    }
}

/// Floats serialize as their IEEE-754 bit pattern so a round trip is
/// bit-exact (a decimal print would not be).
impl Serialize for f64 {
    fn serialize(&self, w: &mut Writer) {
        w.token(self.to_bits());
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl Serialize for str {
    fn serialize(&self, w: &mut Writer) {
        w.str_token(self);
    }
}

impl Serialize for &str {
    fn serialize(&self, w: &mut Writer) {
        w.str_token(self);
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut Writer) {
        w.str_token(self);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        r.str_token()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut Writer) {
        w.token(self.len());
        for item in self {
            item.serialize(w);
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        let n = r.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::deserialize(r)?);
        }
        Ok(out)
    }
}

/// Durations serialize as whole seconds plus subsecond nanoseconds, so
/// a round trip is exact for the full `Duration` range.
impl Serialize for std::time::Duration {
    fn serialize(&self, w: &mut Writer) {
        w.token(self.as_secs());
        w.token(self.subsec_nanos());
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        let secs = r.u64()?;
        let nanos = u32::deserialize(r)?;
        if nanos >= 1_000_000_000 {
            return Err(Error::parse(&nanos.to_string(), "subsecond nanos"));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self, w: &mut Writer) {
        match self {
            Ok(v) => {
                w.tag("ok");
                v.serialize(w);
            }
            Err(e) => {
                w.tag("err");
                e.serialize(w);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        match r.raw_token()? {
            "ok" => Ok(Ok(T::deserialize(r)?)),
            "err" => Ok(Err(E::deserialize(r)?)),
            t => Err(Error::parse(t, "result tag (ok|err)")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut Writer) {
        match self {
            None => w.tag("none"),
            Some(v) => {
                w.tag("some");
                v.serialize(w);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        match r.raw_token()? {
            "none" => Ok(None),
            "some" => Ok(Some(T::deserialize(r)?)),
            t => Err(Error::parse(t, "option tag (none|some)")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut Writer) {
        for item in self {
            item.serialize(w);
        }
    }
}

impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::deserialize(r)?;
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, w: &mut Writer) {
        self.0.serialize(w);
        self.1.serialize(w);
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        Ok((A::deserialize(r)?, B::deserialize(r)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, w: &mut Writer) {
        self.0.serialize(w);
        self.1.serialize(w);
        self.2.serialize(w);
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
        Ok((A::deserialize(r)?, B::deserialize(r)?, C::deserialize(r)?))
    }
}

/// Serializes a value to a standalone token-stream string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut w = Writer::new();
    value.serialize(&mut w);
    w.finish()
}

/// Deserializes a value from a token-stream string, requiring that the
/// whole input is consumed.
pub fn from_str<'de, T: Deserialize<'de>>(text: &'de str) -> Result<T, Error> {
    let mut r = Reader::new(text);
    let v = T::deserialize(&mut r)?;
    r.end()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(v: T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        from_str(&to_string(&v)).expect("round trip")
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(round_trip(0u64), 0);
        assert_eq!(round_trip(u64::MAX), u64::MAX);
        assert_eq!(round_trip(42u8), 42);
        assert_eq!(round_trip(-7i64), -7);
        assert!(round_trip(true));
        assert!(!round_trip(false));
    }

    #[test]
    fn floats_are_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1.0 / 3.0, f64::INFINITY] {
            assert_eq!(round_trip(v).to_bits(), v.to_bits());
        }
        assert!(round_trip(f64::NAN).is_nan());
    }

    #[test]
    fn strings_round_trip_with_escaping() {
        for s in ["plain", "", "two words", "pct%sign", "line\nbreak\ttab"] {
            assert_eq!(round_trip(s.to_string()), s);
        }
    }

    #[test]
    fn containers_round_trip() {
        assert_eq!(round_trip(vec![1u64, 2, 3]), vec![1, 2, 3]);
        assert_eq!(round_trip(Vec::<u64>::new()), Vec::<u64>::new());
        assert_eq!(round_trip(Some(9u32)), Some(9));
        assert_eq!(round_trip(None::<u32>), None);
        assert_eq!(round_trip((3u64, true)), (3, true));
        assert_eq!(round_trip([7u64, 8, 9]), [7, 8, 9]);
    }

    #[test]
    fn durations_round_trip_exactly() {
        use std::time::Duration;
        for d in [
            Duration::ZERO,
            Duration::new(0, 1),
            Duration::new(1, 999_999_999),
            Duration::from_nanos(u64::MAX),
            Duration::new(u64::MAX, 999_999_999),
        ] {
            assert_eq!(round_trip(d), d);
        }
        // Out-of-range nanos are rejected, not silently normalized.
        assert!(from_str::<Duration>("0 1000000000").is_err());
    }

    #[test]
    fn results_round_trip() {
        assert_eq!(round_trip(Ok::<u64, String>(7)), Ok(7));
        assert_eq!(
            round_trip(Err::<u64, String>("boom".into())),
            Err("boom".into())
        );
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = from_str::<u64>("1 2").unwrap_err();
        assert!(matches!(err, Error::Trailing { .. }));
    }

    #[test]
    fn eof_reported() {
        assert!(matches!(from_str::<(u64, u64)>("1"), Err(Error::Eof)));
    }
}
