//! Offline shim for serde (see `vendor/README.md`).
//!
//! Provides the `Serialize` / `Deserialize` names in both the macro
//! namespace (no-op derives from the `serde_derive` shim) and the type
//! namespace (empty marker traits), which is all the workspace's
//! `#[derive(serde::Serialize, serde::Deserialize)]` annotations need.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
