//! Offline shim for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`] (xoshiro256\*\* seeded via splitmix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic in the
//! seed; no OS entropy is ever consulted.

/// Low-level uniform word source.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One round of the splitmix64 mixing function (seed expansion).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Range-shaped arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256\*\*.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12) —
    /// only determinism-in-seed and statistical quality are promised,
    /// which is all this workspace relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut x);
            }
            // All-zero state is a fixed point for xoshiro; splitmix64
            // cannot produce four zero words from any seed, but guard
            // anyway so the invariant is local.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }
}
