//! Persisting the estimator memo across processes (snapshot / restore).
//!
//! A [`CachingEstimator`] accumulates the runtime answers a prediction
//! engine derives over its lifetime — exactly the state a long-running
//! service wants to carry over a restart. [`CachingEstimator::snapshot`]
//! serializes the full memo (all three query families) to a compact
//! text format via the vendored serde; [`CachingEstimator::restore`]
//! loads one back, after which a repeat of the snapshotted workload is
//! answered entirely from the memo — zero new misses.
//!
//! Restores insert entries directly, so the hit/miss counters keep
//! measuring only real query traffic. The header records a format
//! version, the *inner* estimator's name and a caller-supplied
//! **scope** string; a restore is rejected unless all three match.
//! Memoized answers are only valid for the exact function that
//! produced them, and kernel/memcpy keys carry *no* cluster identity —
//! the same `KernelKind` has different true runtimes on an H100 and an
//! A40 — so the caller must fold everything the estimator's answers
//! depend on (cluster spec, forest training seed, ...) into the scope.
//! `maya::MayaBuilder` and `maya-serve` derive it from the cluster and
//! estimator choice; see `EstimatorChoice::memo_scope`.
//!
//! The entry order within each family is sorted on the serialized form,
//! so equal memo contents produce byte-identical snapshots.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use maya_trace::SimTime;
use serde::{compact, Deserialize, Serialize};

use crate::cache::{CachingEstimator, CollectiveKey};

/// On-disk format version; bump when the token layout changes.
const VERSION: u64 = 1;

/// Leading magic tag of a snapshot.
const MAGIC: &str = "maya-memo";

/// Failure while writing or reading a memo snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The token stream is malformed or truncated.
    Format(compact::Error),
    /// File I/O failed.
    Io(std::io::Error),
    /// The snapshot does not start with the `maya-memo` magic.
    NotASnapshot,
    /// The snapshot was written by an incompatible format version.
    Version(u64),
    /// The snapshot was produced by a different inner estimator.
    EstimatorMismatch {
        /// Name recorded in the snapshot.
        snapshot: String,
        /// Name of the estimator being restored into.
        estimator: String,
    },
    /// The snapshot was produced under a different scope (cluster /
    /// estimator configuration fingerprint).
    ScopeMismatch {
        /// Scope recorded in the snapshot.
        snapshot: String,
        /// Scope of the engine being restored into.
        engine: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Format(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::NotASnapshot => write!(f, "not a maya-memo snapshot"),
            SnapshotError::Version(v) => {
                write!(
                    f,
                    "snapshot format v{v} unsupported (this build reads v{VERSION})"
                )
            }
            SnapshotError::EstimatorMismatch {
                snapshot,
                estimator,
            } => write!(
                f,
                "snapshot was built by estimator {snapshot:?} but this engine runs {estimator:?}"
            ),
            SnapshotError::ScopeMismatch { snapshot, engine } => write!(
                f,
                "snapshot scope {snapshot:?} does not match this engine's scope {engine:?} \
                 (different cluster or estimator configuration)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<compact::Error> for SnapshotError {
    fn from(e: compact::Error) -> Self {
        SnapshotError::Format(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl Serialize for CollectiveKey {
    fn serialize(&self, w: &mut compact::Writer) {
        self.kind.serialize(w);
        self.bytes.serialize(w);
        self.ranks.serialize(w);
        self.arch_id.serialize(w);
        self.num_gpus.serialize(w);
        self.gpus_per_node.serialize(w);
        self.link_bits.serialize(w);
    }
}

impl<'de> Deserialize<'de> for CollectiveKey {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(CollectiveKey {
            kind: Deserialize::deserialize(r)?,
            bytes: Deserialize::deserialize(r)?,
            ranks: Deserialize::deserialize(r)?,
            arch_id: Deserialize::deserialize(r)?,
            num_gpus: Deserialize::deserialize(r)?,
            gpus_per_node: Deserialize::deserialize(r)?,
            link_bits: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for crate::cache::CacheStats {
    fn serialize(&self, w: &mut compact::Writer) {
        self.hits.serialize(w);
        self.misses.serialize(w);
        self.evictions.serialize(w);
    }
}

impl<'de> Deserialize<'de> for crate::cache::CacheStats {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(crate::cache::CacheStats {
            hits: Deserialize::deserialize(r)?,
            misses: Deserialize::deserialize(r)?,
            evictions: Deserialize::deserialize(r)?,
        })
    }
}

/// Serializes one memo family: a count line, then one sorted entry per
/// line (sorting makes snapshots of equal memos byte-identical).
fn family<K: Serialize>(out: &mut String, tag: &'static str, entries: Vec<(K, SimTime)>) {
    let mut lines: Vec<String> = entries
        .into_iter()
        .map(|(k, v)| {
            let mut w = compact::Writer::new();
            k.serialize(&mut w);
            v.serialize(&mut w);
            w.finish()
        })
        .collect();
    lines.sort_unstable();
    out.push_str(&format!("{tag} {}\n", lines.len()));
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
}

impl CachingEstimator {
    /// Serializes the entire memo — kernel, memcpy and collective
    /// families — to the compact snapshot format.
    ///
    /// `scope` is an opaque compatibility fingerprint recorded in the
    /// header and enforced by [`CachingEstimator::restore`]: it must
    /// capture every input the memoized answers depend on beyond the
    /// query keys themselves — above all the cluster spec, which
    /// kernel/memcpy keys do not encode.
    pub fn snapshot(&self, scope: &str) -> String {
        let mut out = String::new();
        let mut header = compact::Writer::new();
        header.tag(MAGIC);
        VERSION.serialize(&mut header);
        self.inner().name().serialize(&mut header);
        scope.serialize(&mut header);
        out.push_str(&header.finish());
        out.push('\n');
        family(&mut out, "kernels", self.kernels.entries());
        family(&mut out, "memcpys", self.memcpys.entries());
        family(&mut out, "collectives", self.collectives.entries());
        out
    }

    /// Loads a snapshot produced by [`CachingEstimator::snapshot`] into
    /// this memo, returning the number of entries inserted.
    ///
    /// Entries are inserted without touching the hit/miss counters;
    /// existing entries for the same keys are overwritten (the values
    /// are pure-function results, so this is value-preserving whenever
    /// the estimator name *and* scope match — both are enforced).
    pub fn restore(&self, text: &str, scope: &str) -> Result<usize, SnapshotError> {
        let mut r = compact::Reader::new(text);
        if r.raw_token().map_err(|_| SnapshotError::NotASnapshot)? != MAGIC {
            return Err(SnapshotError::NotASnapshot);
        }
        let version = u64::deserialize(&mut r)?;
        if version != VERSION {
            return Err(SnapshotError::Version(version));
        }
        let name = String::deserialize(&mut r)?;
        if name != self.inner().name() {
            return Err(SnapshotError::EstimatorMismatch {
                snapshot: name,
                estimator: self.inner().name().to_string(),
            });
        }
        let snapshot_scope = String::deserialize(&mut r)?;
        if snapshot_scope != scope {
            return Err(SnapshotError::ScopeMismatch {
                snapshot: snapshot_scope,
                engine: scope.to_string(),
            });
        }
        let mut loaded = 0usize;
        r.expect_tag("kernels")?;
        for _ in 0..u64::deserialize(&mut r)? {
            let (k, v) = Deserialize::deserialize(&mut r)?;
            self.kernels.insert(k, v);
            loaded += 1;
        }
        r.expect_tag("memcpys")?;
        for _ in 0..u64::deserialize(&mut r)? {
            let (k, v) = Deserialize::deserialize(&mut r)?;
            self.memcpys.insert(k, v);
            loaded += 1;
        }
        r.expect_tag("collectives")?;
        for _ in 0..u64::deserialize(&mut r)? {
            let (k, v): (CollectiveKey, SimTime) = Deserialize::deserialize(&mut r)?;
            self.collectives.insert(k, v);
            loaded += 1;
        }
        r.end()?;
        Ok(loaded)
    }

    /// Writes a snapshot to `path`, creating parent directories.
    ///
    /// The write is atomic (unique temp file + rename in the target
    /// directory): a crash mid-write — or two writers racing on the
    /// same path — can never publish a torn snapshot that would block
    /// the next warm start. The old file, no file, or one writer's
    /// complete bytes survive instead.
    pub fn write_snapshot(&self, path: &Path, scope: &str) -> Result<(), SnapshotError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".{}-{}.tmp",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let tmp = std::path::PathBuf::from(tmp);
        let write = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.snapshot(scope).as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if write.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        write.map_err(SnapshotError::from)
    }

    /// Restores a snapshot from `path`; see [`CachingEstimator::restore`].
    pub fn load_snapshot(&self, path: &Path, scope: &str) -> Result<usize, SnapshotError> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        self.restore(&text, scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{OracleEstimator, RuntimeEstimator};
    use maya_hw::ClusterSpec;
    use maya_trace::{CollectiveKind, Dtype, KernelKind, MemcpyKind};
    use std::sync::Arc;

    fn warm_cache() -> (CachingEstimator, ClusterSpec) {
        let cluster = ClusterSpec::h100(1, 8);
        let cached = CachingEstimator::new(Arc::new(OracleEstimator::new(&cluster)));
        for i in 0..10u64 {
            cached.kernel_time(&KernelKind::Gemm {
                m: 64 + i,
                n: 128,
                k: 256,
                dtype: Dtype::Bf16,
            });
        }
        cached.memcpy_time(1 << 20, MemcpyKind::HostToDevice);
        cached.memcpy_time(1 << 10, MemcpyKind::DeviceToDevice);
        let ranks: Vec<u32> = (0..8).collect();
        cached.collective_time(CollectiveKind::AllReduce, 1 << 24, &ranks, &cluster);
        cached.collective_time(CollectiveKind::AllGather, 1 << 20, &ranks[..4], &cluster);
        (cached, cluster)
    }

    #[test]
    fn round_trip_restores_every_entry_with_zero_new_misses() {
        let (warm, cluster) = warm_cache();
        let text = warm.snapshot("h100x8/oracle");

        let cold = CachingEstimator::new(Arc::new(OracleEstimator::new(&cluster)));
        let loaded = cold.restore(&text, "h100x8/oracle").expect("restore");
        assert_eq!(loaded, warm.len());
        assert_eq!(cold.len(), warm.len());
        assert_eq!(
            cold.stats().misses,
            0,
            "restore must not count as cache traffic"
        );

        // Replay the exact warm workload: every query must hit.
        for i in 0..10u64 {
            cold.kernel_time(&KernelKind::Gemm {
                m: 64 + i,
                n: 128,
                k: 256,
                dtype: Dtype::Bf16,
            });
        }
        cold.memcpy_time(1 << 20, MemcpyKind::HostToDevice);
        cold.memcpy_time(1 << 10, MemcpyKind::DeviceToDevice);
        let ranks: Vec<u32> = (0..8).collect();
        cold.collective_time(CollectiveKind::AllReduce, 1 << 24, &ranks, &cluster);
        cold.collective_time(CollectiveKind::AllGather, 1 << 20, &ranks[..4], &cluster);
        let st = cold.stats();
        assert_eq!(st.misses, 0, "warm-started memo must answer everything");
        assert_eq!(st.hits, 14);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let (a, cluster) = warm_cache();
        let b = CachingEstimator::new(Arc::new(OracleEstimator::new(&cluster)));
        b.restore(&a.snapshot("s"), "s").unwrap();
        assert_eq!(a.snapshot("s"), b.snapshot("s"), "equal memos, equal bytes");
    }

    #[test]
    fn estimator_mismatch_rejected() {
        let (warm, cluster) = warm_cache();
        struct Renamed(OracleEstimator);
        impl RuntimeEstimator for Renamed {
            fn kernel_time(&self, k: &KernelKind) -> SimTime {
                self.0.kernel_time(k)
            }
            fn memcpy_time(&self, bytes: u64, kind: MemcpyKind) -> SimTime {
                self.0.memcpy_time(bytes, kind)
            }
            fn collective_time(
                &self,
                kind: CollectiveKind,
                bytes: u64,
                ranks: &[u32],
                cluster: &ClusterSpec,
            ) -> SimTime {
                self.0.collective_time(kind, bytes, ranks, cluster)
            }
            fn name(&self) -> &'static str {
                "renamed"
            }
        }
        let other = CachingEstimator::new(Arc::new(Renamed(OracleEstimator::new(&cluster))));
        let err = other.restore(&warm.snapshot("s"), "s").unwrap_err();
        assert!(
            matches!(err, SnapshotError::EstimatorMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn scope_mismatch_rejected() {
        // The estimator name alone cannot distinguish clusters (every
        // oracle is called "oracle"), so the scope must: a memo built
        // for one cluster is refused by an engine scoped to another.
        let (warm, _) = warm_cache();
        let a40 = ClusterSpec::a40(1, 8);
        let other = CachingEstimator::new(Arc::new(OracleEstimator::new(&a40)));
        let err = other
            .restore(&warm.snapshot("scope:h100x8"), "scope:a40x8")
            .unwrap_err();
        assert!(matches!(err, SnapshotError::ScopeMismatch { .. }), "{err}");
        assert!(other.is_empty(), "nothing may be loaded on mismatch");
    }

    #[test]
    fn garbage_rejected() {
        let (warm, _) = warm_cache();
        assert!(matches!(
            warm.restore("not a snapshot", "s"),
            Err(SnapshotError::NotASnapshot)
        ));
        let truncated: String = warm
            .snapshot("s")
            .lines()
            .take(3)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(warm.restore(&truncated, "s").is_err());
    }

    #[test]
    fn file_round_trip() {
        let (warm, cluster) = warm_cache();
        let path = std::env::temp_dir().join(format!(
            "maya-snapshot-test-{}-{:?}.memo",
            std::process::id(),
            std::thread::current().id()
        ));
        warm.write_snapshot(&path, "file-scope").expect("write");
        let cold = CachingEstimator::new(Arc::new(OracleEstimator::new(&cluster)));
        assert_eq!(
            cold.load_snapshot(&path, "file-scope").expect("load"),
            warm.len()
        );
        let _ = std::fs::remove_file(&path);
    }
}
