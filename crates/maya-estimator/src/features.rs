//! Feature extraction for kernel-runtime regression.
//!
//! Features mirror the paper's Appendix B: operand shapes, dtypes and —
//! for compiler-fused Triton kernels — the primitive instruction count of
//! the kernel body.

use maya_trace::KernelKind;

/// Number of numeric (non-one-hot) features.
pub const NUM_NUMERIC: usize = 14;

/// Total feature-vector length.
pub const NUM_FEATURES: usize = NUM_NUMERIC + KernelKind::NUM_FAMILIES;

fn lg(x: f64) -> f64 {
    x.max(1.0).log2()
}

/// Extracts the fixed-length feature vector for a kernel.
pub fn kernel_features(k: &KernelKind) -> Vec<f64> {
    let mut f = vec![0.0; NUM_FEATURES];
    f[0] = lg(k.flops());
    f[1] = lg(k.bytes_accessed());
    f[2] = k.dtype().map(|d| d.id() as f64).unwrap_or(-1.0);
    f[3] = k
        .dtype()
        .map(|d| d.uses_tensor_cores() as u8 as f64)
        .unwrap_or(0.0);
    match *k {
        KernelKind::Gemm { m, n, k: kk, .. } | KernelKind::LtMatmul { m, n, k: kk, .. } => {
            f[4] = lg(m as f64);
            f[5] = lg(n as f64);
            f[6] = lg(kk as f64);
            f[7] = 0.0;
        }
        KernelKind::GemmStridedBatched {
            m, n, k: kk, batch, ..
        } => {
            f[4] = lg(m as f64);
            f[5] = lg(n as f64);
            f[6] = lg(kk as f64);
            f[7] = lg(batch as f64);
        }
        KernelKind::ConvForward {
            n,
            c,
            h,
            k: kk,
            r,
            stride,
            ..
        }
        | KernelKind::ConvBackwardData {
            n,
            c,
            h,
            k: kk,
            r,
            stride,
            ..
        }
        | KernelKind::ConvBackwardFilter {
            n,
            c,
            h,
            k: kk,
            r,
            stride,
            ..
        } => {
            f[4] = lg(n as f64 * h as f64 * h as f64 / (stride * stride).max(1) as f64);
            f[5] = lg(kk as f64);
            f[6] = lg(c as f64 * (r * r) as f64);
            f[7] = r as f64;
        }
        KernelKind::SoftmaxForward { rows, cols, .. }
        | KernelKind::SoftmaxBackward { rows, cols, .. }
        | KernelKind::LayerNormForward { rows, cols }
        | KernelKind::LayerNormBackwardGamma { rows, cols }
        | KernelKind::LayerNormBackwardInput { rows, cols } => {
            f[4] = lg(rows as f64);
            f[5] = lg(cols as f64);
        }
        KernelKind::CrossEntropyForward { tokens, vocab }
        | KernelKind::CrossEntropyBackward { tokens, vocab } => {
            f[4] = lg(tokens as f64);
            f[5] = lg(vocab as f64);
        }
        KernelKind::EmbeddingForward { tokens, hidden }
        | KernelKind::EmbeddingBackward { tokens, hidden } => {
            f[4] = lg(tokens as f64);
            f[5] = lg(hidden as f64);
        }
        _ => {}
    }
    // Generic size + fused-kernel features.
    f[8] = match *k {
        KernelKind::Elementwise { numel, .. }
        | KernelKind::VectorizedElementwise { numel, .. }
        | KernelKind::FusedDropout { numel }
        | KernelKind::Reduce { numel, .. }
        | KernelKind::CatCopy { numel, .. }
        | KernelKind::TriuTril { numel }
        | KernelKind::BatchNorm { numel, .. }
        | KernelKind::Pool { numel, .. }
        | KernelKind::FusedTriton { numel, .. } => lg(numel as f64),
        KernelKind::MultiTensorApply { numel, .. } => lg(numel as f64),
        KernelKind::Memset { bytes } => lg(bytes as f64),
        _ => 0.0,
    };
    f[9] = match *k {
        KernelKind::FusedTriton { num_instrs, .. } => num_instrs as f64,
        KernelKind::Elementwise { arity, .. } => arity as f64,
        KernelKind::MultiTensorApply { ops_per_elem, .. } => ops_per_elem as f64,
        _ => 0.0,
    };
    // Tile/wave-quantization features for GEMM-shaped kernels: edge-tile
    // fill fractions and the CTA count, which drive tensor-core
    // efficiency oscillations that pure log-size features cannot expose.
    if let KernelKind::Gemm { m, n, k: kk, .. }
    | KernelKind::LtMatmul { m, n, k: kk, .. }
    | KernelKind::GemmStridedBatched { m, n, k: kk, .. } = *k
    {
        let batch = match *k {
            KernelKind::GemmStridedBatched { batch, .. } => batch,
            _ => 1,
        };
        let tiles_m = m.div_ceil(128);
        let tiles_n = n.div_ceil(128);
        f[10] = m as f64 / (tiles_m * 128) as f64; // fill_m
        f[11] = n as f64 / (tiles_n * 128) as f64; // fill_n
        f[12] = lg((tiles_m * tiles_n * batch) as f64); // log CTAs
        f[13] = kk as f64 / (kk as f64 + 192.0); // reduction-depth ramp
    }
    f[NUM_NUMERIC + k.family_id() as usize] = 1.0;
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::Dtype;

    #[test]
    fn feature_vector_shape() {
        let k = KernelKind::Gemm {
            m: 128,
            n: 64,
            k: 32,
            dtype: Dtype::Bf16,
        };
        let f = kernel_features(&k);
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f[4], 7.0); // log2(128)
        assert_eq!(f[5], 6.0);
        assert_eq!(f[6], 5.0);
        assert_eq!(f[NUM_NUMERIC + k.family_id() as usize], 1.0);
        assert_eq!(f.iter().skip(NUM_NUMERIC).sum::<f64>(), 1.0, "one-hot");
    }

    #[test]
    fn fused_kernels_carry_instruction_counts() {
        let k = KernelKind::FusedTriton {
            numel: 1024,
            num_instrs: 17,
            dtype: Dtype::Fp32,
        };
        let f = kernel_features(&k);
        assert_eq!(f[9], 17.0);
        assert_eq!(f[8], 10.0);
    }

    #[test]
    fn distinct_kernels_distinct_features() {
        let a = kernel_features(&KernelKind::Gemm {
            m: 64,
            n: 64,
            k: 64,
            dtype: Dtype::Fp32,
        });
        let b = kernel_features(&KernelKind::Gemm {
            m: 64,
            n: 64,
            k: 128,
            dtype: Dtype::Fp32,
        });
        assert_ne!(a, b);
    }
}
