//! CART regression trees (variance-reduction splits).

use rand::seq::SliceRandom;
use rand::Rng;

/// Tree hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features considered at each split.
    pub feature_frac: f64,
    /// Maximum candidate thresholds evaluated per feature.
    pub max_thresholds: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_leaf: 3,
            feature_frac: 0.5,
            max_thresholds: 24,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on rows `x[i]` with targets `y[i]`.
    ///
    /// # Panics
    /// Panics if `x` is empty or row lengths differ from each other.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &TreeParams, rng: &mut impl Rng) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on an empty dataset");
        assert_eq!(x.len(), y.len());
        let mut tree = RegressionTree { nodes: Vec::new() };
        let idx: Vec<u32> = (0..x.len() as u32).collect();
        tree.build(x, y, idx, params, 0, rng);
        tree
    }

    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: Vec<u32>,
        params: &TreeParams,
        depth: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i as usize]).sum::<f64>() / idx.len() as f64;
        if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        match self.best_split(x, y, &idx, params, rng) {
            None => {
                self.nodes.push(Node::Leaf { value: mean });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (l, r): (Vec<u32>, Vec<u32>) = idx
                    .iter()
                    .partition(|&&i| x[i as usize][feature] <= threshold);
                if l.len() < params.min_samples_leaf || r.len() < params.min_samples_leaf {
                    self.nodes.push(Node::Leaf { value: mean });
                    return self.nodes.len() - 1;
                }
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build(x, y, l, params, depth + 1, rng);
                let right = self.build(x, y, r, params, depth + 1, rng);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }

    /// Finds the (feature, threshold) minimizing child variance.
    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[u32],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Option<(usize, f64)> {
        let nf = x[0].len();
        let k = ((nf as f64 * params.feature_frac).ceil() as usize).clamp(1, nf);
        let mut feats: Vec<usize> = (0..nf).collect();
        feats.shuffle(rng);
        feats.truncate(k);

        let total_sum: f64 = idx.iter().map(|&i| y[i as usize]).sum();
        let total_sq: f64 = idx.iter().map(|&i| y[i as usize] * y[i as usize]).sum();
        let n = idx.len() as f64;
        let parent_score = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in &feats {
            // Candidate thresholds from sampled values.
            let mut vals: Vec<f64> = idx.iter().take(256).map(|&i| x[i as usize][f]).collect();
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() as f64 / params.max_thresholds as f64).max(1.0);
            let mut t = step / 2.0;
            while (t as usize) < vals.len() - 1 {
                let thr = (vals[t as usize] + vals[t as usize + 1]) / 2.0;
                let mut ls = 0.0;
                let mut lq = 0.0;
                let mut ln = 0.0;
                for &i in idx {
                    let v = y[i as usize];
                    if x[i as usize][f] <= thr {
                        ls += v;
                        lq += v * v;
                        ln += 1.0;
                    }
                }
                let rn = n - ln;
                if ln >= params.min_samples_leaf as f64 && rn >= params.min_samples_leaf as f64 {
                    let rs = total_sum - ls;
                    let rq = total_sq - lq;
                    let score = (lq - ls * ls / ln) + (rq - rs * rs / rn);
                    if best
                        .map(|(_, _, s)| score < s)
                        .unwrap_or(score < parent_score)
                    {
                        best = Some((f, thr, score));
                    }
                }
                t += step;
            }
        }
        best.map(|(f, thr, _)| (f, thr))
    }

    /// Predicts the target for a feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (for introspection).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fits_a_step_function() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..200).map(|i| if i < 100 { 1.0 } else { 5.0 }).collect();
        let t = RegressionTree::fit(
            &x,
            &y,
            &TreeParams {
                feature_frac: 1.0,
                ..Default::default()
            },
            &mut rng(),
        );
        assert!((t.predict(&[10.0]) - 1.0).abs() < 0.2);
        assert!((t.predict(&[150.0]) - 5.0).abs() < 0.2);
    }

    #[test]
    fn fits_multivariate_interaction() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![r.gen_range(0.0..10.0), r.gen_range(0.0..10.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * 2.0 + v[1]).collect();
        let t = RegressionTree::fit(
            &x,
            &y,
            &TreeParams {
                max_depth: 10,
                feature_frac: 1.0,
                ..Default::default()
            },
            &mut r,
        );
        let pred = t.predict(&[5.0, 5.0]);
        assert!((pred - 15.0).abs() < 2.0, "{pred}");
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 50];
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert_eq!(t.predict(&[7.0]), 3.0);
    }

    #[test]
    fn respects_min_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let t = RegressionTree::fit(
            &x,
            &y,
            &TreeParams {
                min_samples_leaf: 5,
                feature_frac: 1.0,
                ..Default::default()
            },
            &mut rng(),
        );
        // With min leaf 5 on 10 points, at most one split is possible.
        assert!(t.len() <= 3, "{}", t.len());
    }
}
