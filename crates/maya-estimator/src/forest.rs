//! Random-forest regression (bagged CART trees), the paper's default
//! kernel runtime predictor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::{RegressionTree, TreeParams};

/// Forest hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct ForestParams {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 16,
            tree: TreeParams {
                max_depth: 18,
                min_samples_leaf: 2,
                feature_frac: 0.6,
                max_thresholds: 32,
            },
            seed: 0x464F_5245,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits the forest on rows `x` with targets `y`.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &ForestParams) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest on an empty dataset");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n = x.len();
        let trees = (0..params.n_trees)
            .map(|_| {
                // Bootstrap sample.

                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let bx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
                let by: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
                RegressionTree::fit(&bx, &by, &params.tree, &mut rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean prediction across trees.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<Vec<f64>> = (0..600)
            .map(|_| vec![rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] * v[1]).sqrt() + v[0]).collect();
        (x, y)
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let (x, y) = dataset();
        let split = 500;
        let params = ForestParams {
            n_trees: 10,
            tree: TreeParams {
                max_depth: 8,
                feature_frac: 1.0,
                ..Default::default()
            },
            seed: 1,
        };
        let forest = RandomForest::fit(&x[..split], &y[..split], &params);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = RegressionTree::fit(
            &x[..split],
            &y[..split],
            &TreeParams {
                max_depth: 4,
                feature_frac: 1.0,
                ..Default::default()
            },
            &mut rng,
        );
        let err = |pred: &dyn Fn(&[f64]) -> f64| -> f64 {
            x[split..]
                .iter()
                .zip(&y[split..])
                .map(|(r, &t)| (pred(r) - t).abs() / t.max(1e-9))
                .sum::<f64>()
                / (x.len() - split) as f64
        };
        let fe = err(&|r| forest.predict(r));
        let te = err(&|r| tree.predict(r));
        assert!(fe < te, "forest {fe} vs shallow tree {te}");
        assert!(fe < 0.15, "forest relative error {fe}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = dataset();
        let p = ForestParams {
            n_trees: 4,
            ..Default::default()
        };
        let a = RandomForest::fit(&x, &y, &p);
        let b = RandomForest::fit(&x, &y, &p);
        assert_eq!(a.predict(&x[0]), b.predict(&x[0]));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }
}
