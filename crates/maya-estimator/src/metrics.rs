//! Prediction-quality metrics: per-kernel MAPE on held-out data
//! (recreating the paper's Tables 7-9).

use std::collections::BTreeMap;

use maya_trace::SimTime;

/// Mean absolute percentage error of paired (prediction, truth) values.
pub fn mape(pairs: &[(SimTime, SimTime)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|(p, t)| (p.as_secs_f64() - t.as_secs_f64()).abs() / t.as_secs_f64().max(1e-12))
        .sum::<f64>()
        / pairs.len() as f64
}

/// Per-kernel-family MAPE report (the shape of Tables 7-9).
#[derive(Clone, Debug, Default)]
pub struct MapeReport {
    /// kernel name -> (test samples, MAPE as a fraction).
    pub per_kernel: BTreeMap<&'static str, (usize, f64)>,
}

impl MapeReport {
    /// Builds a report from named (prediction, truth) samples.
    pub fn from_samples(samples: &[(&'static str, SimTime, SimTime)]) -> Self {
        let mut grouped: BTreeMap<&'static str, Vec<(SimTime, SimTime)>> = BTreeMap::new();
        for &(name, p, t) in samples {
            grouped.entry(name).or_default().push((p, t));
        }
        let per_kernel = grouped
            .into_iter()
            .map(|(name, v)| (name, (v.len(), mape(&v))))
            .collect();
        MapeReport { per_kernel }
    }

    /// Sample-weighted overall MAPE.
    pub fn overall(&self) -> f64 {
        let (n, acc) = self
            .per_kernel
            .values()
            .fold((0usize, 0.0f64), |(n, acc), &(c, m)| {
                (n + c, acc + m * c as f64)
            });
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }

    /// MAPE of one kernel family, if present.
    pub fn for_kernel(&self, name: &str) -> Option<f64> {
        self.per_kernel.get(name).map(|&(_, m)| m)
    }

    /// Renders the report as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut s = format!("{:<44} {:>8} {:>9}\n", "Kernel", "Samples", "MAPE");
        for (name, (n, m)) in &self.per_kernel {
            s.push_str(&format!("{:<44} {:>8} {:>8.2}%\n", name, n, m * 100.0));
        }
        s.push_str(&format!(
            "{:<44} {:>8} {:>8.2}%\n",
            "OVERALL",
            "",
            self.overall() * 100.0
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basics() {
        let pairs = vec![
            (SimTime::from_us(110.0), SimTime::from_us(100.0)),
            (SimTime::from_us(90.0), SimTime::from_us(100.0)),
        ];
        assert!((mape(&pairs) - 0.10).abs() < 1e-9);
        assert_eq!(mape(&[]), 0.0);
    }

    #[test]
    fn report_groups_by_name() {
        let samples = vec![
            ("a", SimTime::from_us(11.0), SimTime::from_us(10.0)),
            ("a", SimTime::from_us(9.0), SimTime::from_us(10.0)),
            ("b", SimTime::from_us(20.0), SimTime::from_us(10.0)),
        ];
        let r = MapeReport::from_samples(&samples);
        assert!((r.for_kernel("a").unwrap() - 0.10).abs() < 1e-9);
        assert!((r.for_kernel("b").unwrap() - 1.0).abs() < 1e-9);
        assert!((r.overall() - (0.1 * 2.0 + 1.0) / 3.0).abs() < 1e-9);
        let table = r.to_table();
        assert!(table.contains("OVERALL"));
        assert!(table.contains('a') && table.contains('b'));
    }
}
