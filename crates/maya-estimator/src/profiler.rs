//! The transparent profiling mode (§4.3): dispatches operations on the
//! (ground-truth) hardware and logs arguments plus observed runtimes.
//!
//! Measurement noise grows as kernels shrink — microsecond-scale kernels
//! are notoriously hard to time — which is what produces the error
//! structure of the paper's Tables 7-9: heavy-hitter GEMM/conv kernels
//! with single-digit MAPE, tiny bookkeeping kernels with large
//! percentage-wise (but immaterial) errors.

use maya_hw::noise::{gaussian_factor, Key};
use maya_hw::{GpuSpec, GroundTruthKernelModel};
use maya_trace::{Dtype, KernelKind, MemcpyKind, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dataset size knob: `Test` keeps unit tests fast; `Full` approximates
/// the paper's 42k-point sweeps for heavy-hitter kernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProfileScale {
    /// Small datasets for unit tests.
    Test,
    /// Bench-scale datasets.
    Full,
}

impl ProfileScale {
    fn gemm_samples(self) -> usize {
        match self {
            ProfileScale::Test => 400,
            ProfileScale::Full => 6000,
        }
    }

    fn family_samples(self) -> usize {
        match self {
            ProfileScale::Test => 120,
            ProfileScale::Full => 1200,
        }
    }
}

/// Profiles kernels against the ground-truth hardware model.
#[derive(Clone, Copy, Debug)]
pub struct Profiler {
    /// The GPU being profiled.
    pub gpu: GpuSpec,
    /// Ground-truth kernel timing ("the hardware").
    pub kernel_model: GroundTruthKernelModel,
    /// Seed for sweep sampling and measurement noise.
    pub seed: u64,
}

impl Profiler {
    /// Creates a profiler for a GPU with default ground truth.
    pub fn new(gpu: GpuSpec, seed: u64) -> Self {
        Profiler {
            gpu,
            kernel_model: GroundTruthKernelModel::default(),
            seed,
        }
    }

    /// Measurement-noise standard deviation for an observed duration.
    fn noise_sigma(&self, t: SimTime) -> f64 {
        let floor = self.gpu.kernel_floor_us;
        0.012 + 0.20 * (floor / t.as_us().max(floor)).min(1.0)
    }

    /// One "measured" sample of a kernel.
    pub fn measure(&self, kernel: &KernelKind, sample_id: u64) -> SimTime {
        let t = self.kernel_model.kernel_time(kernel, &self.gpu);
        let f = gaussian_factor(
            Key::new(self.seed)
                .with(0x6D65_6173)
                .with(sample_id)
                .finish(),
            self.noise_sigma(t),
        );
        t.scale(f)
    }

    /// Sweeps the kernel space, producing (kernel, measured time) pairs.
    pub fn kernel_dataset(&self, scale: ProfileScale) -> Vec<(KernelKind, SimTime)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6B64_7331);
        let mut out = Vec::new();
        let dtypes: &[Dtype] = if self.gpu.supports_bf16 {
            &[Dtype::Fp32, Dtype::Bf16, Dtype::Fp16]
        } else {
            &[Dtype::Fp32, Dtype::Fp16]
        };

        let dim = |rng: &mut StdRng, lo: f64, hi: f64| -> u64 {
            let l = rng.gen_range(lo.log2()..hi.log2());
            // Mostly tile-aligned sizes with occasional ragged ones, like
            // real model sweeps.
            let v = l.exp2() as u64;
            if rng.gen_bool(0.7) {
                (v / 64).max(1) * 64
            } else {
                v.max(1)
            }
        };

        // Heavy hitters: GEMM (plain + strided-batched + Lt).
        for i in 0..scale.gemm_samples() {
            let d = dtypes[rng.gen_range(0..dtypes.len())];
            let m = dim(&mut rng, 32.0, 32768.0);
            let n = dim(&mut rng, 32.0, 32768.0);
            let k = dim(&mut rng, 32.0, 16384.0);
            let kind = match i % 4 {
                0 | 1 => KernelKind::Gemm { m, n, k, dtype: d },
                2 => KernelKind::GemmStridedBatched {
                    m: m.min(4096),
                    n: n.min(4096),
                    k: k.min(512),
                    batch: 1 << rng.gen_range(0..8),
                    dtype: d,
                },
                _ => KernelKind::LtMatmul { m, n, k, dtype: d },
            };
            out.push(kind);
        }
        // Convolutions (heavy hitters for vision).
        for _ in 0..scale.gemm_samples() / 3 {
            let d = dtypes[rng.gen_range(0..dtypes.len())];
            let n = 1 << rng.gen_range(0..7);
            let c = dim(&mut rng, 16.0, 1024.0);
            let h = [7u64, 14, 28, 56, 112, 224][rng.gen_range(0..6)];
            let k = dim(&mut rng, 16.0, 1024.0);
            let r = [1u64, 3, 7][rng.gen_range(0..3)];
            let stride = if rng.gen_bool(0.3) { 2 } else { 1 };
            let base = KernelKind::ConvForward {
                n,
                c,
                h,
                w: h,
                k,
                r,
                stride,
                dtype: d,
            };
            out.push(match rng.gen_range(0..3) {
                0 => base,
                1 => KernelKind::ConvBackwardData {
                    n,
                    c,
                    h,
                    w: h,
                    k,
                    r,
                    stride,
                    dtype: d,
                },
                _ => KernelKind::ConvBackwardFilter {
                    n,
                    c,
                    h,
                    w: h,
                    k,
                    r,
                    stride,
                    dtype: d,
                },
            });
        }
        // The long tail of framework kernels.
        for _ in 0..scale.family_samples() {
            let d = dtypes[rng.gen_range(0..dtypes.len())];
            let numel = dim(&mut rng, 256.0, 5.0e8);
            let rows = dim(&mut rng, 16.0, 1.0e6);
            let cols = dim(&mut rng, 16.0, 65536.0);
            let toks = dim(&mut rng, 16.0, 262144.0);
            let candidates = [
                KernelKind::Elementwise {
                    numel,
                    arity: rng.gen_range(1..4),
                    dtype: d,
                },
                KernelKind::VectorizedElementwise { numel, dtype: d },
                KernelKind::FusedDropout { numel },
                KernelKind::SoftmaxForward {
                    rows,
                    cols: cols.min(8192),
                    masked: rng.gen_bool(0.5),
                },
                KernelKind::SoftmaxBackward {
                    rows,
                    cols: cols.min(8192),
                    masked: rng.gen_bool(0.5),
                },
                KernelKind::LayerNormForward {
                    rows,
                    cols: cols.min(32768),
                },
                KernelKind::LayerNormBackwardGamma {
                    rows,
                    cols: cols.min(32768),
                },
                KernelKind::LayerNormBackwardInput {
                    rows,
                    cols: cols.min(32768),
                },
                KernelKind::EmbeddingForward {
                    tokens: toks,
                    hidden: cols.min(16384),
                },
                KernelKind::EmbeddingBackward {
                    tokens: toks,
                    hidden: cols.min(16384),
                },
                KernelKind::CrossEntropyForward {
                    tokens: toks.min(65536),
                    vocab: cols,
                },
                KernelKind::CrossEntropyBackward {
                    tokens: toks.min(65536),
                    vocab: cols,
                },
                KernelKind::MultiTensorApply {
                    numel,
                    ops_per_elem: 4,
                },
                KernelKind::Reduce { numel, dtype: d },
                KernelKind::CatCopy {
                    numel,
                    aligned: rng.gen_bool(0.5),
                },
                KernelKind::Memset { bytes: numel },
                KernelKind::TriuTril {
                    numel: numel.min(1 << 26),
                },
                KernelKind::BatchNorm {
                    numel,
                    channels: cols.min(2048),
                    forward: rng.gen_bool(0.5),
                },
                KernelKind::Pool {
                    numel: numel.min(1 << 26),
                    window: 3,
                    forward: rng.gen_bool(0.5),
                },
                KernelKind::FusedTriton {
                    numel,
                    num_instrs: rng.gen_range(2..24),
                    dtype: d,
                },
            ];
            out.push(candidates[rng.gen_range(0..candidates.len())]);
        }

        out.into_iter()
            .enumerate()
            .map(|(i, k)| {
                let t = self.measure(&k, i as u64);
                (k, t)
            })
            .collect()
    }

    /// Profiles host-device copies over a size sweep.
    pub fn memcpy_dataset(&self, scale: ProfileScale) -> Vec<((u64, MemcpyKind), SimTime)> {
        let n = match scale {
            ProfileScale::Test => 60,
            ProfileScale::Full => 400,
        };
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6D63_7079);
        let kinds = [
            MemcpyKind::HostToDevice,
            MemcpyKind::DeviceToHost,
            MemcpyKind::DeviceToDevice,
        ];
        (0..n)
            .map(|i| {
                let bytes = (rng.gen_range(10.0f64..34.0).exp2()) as u64;
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let t = self.kernel_model.memcpy_time(bytes, kind, &self.gpu);
                let f = gaussian_factor(
                    Key::new(self.seed).with(0x6D63).with(i as u64).finish(),
                    self.noise_sigma(t),
                );
                ((bytes, kind), t.scale(f))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_covers_all_families() {
        let p = Profiler::new(GpuSpec::h100(), 1);
        let ds = p.kernel_dataset(ProfileScale::Test);
        let mut fams: Vec<u8> = ds.iter().map(|(k, _)| k.family_id()).collect();
        fams.sort_unstable();
        fams.dedup();
        assert!(fams.len() >= 20, "only {} families covered", fams.len());
        assert!(ds.len() > 400);
    }

    #[test]
    fn measurements_are_deterministic() {
        let p = Profiler::new(GpuSpec::v100(), 9);
        let a = p.kernel_dataset(ProfileScale::Test);
        let b = p.kernel_dataset(ProfileScale::Test);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|((ka, ta), (kb, tb))| ka == kb && ta == tb));
    }

    #[test]
    fn noise_larger_for_short_kernels() {
        let p = Profiler::new(GpuSpec::h100(), 1);
        let short = SimTime::from_us(3.0);
        let long = SimTime::from_ms(5.0);
        assert!(p.noise_sigma(short) > 4.0 * p.noise_sigma(long));
    }

    #[test]
    fn volta_profile_has_no_bf16() {
        let p = Profiler::new(GpuSpec::v100(), 1);
        let ds = p.kernel_dataset(ProfileScale::Test);
        assert!(ds.iter().all(|(k, _)| k.dtype() != Some(Dtype::Bf16)));
    }

    #[test]
    fn memcpy_dataset_spans_sizes() {
        let p = Profiler::new(GpuSpec::a40(), 1);
        let ds = p.memcpy_dataset(ProfileScale::Test);
        let min = ds.iter().map(|((b, _), _)| *b).min().unwrap();
        let max = ds.iter().map(|((b, _), _)| *b).max().unwrap();
        assert!(max / min.max(1) > 1000);
    }
}
