//! Kernel-runtime estimation (§4.3, Appendix B).
//!
//! Maya's estimators are pluggable; the defaults here mirror the paper:
//!
//! - [`forest::RandomForest`]: from-scratch CART regression trees with
//!   bagging, trained on log-runtime targets from profiled kernel
//!   microbenchmarks;
//! - [`profiler::Profiler`]: the "transparent profiling mode" that runs
//!   operations on the (ground-truth) hardware and logs arguments plus
//!   observed runtimes, with duration-dependent measurement noise;
//! - [`collectives::CollectiveTable`]: nccl-tests-style profiled link
//!   tables with log-log interpolation, plus an ASTRA-sim-style
//!   hierarchical analytical fallback for scales beyond the profiled
//!   range (used by the 16K-GPU experiments);
//! - [`estimator::OracleEstimator`]: returns true per-op runtimes, the
//!   "oracle" of Table 3 that isolates simulation-phase error;
//! - [`metrics`]: per-kernel MAPE reports on held-out splits, recreating
//!   Tables 7-9;
//! - [`cache::CachingEstimator`]: a sharded memoizing decorator that
//!   shares kernel / memcpy / collective answers across predictions —
//!   config search re-queries the same shapes thousands of times, so the
//!   prediction engine wraps its estimator in one of these;
//! - [`snapshot`]: memo persistence — `CachingEstimator::snapshot()` /
//!   `restore()` serialize the full memo so a service can warm-start
//!   the next process with everything this one learned.

pub mod cache;
pub mod collectives;
pub mod estimator;
pub mod features;
pub mod forest;
pub mod metrics;
pub mod profiler;
pub mod snapshot;
pub mod tree;

pub use cache::{CacheStats, CachingEstimator};
pub use collectives::{AnalyticalCollectives, CollectiveTable};
pub use estimator::{ForestEstimator, OracleEstimator, RuntimeEstimator};
pub use forest::{ForestParams, RandomForest};
pub use metrics::{mape, MapeReport};
pub use profiler::{ProfileScale, Profiler};
pub use snapshot::SnapshotError;
pub use tree::{RegressionTree, TreeParams};
