//! A memoizing decorator over any [`RuntimeEstimator`].
//!
//! Configuration search re-runs the emulate → collate → estimate →
//! simulate loop thousands of times (Fig. 15, Table 6), and the vast
//! majority of estimator queries repeat across trials: the same GEMM
//! shapes, the same memcpy sizes, the same collective payloads. Every
//! estimator in this crate is a pure function of its arguments, so the
//! answers can be memoized once and shared by every prediction that runs
//! on the same engine — including predictions running concurrently on
//! different threads.
//!
//! [`CachingEstimator`] wraps an inner estimator with a sharded
//! `RwLock` memo per query family (kernel / memcpy / collective).
//! Sharding keeps reader contention negligible when a worker pool fans
//! many simulations over the cache at once; the common steady-state
//! access is a read lock on one shard.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use maya_hw::ClusterSpec;
use maya_trace::{CollectiveKind, KernelKind, MemcpyKind, SimTime};

use crate::estimator::RuntimeEstimator;

/// Number of lock shards per memo map (power of two).
const SHARDS: usize = 16;

/// A hash-sharded `RwLock<HashMap>` memo.
pub(crate) struct Sharded<K> {
    shards: Vec<RwLock<HashMap<K, SimTime>>>,
}

impl<K: Hash + Eq> Sharded<K> {
    fn new() -> Self {
        Sharded {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Inserts an entry directly, bypassing the hit/miss counters — the
    /// snapshot-restore path, which must not masquerade as traffic.
    pub(crate) fn insert(&self, key: K, value: SimTime) {
        self.shard(&key)
            .write()
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    /// Every memoized entry (unordered).
    pub(crate) fn entries(&self) -> Vec<(K, SimTime)>
    where
        K: Clone,
    {
        self.shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("cache shard poisoned")
                    .iter()
                    .map(|(k, &v)| (k.clone(), v))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, SimTime>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Returns the memoized value or computes, stores and returns it.
    fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> SimTime) -> (SimTime, bool) {
        let shard = self.shard(&key);
        if let Some(&t) = shard.read().expect("cache shard poisoned").get(&key) {
            return (t, true);
        }
        let t = compute();
        // A racing writer may have inserted the same key; both computed
        // the same pure value, so last-write-wins is benign.
        shard.write().expect("cache shard poisoned").insert(key, t);
        (t, false)
    }

    /// Read-only probe by reference (no key ownership needed).
    fn get(&self, key: &K) -> Option<SimTime> {
        self.shard(key)
            .read()
            .expect("cache shard poisoned")
            .get(key)
            .copied()
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            s.write().expect("cache shard poisoned").clear();
        }
    }
}

/// Key for memoized collective queries.
///
/// Includes a cluster fingerprint — architecture, shape, and the bit
/// patterns of both link specs (the inputs `collective_time`
/// actually depends on) — so a cache shared across differing clusters
/// cannot alias; a `CachingEstimator` is still intended to live inside
/// one prediction engine with one fixed cluster.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct CollectiveKey {
    pub(crate) kind: CollectiveKind,
    pub(crate) bytes: u64,
    pub(crate) ranks: Vec<u32>,
    pub(crate) arch_id: u64,
    pub(crate) num_gpus: u32,
    pub(crate) gpus_per_node: u32,
    pub(crate) link_bits: [u64; 6],
}

/// Bit patterns of the intra/inter link parameters.
fn link_bits(cluster: &ClusterSpec) -> [u64; 6] {
    [
        cluster.intra_link.bw_gbps.to_bits(),
        cluster.intra_link.latency_us.to_bits(),
        cluster.intra_link.half_ramp_bytes.to_bits(),
        cluster.inter_link.bw_gbps.to_bits(),
        cluster.inter_link.latency_us.to_bits(),
        cluster.inter_link.half_ramp_bytes.to_bits(),
    ]
}

/// Cumulative hit/miss counters for one [`CachingEstimator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries forwarded to the inner estimator.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero when no queries were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizing [`RuntimeEstimator`] decorator (see module docs).
///
/// Transparent by construction: estimators are pure, so a cached answer
/// is byte-identical to an uncached one. Cheap to share — clone the
/// surrounding `Arc`.
pub struct CachingEstimator {
    inner: Arc<dyn RuntimeEstimator>,
    pub(crate) kernels: Sharded<KernelKind>,
    pub(crate) memcpys: Sharded<(u64, MemcpyKind)>,
    pub(crate) collectives: Sharded<CollectiveKey>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachingEstimator {
    /// Wraps an inner estimator.
    pub fn new(inner: Arc<dyn RuntimeEstimator>) -> Self {
        CachingEstimator {
            inner,
            kernels: Sharded::new(),
            memcpys: Sharded::new(),
            collectives: Sharded::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &Arc<dyn RuntimeEstimator> {
        &self.inner
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Total memoized entries across all query families.
    pub fn len(&self) -> usize {
        self.kernels.len() + self.memcpys.len() + self.collectives.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized entry (counters are kept).
    pub fn clear(&self) {
        self.kernels.clear();
        self.memcpys.clear();
        self.collectives.clear();
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl RuntimeEstimator for CachingEstimator {
    fn kernel_time(&self, kernel: &KernelKind) -> SimTime {
        let (t, hit) = self
            .kernels
            .get_or_insert_with(*kernel, || self.inner.kernel_time(kernel));
        self.count(hit);
        t
    }

    fn memcpy_time(&self, bytes: u64, kind: MemcpyKind) -> SimTime {
        let (t, hit) = self
            .memcpys
            .get_or_insert_with((bytes, kind), || self.inner.memcpy_time(bytes, kind));
        self.count(hit);
        t
    }

    fn collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime {
        // A warm simulation resolves hundreds of collectives per trial;
        // probe with a thread-local scratch key (its ranks buffer is
        // reused) so the hit path never allocates. Only a miss pays the
        // `ranks.to_vec()` for the owned key it inserts.
        thread_local! {
            static SCRATCH: std::cell::RefCell<CollectiveKey> =
                const { std::cell::RefCell::new(CollectiveKey {
                    kind: CollectiveKind::AllReduce,
                    bytes: 0,
                    ranks: Vec::new(),
                    arch_id: 0,
                    num_gpus: 0,
                    gpus_per_node: 0,
                    link_bits: [0; 6],
                }) };
        }
        // One construction site: the scratch key is the only place the
        // field set is assembled; a miss clones it for the insert.
        let probe = SCRATCH.with(|scratch| {
            let mut key = scratch.borrow_mut();
            key.kind = kind;
            key.bytes = bytes;
            key.ranks.clear();
            key.ranks.extend_from_slice(ranks);
            key.arch_id = cluster.gpu.arch.id();
            key.num_gpus = cluster.num_gpus();
            key.gpus_per_node = cluster.gpus_per_node;
            key.link_bits = link_bits(cluster);
            match self.collectives.get(&key) {
                Some(t) => Ok(t),
                None => Err(key.clone()),
            }
        });
        match probe {
            Ok(t) => {
                self.count(true);
                t
            }
            Err(key) => {
                // Scratch borrow is released before calling the inner
                // estimator (which may be arbitrarily nested). A racing
                // writer inserts the same pure value; last-write-wins
                // is benign.
                let t = self.inner.collective_time(kind, bytes, ranks, cluster);
                self.collectives.insert(key, t);
                self.count(false);
                t
            }
        }
    }

    fn name(&self) -> &'static str {
        "caching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OracleEstimator;
    use maya_trace::Dtype;

    fn oracle_pair() -> (OracleEstimator, CachingEstimator, ClusterSpec) {
        let cluster = ClusterSpec::h100(1, 8);
        let oracle = OracleEstimator::new(&cluster);
        (oracle, CachingEstimator::new(Arc::new(oracle)), cluster)
    }

    #[test]
    fn cached_equals_uncached_for_all_query_families() {
        let (oracle, cached, cluster) = oracle_pair();
        let kernels = [
            KernelKind::Gemm {
                m: 1024,
                n: 512,
                k: 2048,
                dtype: Dtype::Bf16,
            },
            KernelKind::Gemm {
                m: 64,
                n: 64,
                k: 64,
                dtype: Dtype::Fp32,
            },
            KernelKind::Memset { bytes: 4096 },
        ];
        for k in &kernels {
            // Twice: the second query is served from the memo.
            assert_eq!(cached.kernel_time(k), oracle.kernel_time(k));
            assert_eq!(cached.kernel_time(k), oracle.kernel_time(k));
        }
        for bytes in [1u64 << 10, 1 << 20, 1 << 28] {
            for kind in [MemcpyKind::HostToDevice, MemcpyKind::DeviceToDevice] {
                assert_eq!(
                    cached.memcpy_time(bytes, kind),
                    oracle.memcpy_time(bytes, kind)
                );
                assert_eq!(
                    cached.memcpy_time(bytes, kind),
                    oracle.memcpy_time(bytes, kind)
                );
            }
        }
        let ranks: Vec<u32> = (0..8).collect();
        for kind in [CollectiveKind::AllReduce, CollectiveKind::AllGather] {
            let want = oracle.collective_time(kind, 1 << 24, &ranks, &cluster);
            assert_eq!(
                cached.collective_time(kind, 1 << 24, &ranks, &cluster),
                want
            );
            assert_eq!(
                cached.collective_time(kind, 1 << 24, &ranks, &cluster),
                want
            );
        }
    }

    #[test]
    fn repeat_queries_hit() {
        let (_, cached, _) = oracle_pair();
        let k = KernelKind::Gemm {
            m: 256,
            n: 256,
            k: 256,
            dtype: Dtype::Fp16,
        };
        cached.kernel_time(&k);
        assert_eq!(cached.stats(), CacheStats { hits: 0, misses: 1 });
        for _ in 0..9 {
            cached.kernel_time(&k);
        }
        assert_eq!(cached.stats(), CacheStats { hits: 9, misses: 1 });
        assert_eq!(cached.len(), 1);
        assert!((cached.stats().hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn distinct_rank_sets_do_not_alias() {
        let (oracle, cached, cluster) = oracle_pair();
        let intra: Vec<u32> = (0..4).collect();
        let cross: Vec<u32> = (0..8).collect();
        let a = cached.collective_time(CollectiveKind::AllReduce, 1 << 26, &intra, &cluster);
        let b = cached.collective_time(CollectiveKind::AllReduce, 1 << 26, &cross, &cluster);
        assert_eq!(
            a,
            oracle.collective_time(CollectiveKind::AllReduce, 1 << 26, &intra, &cluster)
        );
        assert_eq!(
            b,
            oracle.collective_time(CollectiveKind::AllReduce, 1 << 26, &cross, &cluster)
        );
        assert_ne!(a, b, "different rank sets must not share an entry");
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        let (oracle, cached, _) = oracle_pair();
        let cached = Arc::new(cached);
        let shapes: Vec<KernelKind> = (0..64)
            .map(|i| KernelKind::Gemm {
                m: 64 + i,
                n: 128,
                k: 256,
                dtype: Dtype::Bf16,
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cached = Arc::clone(&cached);
                let shapes = shapes.clone();
                s.spawn(move || {
                    for k in &shapes {
                        let got = cached.kernel_time(k);
                        assert_eq!(got, oracle.kernel_time(k));
                    }
                });
            }
        });
        assert_eq!(cached.len(), 64);
        let st = cached.stats();
        assert_eq!(st.hits + st.misses, 4 * 64);
    }

    #[test]
    fn clear_empties_the_memo() {
        let (_, cached, _) = oracle_pair();
        cached.kernel_time(&KernelKind::Memset { bytes: 64 });
        assert!(!cached.is_empty());
        cached.clear();
        assert!(cached.is_empty());
    }
}
