//! A memoizing decorator over any [`RuntimeEstimator`].
//!
//! Configuration search re-runs the emulate → collate → estimate →
//! simulate loop thousands of times (Fig. 15, Table 6), and the vast
//! majority of estimator queries repeat across trials: the same GEMM
//! shapes, the same memcpy sizes, the same collective payloads. Every
//! estimator in this crate is a pure function of its arguments, so the
//! answers can be memoized once and shared by every prediction that runs
//! on the same engine — including predictions running concurrently on
//! different threads.
//!
//! [`CachingEstimator`] wraps an inner estimator with a sharded
//! `RwLock` memo per query family (kernel / memcpy / collective).
//! Sharding keeps reader contention negligible when a worker pool fans
//! many simulations over the cache at once; the common steady-state
//! access is a read lock on one shard.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use maya_hw::ClusterSpec;
use maya_obs::Counter;
use maya_trace::{CollectiveKind, KernelKind, MemcpyKind, SimTime};

use crate::estimator::RuntimeEstimator;

/// Number of lock shards per memo map (power of two).
const SHARDS: usize = 16;

/// One memoized answer plus its last-access stamp (for LRU eviction).
///
/// The stamp is atomic so the hot hit path can refresh recency under a
/// *read* lock; only inserts and evictions take the write lock.
struct Entry {
    value: SimTime,
    stamp: AtomicU64,
    /// When the entry was (re)inserted — the TTL reference point.
    inserted: Instant,
}

/// A hash-sharded `RwLock<HashMap>` memo with an optional LRU entry cap
/// and an optional time-to-live.
pub(crate) struct Sharded<K> {
    shards: Vec<RwLock<HashMap<K, Entry>>>,
    /// Per-shard entry budget; `None` is unbounded. The user-facing cap
    /// is divided over the shards, so the effective total rounds up to
    /// a multiple of [`SHARDS`].
    cap_per_shard: Option<usize>,
    /// Maximum entry age since insertion; `None` lives forever. Expiry
    /// is lazy: an expired entry is dropped (and counted as an
    /// eviction) when a lookup finds it, not by a background sweeper.
    ttl: Option<Duration>,
    /// Logical clock stamped onto entries at insert and on every hit.
    clock: AtomicU64,
    /// Entries dropped to respect the cap or the TTL. An obs counter
    /// handle shared with the owning estimator (and, through it, any
    /// metrics registry that mirrors it), not a private atomic.
    evictions: Counter,
}

impl<K: Hash + Eq + Clone> Sharded<K> {
    fn new(capacity: Option<usize>, ttl: Option<Duration>, evictions: Counter) -> Self {
        Sharded {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            cap_per_shard: capacity.map(|c| c.div_ceil(SHARDS).max(1)),
            ttl,
            clock: AtomicU64::new(0),
            evictions,
        }
    }

    /// Whether `e` has outlived the TTL.
    fn expired(&self, e: &Entry) -> bool {
        self.ttl.is_some_and(|ttl| e.inserted.elapsed() > ttl)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Entries examined per eviction. Sampled LRU: the victim is the
    /// oldest stamp among a small prefix of the map's (arbitrary)
    /// iteration order, not a full scan — at steady state a capped
    /// cache is full on *every* miss, and an O(shard) scan under the
    /// write lock would stall all concurrent readers of the shard.
    /// Shards at or below the sample size (cap ≤ 16·8) still get exact
    /// LRU.
    const EVICTION_SAMPLE: usize = 8;

    /// Drops an approximately-least-recently-used entry of `map` while
    /// it is at the cap. O(EVICTION_SAMPLE) per eviction.
    fn evict_if_full(&self, map: &mut HashMap<K, Entry>) {
        let Some(cap) = self.cap_per_shard else {
            return;
        };
        while map.len() >= cap {
            let Some(victim) = map
                .iter()
                .take(Self::EVICTION_SAMPLE)
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            map.remove(&victim);
            self.evictions.inc();
        }
    }

    /// Inserts an entry directly, bypassing the hit/miss counters — the
    /// snapshot-restore path, which must not masquerade as traffic.
    /// Respects the LRU cap like any other insert.
    pub(crate) fn insert(&self, key: K, value: SimTime) {
        let stamp = self.tick();
        let mut map = self.shard(&key).write().expect("cache shard poisoned");
        if let Some(e) = map.get_mut(&key) {
            e.value = value;
            e.stamp.store(stamp, Ordering::Relaxed);
            // lint:allow(wall-clock-in-output): TTL bookkeeping only — insertion stamps never reach predictions or serialized output
            e.inserted = Instant::now();
            return;
        }
        self.evict_if_full(&mut map);
        map.insert(
            key,
            Entry {
                value,
                stamp: AtomicU64::new(stamp),
                // lint:allow(wall-clock-in-output): TTL bookkeeping only — never serialized
                inserted: Instant::now(),
            },
        );
    }

    /// Every live (non-expired) memoized entry (unordered).
    pub(crate) fn entries(&self) -> Vec<(K, SimTime)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("cache shard poisoned")
                    .iter()
                    .filter(|(_, e)| !self.expired(e))
                    .map(|(k, e)| (k.clone(), e.value))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Entry>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Returns the memoized value or computes, stores and returns it.
    fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> SimTime) -> (SimTime, bool) {
        if let Some(t) = self.get(&key) {
            return (t, true);
        }
        let t = compute();
        // A racing writer may have inserted the same key; both computed
        // the same pure value, so last-write-wins is benign.
        self.insert(key, t);
        (t, false)
    }

    /// Read-only probe by reference (no key ownership needed); a hit
    /// refreshes the entry's LRU stamp. An entry past its TTL reads as
    /// a miss and is dropped on the spot (counted as an eviction), so a
    /// long-lived service re-derives stale answers instead of serving
    /// them forever.
    fn get(&self, key: &K) -> Option<SimTime> {
        let shard = self.shard(key);
        {
            let map = shard.read().expect("cache shard poisoned");
            match map.get(key) {
                None => return None,
                Some(e) if !self.expired(e) => {
                    e.stamp.store(self.tick(), Ordering::Relaxed);
                    return Some(e.value);
                }
                Some(_) => {} // expired: fall through to the write path
            }
        }
        let mut map = shard.write().expect("cache shard poisoned");
        // Re-check under the write lock: a racing insert may have
        // refreshed the entry between the two locks.
        if map.get(key).is_some_and(|e| self.expired(e)) {
            map.remove(key);
            self.evictions.inc();
        }
        None
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            s.write().expect("cache shard poisoned").clear();
        }
    }
}

/// Key for memoized collective queries.
///
/// Includes a cluster fingerprint — architecture, shape, and the bit
/// patterns of both link specs (the inputs `collective_time`
/// actually depends on) — so a cache shared across differing clusters
/// cannot alias; a `CachingEstimator` is still intended to live inside
/// one prediction engine with one fixed cluster.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct CollectiveKey {
    pub(crate) kind: CollectiveKind,
    pub(crate) bytes: u64,
    pub(crate) ranks: Vec<u32>,
    pub(crate) arch_id: u64,
    pub(crate) num_gpus: u32,
    pub(crate) gpus_per_node: u32,
    pub(crate) link_bits: [u64; 6],
}

/// Bit patterns of the intra/inter link parameters.
fn link_bits(cluster: &ClusterSpec) -> [u64; 6] {
    [
        cluster.intra_link.bw_gbps.to_bits(),
        cluster.intra_link.latency_us.to_bits(),
        cluster.intra_link.half_ramp_bytes.to_bits(),
        cluster.inter_link.bw_gbps.to_bits(),
        cluster.inter_link.latency_us.to_bits(),
        cluster.inter_link.half_ramp_bytes.to_bits(),
    ]
}

/// Cumulative hit/miss/eviction counters for one [`CachingEstimator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries forwarded to the inner estimator.
    pub misses: u64,
    /// Entries dropped to respect the LRU capacity (0 when unbounded).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero when no queries were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizing [`RuntimeEstimator`] decorator (see module docs).
///
/// Transparent by construction: estimators are pure, so a cached answer
/// is byte-identical to an uncached one. Cheap to share — clone the
/// surrounding `Arc`.
pub struct CachingEstimator {
    inner: Arc<dyn RuntimeEstimator>,
    pub(crate) kernels: Sharded<KernelKind>,
    pub(crate) memcpys: Sharded<(u64, MemcpyKind)>,
    pub(crate) collectives: Sharded<CollectiveKey>,
    // Obs counter handles, not private atomics: `obs_counters` hands
    // the same cells to a metrics registry, so a scrape reads live
    // values instead of a second bespoke stats surface.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl CachingEstimator {
    /// Wraps an inner estimator with an unbounded memo.
    pub fn new(inner: Arc<dyn RuntimeEstimator>) -> Self {
        CachingEstimator::with_limits(inner, None, None)
    }

    /// Wraps an inner estimator, bounding each memo family (kernel /
    /// memcpy / collective) to roughly `capacity` entries with sampled
    /// least-recently-used eviction — exact LRU within small shards,
    /// approximate beyond, never an O(shard) scan on the hot path.
    ///
    /// The cap is approximate: it is divided over the 16 lock shards,
    /// so the effective per-family bound rounds up to a multiple of 16.
    /// Eviction counts surface through [`CacheStats::evictions`].
    /// `None` keeps the memo unbounded (the default — right for batch
    /// runs; long-running services should set a cap so an adversarial
    /// or merely diverse workload cannot grow the memo without limit).
    pub fn with_capacity(inner: Arc<dyn RuntimeEstimator>, capacity: Option<usize>) -> Self {
        CachingEstimator::with_limits(inner, capacity, None)
    }

    /// Wraps an inner estimator with both retention bounds: the LRU
    /// entry cap of [`CachingEstimator::with_capacity`] *and* a
    /// time-to-live. An entry older than `ttl` (measured from its last
    /// insertion) reads as a miss, is dropped lazily at that lookup,
    /// and counts into [`CacheStats::evictions`] exactly like an LRU
    /// eviction. Estimator answers are pure, so aging an entry out can
    /// only cost a recomputation, never change a result — the TTL is a
    /// memory bound for long-lived services, letting entries a workload
    /// stopped asking for age away even when the LRU cap is never hit.
    /// `None` disables the respective bound.
    pub fn with_limits(
        inner: Arc<dyn RuntimeEstimator>,
        capacity: Option<usize>,
        ttl: Option<Duration>,
    ) -> Self {
        // All three families report into one eviction counter, which
        // is what `CacheStats::evictions` always surfaced.
        let evictions = Counter::detached();
        CachingEstimator {
            inner,
            kernels: Sharded::new(capacity, ttl, evictions.clone()),
            memcpys: Sharded::new(capacity, ttl, evictions.clone()),
            collectives: Sharded::new(capacity, ttl, evictions.clone()),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions,
        }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &Arc<dyn RuntimeEstimator> {
        &self.inner
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Live handles to the `(hits, misses, evictions)` cells —
    /// the very counters [`CachingEstimator::stats`] reads — so a
    /// service can surface them in its `maya_obs` snapshot without a
    /// parallel plumbing path.
    pub fn obs_counters(&self) -> (Counter, Counter, Counter) {
        (
            self.hits.clone(),
            self.misses.clone(),
            self.evictions.clone(),
        )
    }

    /// Total memoized entries across all query families.
    pub fn len(&self) -> usize {
        self.kernels.len() + self.memcpys.len() + self.collectives.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized entry (counters are kept).
    pub fn clear(&self) {
        self.kernels.clear();
        self.memcpys.clear();
        self.collectives.clear();
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
    }
}

impl RuntimeEstimator for CachingEstimator {
    fn kernel_time(&self, kernel: &KernelKind) -> SimTime {
        let (t, hit) = self
            .kernels
            .get_or_insert_with(*kernel, || self.inner.kernel_time(kernel));
        self.count(hit);
        t
    }

    fn memcpy_time(&self, bytes: u64, kind: MemcpyKind) -> SimTime {
        let (t, hit) = self
            .memcpys
            .get_or_insert_with((bytes, kind), || self.inner.memcpy_time(bytes, kind));
        self.count(hit);
        t
    }

    fn collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime {
        // A warm simulation resolves hundreds of collectives per trial;
        // probe with a thread-local scratch key (its ranks buffer is
        // reused) so the hit path never allocates. Only a miss pays the
        // `ranks.to_vec()` for the owned key it inserts.
        thread_local! {
            static SCRATCH: std::cell::RefCell<CollectiveKey> =
                const { std::cell::RefCell::new(CollectiveKey {
                    kind: CollectiveKind::AllReduce,
                    bytes: 0,
                    ranks: Vec::new(),
                    arch_id: 0,
                    num_gpus: 0,
                    gpus_per_node: 0,
                    link_bits: [0; 6],
                }) };
        }
        // One construction site: the scratch key is the only place the
        // field set is assembled; a miss clones it for the insert.
        let probe = SCRATCH.with(|scratch| {
            let mut key = scratch.borrow_mut();
            key.kind = kind;
            key.bytes = bytes;
            key.ranks.clear();
            key.ranks.extend_from_slice(ranks);
            key.arch_id = cluster.gpu.arch.id();
            key.num_gpus = cluster.num_gpus();
            key.gpus_per_node = cluster.gpus_per_node;
            key.link_bits = link_bits(cluster);
            match self.collectives.get(&key) {
                Some(t) => Ok(t),
                None => Err(key.clone()),
            }
        });
        match probe {
            Ok(t) => {
                self.count(true);
                t
            }
            Err(key) => {
                // Scratch borrow is released before calling the inner
                // estimator (which may be arbitrarily nested). A racing
                // writer inserts the same pure value; last-write-wins
                // is benign.
                let t = self.inner.collective_time(kind, bytes, ranks, cluster);
                self.collectives.insert(key, t);
                self.count(false);
                t
            }
        }
    }

    fn name(&self) -> &'static str {
        "caching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OracleEstimator;
    use maya_trace::Dtype;

    fn oracle_pair() -> (OracleEstimator, CachingEstimator, ClusterSpec) {
        let cluster = ClusterSpec::h100(1, 8);
        let oracle = OracleEstimator::new(&cluster);
        (oracle, CachingEstimator::new(Arc::new(oracle)), cluster)
    }

    #[test]
    fn cached_equals_uncached_for_all_query_families() {
        let (oracle, cached, cluster) = oracle_pair();
        let kernels = [
            KernelKind::Gemm {
                m: 1024,
                n: 512,
                k: 2048,
                dtype: Dtype::Bf16,
            },
            KernelKind::Gemm {
                m: 64,
                n: 64,
                k: 64,
                dtype: Dtype::Fp32,
            },
            KernelKind::Memset { bytes: 4096 },
        ];
        for k in &kernels {
            // Twice: the second query is served from the memo.
            assert_eq!(cached.kernel_time(k), oracle.kernel_time(k));
            assert_eq!(cached.kernel_time(k), oracle.kernel_time(k));
        }
        for bytes in [1u64 << 10, 1 << 20, 1 << 28] {
            for kind in [MemcpyKind::HostToDevice, MemcpyKind::DeviceToDevice] {
                assert_eq!(
                    cached.memcpy_time(bytes, kind),
                    oracle.memcpy_time(bytes, kind)
                );
                assert_eq!(
                    cached.memcpy_time(bytes, kind),
                    oracle.memcpy_time(bytes, kind)
                );
            }
        }
        let ranks: Vec<u32> = (0..8).collect();
        for kind in [CollectiveKind::AllReduce, CollectiveKind::AllGather] {
            let want = oracle.collective_time(kind, 1 << 24, &ranks, &cluster);
            assert_eq!(
                cached.collective_time(kind, 1 << 24, &ranks, &cluster),
                want
            );
            assert_eq!(
                cached.collective_time(kind, 1 << 24, &ranks, &cluster),
                want
            );
        }
    }

    #[test]
    fn repeat_queries_hit() {
        let (_, cached, _) = oracle_pair();
        let k = KernelKind::Gemm {
            m: 256,
            n: 256,
            k: 256,
            dtype: Dtype::Fp16,
        };
        cached.kernel_time(&k);
        assert_eq!(
            cached.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        for _ in 0..9 {
            cached.kernel_time(&k);
        }
        assert_eq!(
            cached.stats(),
            CacheStats {
                hits: 9,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cached.len(), 1);
        assert!((cached.stats().hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn distinct_rank_sets_do_not_alias() {
        let (oracle, cached, cluster) = oracle_pair();
        let intra: Vec<u32> = (0..4).collect();
        let cross: Vec<u32> = (0..8).collect();
        let a = cached.collective_time(CollectiveKind::AllReduce, 1 << 26, &intra, &cluster);
        let b = cached.collective_time(CollectiveKind::AllReduce, 1 << 26, &cross, &cluster);
        assert_eq!(
            a,
            oracle.collective_time(CollectiveKind::AllReduce, 1 << 26, &intra, &cluster)
        );
        assert_eq!(
            b,
            oracle.collective_time(CollectiveKind::AllReduce, 1 << 26, &cross, &cluster)
        );
        assert_ne!(a, b, "different rank sets must not share an entry");
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        let (oracle, cached, _) = oracle_pair();
        let cached = Arc::new(cached);
        let shapes: Vec<KernelKind> = (0..64)
            .map(|i| KernelKind::Gemm {
                m: 64 + i,
                n: 128,
                k: 256,
                dtype: Dtype::Bf16,
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cached = Arc::clone(&cached);
                let shapes = shapes.clone();
                s.spawn(move || {
                    for k in &shapes {
                        let got = cached.kernel_time(k);
                        assert_eq!(got, oracle.kernel_time(k));
                    }
                });
            }
        });
        assert_eq!(cached.len(), 64);
        let st = cached.stats();
        assert_eq!(st.hits + st.misses, 4 * 64);
    }

    #[test]
    fn clear_empties_the_memo() {
        let (_, cached, _) = oracle_pair();
        cached.kernel_time(&KernelKind::Memset { bytes: 64 });
        assert!(!cached.is_empty());
        cached.clear();
        assert!(cached.is_empty());
    }

    fn gemm(i: u64) -> KernelKind {
        KernelKind::Gemm {
            m: 64 + i,
            n: 128,
            k: 256,
            dtype: Dtype::Bf16,
        }
    }

    #[test]
    fn capacity_bounds_the_memo_and_counts_evictions() {
        let cluster = ClusterSpec::h100(1, 8);
        let capped =
            CachingEstimator::with_capacity(Arc::new(OracleEstimator::new(&cluster)), Some(32));
        for i in 0..200 {
            capped.kernel_time(&gemm(i));
        }
        let st = capped.stats();
        // The cap is per-shard approximate: 32 entries over 16 shards
        // is 2 per shard, so the family can never exceed 32.
        assert!(capped.len() <= 32, "len {} exceeds cap", capped.len());
        assert_eq!(st.misses, 200);
        assert_eq!(
            st.evictions,
            200 - capped.len() as u64,
            "every insert beyond the cap evicts exactly one entry"
        );
    }

    #[test]
    fn eviction_prefers_the_least_recently_used_entry() {
        let cluster = ClusterSpec::h100(1, 8);
        // Two entries per shard: enough room that the freshest-stamped
        // key in a shard is never the eviction victim.
        let capped =
            CachingEstimator::with_capacity(Arc::new(OracleEstimator::new(&cluster)), Some(32));
        let hot = gemm(0);
        capped.kernel_time(&hot);
        // Flood with cold shapes, re-touching the hot one between
        // batches so its stamp stays newest in its shard.
        for i in 1..100 {
            capped.kernel_time(&gemm(i));
            capped.kernel_time(&hot);
        }
        let st = capped.stats();
        assert!(st.evictions > 0, "the flood must evict");
        // The hot key was never evicted: its final query is a hit, and
        // it missed exactly once (the initial insert).
        assert_eq!(
            st.misses, 100,
            "only the 100 distinct shapes ever missed — the hot key stayed resident"
        );
    }

    #[test]
    fn ttl_ages_entries_out_and_counts_evictions() {
        let cluster = ClusterSpec::h100(1, 8);
        let ttl = Duration::from_millis(25);
        let aged = CachingEstimator::with_limits(
            Arc::new(OracleEstimator::new(&cluster)),
            None,
            Some(ttl),
        );
        let k = gemm(1);
        let first = aged.kernel_time(&k);
        assert_eq!(
            aged.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        // Within the TTL: a plain hit.
        assert_eq!(aged.kernel_time(&k), first);
        assert_eq!(aged.stats().hits, 1);
        // Past the TTL: the stale entry reads as a miss, is dropped and
        // counted as an eviction, and the recomputed answer is
        // identical (pure function).
        std::thread::sleep(ttl + Duration::from_millis(15));
        assert_eq!(aged.kernel_time(&k), first);
        let st = aged.stats();
        assert_eq!(st.misses, 2, "expired entry must re-derive");
        assert_eq!(st.evictions, 1, "TTL expiry counts as an eviction");
        // The re-insert refreshed the age: hit again.
        assert_eq!(aged.kernel_time(&k), first);
        assert_eq!(aged.stats().hits, 2);
    }

    #[test]
    fn ttl_expired_entries_leave_the_snapshot_view() {
        let cluster = ClusterSpec::h100(1, 8);
        let ttl = Duration::from_millis(20);
        let aged = CachingEstimator::with_limits(
            Arc::new(OracleEstimator::new(&cluster)),
            None,
            Some(ttl),
        );
        aged.kernel_time(&gemm(1));
        aged.kernel_time(&gemm(2));
        assert_eq!(aged.kernels.entries().len(), 2);
        std::thread::sleep(ttl + Duration::from_millis(15));
        aged.kernel_time(&gemm(3));
        assert_eq!(
            aged.kernels.entries().len(),
            1,
            "expired entries must not be persisted as warm state"
        );
    }

    #[test]
    fn no_ttl_means_no_aging() {
        let (_, cached, _) = oracle_pair();
        cached.kernel_time(&gemm(1));
        std::thread::sleep(Duration::from_millis(30));
        cached.kernel_time(&gemm(1));
        assert_eq!(cached.stats().hits, 1);
        assert_eq!(cached.stats().evictions, 0);
    }

    #[test]
    fn uncapped_memo_never_evicts() {
        let (_, cached, _) = oracle_pair();
        for i in 0..500 {
            cached.kernel_time(&gemm(i));
        }
        assert_eq!(cached.len(), 500);
        assert_eq!(cached.stats().evictions, 0);
    }

    #[test]
    fn capped_answers_match_uncapped() {
        // Eviction changes *retention*, never answers: re-deriving an
        // evicted entry recomputes the same pure value.
        let cluster = ClusterSpec::h100(1, 8);
        let oracle = OracleEstimator::new(&cluster);
        let capped =
            CachingEstimator::with_capacity(Arc::new(OracleEstimator::new(&cluster)), Some(16));
        for round in 0..3 {
            let _ = round;
            for i in 0..40 {
                assert_eq!(capped.kernel_time(&gemm(i)), oracle.kernel_time(&gemm(i)));
            }
        }
    }
}
