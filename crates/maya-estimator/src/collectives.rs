//! Collective-operation runtime estimation.
//!
//! Two reference estimators, matching §4.3 "Network Model":
//!
//! - [`CollectiveTable`]: nccl-tests-style profiled data over (collective,
//!   group size, topology tier, payload) with log-log interpolation —
//!   "profiled collective data from their target cluster";
//! - [`AnalyticalCollectives`]: an ASTRA-sim-style hierarchical
//!   topology-aware analytical model for scales beyond the profiled range
//!   (the paper integrates ASTRA-sim for its 16K-GPU study, §7.4).

use std::collections::BTreeMap;

use maya_hw::noise::{gaussian_factor, Key};
use maya_hw::{ClusterSpec, GroundTruthNetModel};
use maya_trace::{CollectiveKind, SimTime};

/// ASTRA-sim-style analytical collective model (ring algebra over the
/// bottleneck link, hierarchical latency).
#[derive(Clone, Copy, Debug)]
pub struct AnalyticalCollectives;

impl AnalyticalCollectives {
    /// Predicts the on-the-wire time of one collective.
    pub fn predict(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime {
        let n = ranks.len().max(1) as f64;
        if n <= 1.0 {
            return SimTime::from_us(2.0);
        }
        let b = bytes as f64;
        let single = cluster.single_node(ranks);
        let link = if single {
            cluster.intra_link
        } else {
            cluster.inter_link
        };
        let bw = link.effective_bw(b);
        let mut nodes: Vec<u32> = ranks.iter().map(|&r| cluster.node_of(r)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let lat = if single {
            (n - 1.0) * cluster.intra_link.latency_us
        } else {
            let intra = (cluster.gpus_per_node.min(ranks.len() as u32) as f64 - 1.0).max(0.0);
            intra * cluster.intra_link.latency_us
                + (nodes.len() as f64 - 1.0) * cluster.inter_link.latency_us
        };
        let bw_bytes = match kind {
            CollectiveKind::AllReduce => 2.0 * (n - 1.0) / n * b,
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => (n - 1.0) / n * b,
            CollectiveKind::Broadcast | CollectiveKind::Reduce => b,
            CollectiveKind::Send { .. } | CollectiveKind::Recv { .. } => b,
            CollectiveKind::AllToAll => (n - 1.0) / n * b * 1.3,
        };
        let t = match kind {
            CollectiveKind::Send { .. } | CollectiveKind::Recv { .. } => {
                link.latency_us * 1e-6 + b / link.effective_bw(b)
            }
            _ => lat * 1e-6 + bw_bytes / bw,
        };
        SimTime::from_secs(t)
    }
}

/// Key of one profiled configuration.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct TableKey {
    kind: u8,
    nranks: u32,
    spans_nodes: bool,
}

/// Profiled collective timings with log-log interpolation in payload.
#[derive(Clone, Debug)]
pub struct CollectiveTable {
    /// Sorted (log2 bytes, log2 time-us) curves per configuration.
    curves: BTreeMap<TableKey, Vec<(f64, f64)>>,
    fallback: AnalyticalCollectives,
}

impl CollectiveTable {
    /// Profiles the cluster (via its ground-truth network) the way
    /// `nccl-tests` would: group sizes up to the cluster, payloads from
    /// tens of KB to tens of GB.
    pub fn profile(cluster: &ClusterSpec, net: &GroundTruthNetModel, seed: u64) -> Self {
        let total = cluster.num_gpus();
        let mut sizes: Vec<u32> = vec![2, 4, 8, 16, 32, 64, 128, 256];
        sizes.retain(|&n| n <= total);
        if !sizes.contains(&total) && total >= 2 {
            sizes.push(total);
        }
        let kinds = [
            CollectiveKind::AllReduce,
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::Broadcast,
            CollectiveKind::Send { peer: 1 },
            CollectiveKind::AllToAll,
        ];
        let mut curves: BTreeMap<TableKey, Vec<(f64, f64)>> = BTreeMap::new();
        let mut sample = 0u64;
        for &n in &sizes {
            // Packed layout (fills nodes in order) and strided layout
            // (one rank per node), covering both topology tiers.
            let mut layouts: Vec<Vec<u32>> = vec![(0..n).collect()];
            if cluster.num_nodes >= n && cluster.gpus_per_node > 1 {
                layouts.push((0..n).map(|i| i * cluster.gpus_per_node).collect());
            }
            for ranks in layouts {
                let spans = !cluster.single_node(&ranks);
                for &kind in &kinds {
                    let key = TableKey {
                        kind: kind.id(),
                        nranks: n,
                        spans_nodes: spans,
                    };
                    let curve = curves.entry(key).or_default();
                    if !curve.is_empty() {
                        continue; // layout with same tier already profiled
                    }
                    for exp in 14..=34u32 {
                        let bytes = 1u64 << exp;
                        let t = net.collective_time(kind, bytes, &ranks, cluster);
                        sample += 1;
                        let noisy = t.scale(gaussian_factor(
                            Key::new(seed).with(0x6E63_636C).with(sample).finish(),
                            0.02,
                        ));
                        curve.push((exp as f64, noisy.as_us().max(1e-3).log2()));
                    }
                }
            }
        }
        CollectiveTable {
            curves,
            fallback: AnalyticalCollectives,
        }
    }

    /// Predicts the on-the-wire duration of a collective.
    pub fn predict(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime {
        let n = ranks.len().max(1) as u32;
        if n <= 1 {
            return SimTime::from_us(2.0);
        }
        let spans = !cluster.single_node(ranks);
        let key = TableKey {
            kind: kind.id(),
            nranks: n,
            spans_nodes: spans,
        };
        if let Some(curve) = self.curves.get(&key) {
            return Self::interp(curve, bytes);
        }
        // Nearest profiled size on the same tier, corrected by ring
        // algebra; otherwise the analytical fallback.
        let neighbors: Vec<&TableKey> = self
            .curves
            .keys()
            .filter(|k| k.kind == kind.id() && k.spans_nodes == spans)
            .collect();
        if let Some(nearest) = neighbors
            .into_iter()
            .min_by_key(|k| (k.nranks as i64 - n as i64).unsigned_abs())
        {
            let base = Self::interp(&self.curves[nearest], bytes);
            let scale = |x: u32| 2.0 * (x as f64 - 1.0) / x as f64;
            return base.scale(scale(n) / scale(nearest.nranks));
        }
        self.fallback.predict(kind, bytes, ranks, cluster)
    }

    /// Piecewise-linear interpolation in (log bytes, log time).
    fn interp(curve: &[(f64, f64)], bytes: u64) -> SimTime {
        let x = (bytes.max(1) as f64).log2();
        let i = curve.partition_point(|&(cx, _)| cx < x);
        let (x0, y0, x1, y1) = if i == 0 {
            let (a, b) = (curve[0], curve[1.min(curve.len() - 1)]);
            (a.0, a.1, b.0, b.1)
        } else if i >= curve.len() {
            let (a, b) = (curve[curve.len() - 2], curve[curve.len() - 1]);
            (a.0, a.1, b.0, b.1)
        } else {
            let (a, b) = (curve[i - 1], curve[i]);
            (a.0, a.1, b.0, b.1)
        };
        let y = if (x1 - x0).abs() < 1e-12 {
            y0
        } else {
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        };
        SimTime::from_us(y.exp2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cluster: &ClusterSpec) -> CollectiveTable {
        CollectiveTable::profile(cluster, &GroundTruthNetModel::default(), 7)
    }

    #[test]
    fn table_matches_ground_truth_closely_in_range() {
        let cluster = ClusterSpec::h100(2, 8);
        let t = table(&cluster);
        let net = GroundTruthNetModel::default();
        let ranks: Vec<u32> = (0..8).collect();
        for exp in [16u32, 20, 24, 28] {
            let bytes = 1u64 << exp;
            let pred = t.predict(CollectiveKind::AllReduce, bytes, &ranks, &cluster);
            let truth = net.collective_time(CollectiveKind::AllReduce, bytes, &ranks, &cluster);
            let err = (pred.as_secs_f64() / truth.as_secs_f64() - 1.0).abs();
            assert!(err < 0.15, "bytes {bytes}: err {err}");
        }
    }

    #[test]
    fn tier_distinction_matters() {
        let cluster = ClusterSpec::h100(4, 8);
        let t = table(&cluster);
        let packed: Vec<u32> = (0..4).collect(); // one node
        let strided: Vec<u32> = (0..4).map(|i| i * 8).collect(); // 4 nodes
        let b = 1 << 26;
        let intra = t.predict(CollectiveKind::AllReduce, b, &packed, &cluster);
        let inter = t.predict(CollectiveKind::AllReduce, b, &strided, &cluster);
        assert!(inter > intra * 2, "intra {intra} inter {inter}");
    }

    #[test]
    fn unseen_group_size_scales_by_ring_algebra() {
        let cluster = ClusterSpec::h100(1, 8);
        let t = table(&cluster);
        // 6 ranks was never profiled (2/4/8 were).
        let ranks: Vec<u32> = (0..6).collect();
        let pred = t.predict(CollectiveKind::AllReduce, 1 << 26, &ranks, &cluster);
        let truth = GroundTruthNetModel::default().collective_time(
            CollectiveKind::AllReduce,
            1 << 26,
            &ranks,
            &cluster,
        );
        let err = (pred.as_secs_f64() / truth.as_secs_f64() - 1.0).abs();
        assert!(err < 0.30, "err {err}");
    }

    #[test]
    fn analytical_fallback_reasonable_at_hyperscale() {
        let cluster = ClusterSpec::h100(2048, 8); // 16K GPUs
        let a = AnalyticalCollectives;
        let ranks: Vec<u32> = (0..2048).map(|i| i * 8).collect();
        let t = a.predict(CollectiveKind::AllReduce, 1 << 30, &ranks, &cluster);
        let truth = GroundTruthNetModel::default().collective_time(
            CollectiveKind::AllReduce,
            1 << 30,
            &ranks,
            &cluster,
        );
        let ratio = t.as_secs_f64() / truth.as_secs_f64();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn interpolation_is_monotone_in_bytes() {
        let cluster = ClusterSpec::v100(2, 8);
        let t = table(&cluster);
        let ranks: Vec<u32> = (0..16).collect();
        let mut last = SimTime::ZERO;
        for exp in 15..33u32 {
            let cur = t.predict(CollectiveKind::AllGather, 1 << exp, &ranks, &cluster);
            assert!(cur >= last.scale(0.9), "non-monotone at 2^{exp}");
            last = cur;
        }
    }
}
