//! The pluggable runtime-estimator interface and its two reference
//! implementations: the trained random-forest estimator and the oracle.

use maya_hw::{ClusterSpec, GroundTruthKernelModel, GroundTruthNetModel};
use maya_trace::{CollectiveKind, KernelKind, MemcpyKind, SimTime};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::collectives::CollectiveTable;
use crate::features::kernel_features;
use crate::forest::{ForestParams, RandomForest};
use crate::metrics::MapeReport;
use crate::profiler::{ProfileScale, Profiler};

/// A source of per-operation runtime predictions for the simulator.
///
/// "Maya's kernel runtime estimators are pluggable components... Users
/// can provide any runtime estimator of their choosing for any kernel
/// type" (§4.3).
pub trait RuntimeEstimator: Send + Sync {
    /// Predicted duration of a compute kernel.
    fn kernel_time(&self, kernel: &KernelKind) -> SimTime;
    /// Predicted duration of a host/device copy.
    fn memcpy_time(&self, bytes: u64, kind: MemcpyKind) -> SimTime;
    /// Predicted on-the-wire duration of a collective over `ranks`.
    fn collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime;
    /// Estimator name for reports.
    fn name(&self) -> &'static str;
}

/// The oracle estimator: true per-operation runtimes (Table 3). Residual
/// end-to-end error under this estimator isolates what the emulation +
/// simulation phases lose.
#[derive(Clone, Copy, Debug)]
pub struct OracleEstimator {
    /// True kernel timing.
    pub kernel_model: GroundTruthKernelModel,
    /// True network timing.
    pub net_model: GroundTruthNetModel,
    /// The GPU being modeled.
    pub gpu: maya_hw::GpuSpec,
}

impl OracleEstimator {
    /// Builds the oracle for a cluster.
    pub fn new(cluster: &ClusterSpec) -> Self {
        OracleEstimator {
            kernel_model: GroundTruthKernelModel::default(),
            net_model: GroundTruthNetModel::default(),
            gpu: cluster.gpu,
        }
    }
}

impl RuntimeEstimator for OracleEstimator {
    fn kernel_time(&self, kernel: &KernelKind) -> SimTime {
        self.kernel_model.kernel_time(kernel, &self.gpu)
    }

    fn memcpy_time(&self, bytes: u64, kind: MemcpyKind) -> SimTime {
        self.kernel_model.memcpy_time(bytes, kind, &self.gpu)
    }

    fn collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime {
        self.net_model.collective_time(kind, bytes, ranks, cluster)
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// The default estimator: random forests over profiled kernel data plus
/// profiled collective tables.
///
/// The forests are trained on the *residual* between measured time and a
/// naive peak-throughput roofline — the regression then only has to
/// learn the (bounded) efficiency structure, which sharply reduces
/// leaf-quantization error across the six-orders-of-magnitude runtime
/// range.
pub struct ForestEstimator {
    kernels: RandomForest,
    memcpy: RandomForest,
    collectives: CollectiveTable,
    gpu: maya_hw::GpuSpec,
}

/// Naive peak-throughput roofline: no efficiency curves, no
/// quantization structure — just `max(flops/peak, bytes/bw)` plus the
/// launch floor. This is a *feature*, not the ground-truth model.
fn naive_roofline(kernel: &KernelKind, gpu: &maya_hw::GpuSpec) -> f64 {
    let dtype = kernel.dtype().unwrap_or(maya_trace::Dtype::Fp32);
    let t_c = kernel.flops() / gpu.peak_flops(dtype);
    let t_m = kernel.bytes_accessed() / (gpu.mem_bw_gbps * 1e9);
    t_c.max(t_m).max(gpu.kernel_floor_us * 1e-6)
}

/// Naive memcpy roofline.
fn naive_memcpy(bytes: u64, kind: MemcpyKind, gpu: &maya_hw::GpuSpec) -> f64 {
    let bw = match kind {
        MemcpyKind::HostToDevice | MemcpyKind::DeviceToHost => gpu.pcie_bw_gbps * 1e9,
        MemcpyKind::DeviceToDevice => gpu.mem_bw_gbps * 1e9 / 2.0,
        MemcpyKind::HostToHost => 20.0e9,
    };
    (bytes as f64 / bw).max(2.0e-6)
}

impl ForestEstimator {
    /// Profiles the cluster and trains the estimator, returning the
    /// held-out per-kernel MAPE report (Tables 7-9).
    pub fn train(cluster: &ClusterSpec, scale: ProfileScale, seed: u64) -> (Self, MapeReport) {
        let profiler = Profiler::new(cluster.gpu, seed);
        let mut data = profiler.kernel_dataset(scale);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7370_6C69);
        data.shuffle(&mut rng);
        let split = data.len() * 8 / 10;
        let (train, test) = data.split_at(split);

        let gpu = cluster.gpu;
        let x: Vec<Vec<f64>> = train.iter().map(|(k, _)| kernel_features(k)).collect();
        let y: Vec<f64> = train
            .iter()
            .map(|(k, t)| (t.as_secs_f64().max(1e-9) / naive_roofline(k, &gpu)).ln())
            .collect();
        let forest_params = ForestParams {
            seed: seed ^ 0x6672,
            ..Default::default()
        };
        let kernels = RandomForest::fit(&x, &y, &forest_params);

        // Held-out evaluation against the measured test split.
        let samples: Vec<(&'static str, SimTime, SimTime)> = test
            .iter()
            .map(|(k, t)| {
                let ratio = kernels.predict(&kernel_features(k)).exp();
                let pred = SimTime::from_secs(naive_roofline(k, &gpu) * ratio);
                (k.name(), pred, *t)
            })
            .collect();
        let report = MapeReport::from_samples(&samples);

        let mc = profiler.memcpy_dataset(scale);
        let mx: Vec<Vec<f64>> = mc
            .iter()
            .map(|((b, kind), _)| vec![(*b as f64).max(1.0).log2(), *kind as u8 as f64])
            .collect();
        let my: Vec<f64> = mc
            .iter()
            .map(|((b, kind), t)| (t.as_secs_f64().max(1e-9) / naive_memcpy(*b, *kind, &gpu)).ln())
            .collect();
        let memcpy = RandomForest::fit(
            &mx,
            &my,
            &ForestParams {
                n_trees: 8,
                seed: seed ^ 0x6D63,
                ..Default::default()
            },
        );

        let collectives =
            CollectiveTable::profile(cluster, &GroundTruthNetModel::default(), seed ^ 0x636F);
        (
            ForestEstimator {
                kernels,
                memcpy,
                collectives,
                gpu,
            },
            report,
        )
    }
}

impl RuntimeEstimator for ForestEstimator {
    fn kernel_time(&self, kernel: &KernelKind) -> SimTime {
        let ratio = self.kernels.predict(&kernel_features(kernel)).exp();
        SimTime::from_secs(naive_roofline(kernel, &self.gpu) * ratio)
    }

    fn memcpy_time(&self, bytes: u64, kind: MemcpyKind) -> SimTime {
        let row = vec![(bytes as f64).max(1.0).log2(), kind as u8 as f64];
        let ratio = self.memcpy.predict(&row).exp();
        SimTime::from_secs(naive_memcpy(bytes, kind, &self.gpu) * ratio)
    }

    fn collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime {
        self.collectives.predict(kind, bytes, ranks, cluster)
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::Dtype;

    #[test]
    fn oracle_matches_ground_truth_exactly() {
        let cluster = ClusterSpec::h100(1, 8);
        let oracle = OracleEstimator::new(&cluster);
        let k = KernelKind::Gemm {
            m: 1024,
            n: 1024,
            k: 1024,
            dtype: Dtype::Bf16,
        };
        assert_eq!(
            oracle.kernel_time(&k),
            GroundTruthKernelModel::default().kernel_time(&k, &cluster.gpu)
        );
        assert_eq!(oracle.name(), "oracle");
    }

    #[test]
    fn forest_estimator_learns_big_gemms_well() {
        let cluster = ClusterSpec::h100(1, 8);
        let (est, report) = ForestEstimator::train(&cluster, ProfileScale::Test, 11);
        // Large GEMMs: prediction should land within ~35% even with the
        // tiny test-scale training set.
        let truth_model = GroundTruthKernelModel::default();
        let mut errs = Vec::new();
        for mnk in [
            (2048u64, 2048u64, 2048u64),
            (4096, 1024, 4096),
            (8192, 512, 1024),
        ] {
            let k = KernelKind::Gemm {
                m: mnk.0,
                n: mnk.1,
                k: mnk.2,
                dtype: Dtype::Bf16,
            };
            let p = est.kernel_time(&k).as_secs_f64();
            let t = truth_model.kernel_time(&k, &cluster.gpu).as_secs_f64();
            errs.push((p / t - 1.0).abs());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 0.35, "mean big-gemm error {mean}");
        assert!(report.overall() > 0.0, "report should show nonzero error");
    }

    #[test]
    fn memcpy_predictions_scale() {
        let cluster = ClusterSpec::a40(1, 8);
        let (est, _) = ForestEstimator::train(&cluster, ProfileScale::Test, 3);
        let small = est.memcpy_time(1 << 16, MemcpyKind::HostToDevice);
        let big = est.memcpy_time(1 << 30, MemcpyKind::HostToDevice);
        assert!(big > small * 10, "small {small} big {big}");
    }

    #[test]
    fn collective_predictions_use_topology() {
        let cluster = ClusterSpec::h100(2, 8);
        let (est, _) = ForestEstimator::train(&cluster, ProfileScale::Test, 5);
        let intra: Vec<u32> = (0..8).collect();
        let cross: Vec<u32> = (0..16).collect();
        let a = est.collective_time(CollectiveKind::AllReduce, 1 << 26, &intra, &cluster);
        let b = est.collective_time(CollectiveKind::AllReduce, 1 << 26, &cross, &cluster);
        assert!(b > a);
    }
}
