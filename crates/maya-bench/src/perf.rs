//! The committed perf-report harness behind `BENCH_<version>.json`.
//!
//! `cargo run --release -p maya-bench --bin perf_report` measures the
//! serving-path hot loops — sim events/sec, predictions/sec through
//! `predict_batch`, search trials/sec, loopback wire round-trips/sec —
//! and writes a schema-versioned JSON report at the repo root so perf
//! regressions show up in review as a diff of committed numbers.
//!
//! This module holds everything the binary and its tests share: the
//! report vocabulary, the timing helper, the JSON emitter, and a small
//! strict JSON parser used to validate a report file (`perf_report
//! --check`, run by CI against both the smoke output and the committed
//! artifact, so schema drift fails the build rather than rotting).

use std::time::Instant;

/// Monotonically increasing schema version. Bump it whenever the JSON
/// layout or the required scenario set changes, and regenerate the
/// committed artifact under the new name (`BENCH_<version>.json`); it
/// never decreases (see `schema_version_is_monotonic`).
pub const SCHEMA_VERSION: u32 = 10;

/// Value of the report's `schema` discriminator field.
pub const SCHEMA_NAME: &str = "maya-perf-report";

/// Scenario names every valid report must carry, one per measured hot
/// loop (plus the frozen-core and fresh-state sim baselines that give
/// the optimized number meaning).
pub const REQUIRED_SCENARIOS: &[&str] = &[
    "sim_dense_scratch",
    "sim_dense_fresh",
    "sim_reference",
    "net_contended",
    "predict_cold",
    "predict_warm",
    "search_sequential",
    "search_batched",
    "wire_loopback",
    "obs_overhead",
    "lint_scan",
    "lint_interproc",
];

/// The default report path at the repo root.
pub fn default_report_path() -> String {
    format!("BENCH_{SCHEMA_VERSION}.json")
}

/// One measured scenario: a throughput figure plus the per-iteration
/// latency distribution it was computed from.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name (see [`REQUIRED_SCENARIOS`]).
    pub name: String,
    /// Unit of `throughput` ("events/sec", "predictions/sec", ...).
    pub unit: String,
    /// Timed iterations.
    pub iters: u64,
    /// Elements per second: `elems_per_iter * iters / total_wall`.
    pub throughput: f64,
    /// Median per-iteration latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile (nearest-rank) per-iteration latency,
    /// microseconds.
    pub p99_us: f64,
}

/// Times `iters` calls of `f`, individually, and folds them into a
/// [`ScenarioResult`]. `elems_per_iter` is how many unit-elements one
/// call processes (events for the sim, predictions for a batch, ...).
/// The caller is responsible for any warmup before measuring.
pub fn measure(
    name: &str,
    unit: &str,
    iters: u64,
    elems_per_iter: f64,
    mut f: impl FnMut(),
) -> ScenarioResult {
    assert!(iters > 0, "measure needs at least one iteration");
    let mut lat_us: Vec<f64> = Vec::with_capacity(iters as usize);
    let t0 = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        f();
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total = t0.elapsed().as_secs_f64();
    ScenarioResult {
        name: name.to_string(),
        unit: unit.to_string(),
        iters,
        throughput: elems_per_iter * iters as f64 / total.max(1e-12),
        p50_us: crate::quantile(&mut lat_us, 0.50),
        p99_us: crate::quantile(&mut lat_us, 0.99),
    }
}

/// Where the numbers were taken: enough to judge whether two committed
/// reports are comparable.
#[derive(Clone, Debug)]
pub struct MachineInfo {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available logical CPUs.
    pub cpus: u64,
    /// Git revision the binary was run against ("unknown" outside a
    /// checkout).
    pub git_rev: String,
}

impl MachineInfo {
    /// Probes the current machine; `git_rev` is supplied by the caller
    /// (the binary shells out to `git`, tests pass a fixed string).
    pub fn probe(git_rev: String) -> MachineInfo {
        MachineInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            git_rev,
        }
    }
}

/// The full report, serialized to `BENCH_<version>.json`.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Whether this was a `--smoke` run (fewer iterations; numbers are
    /// for schema checking, not comparison).
    pub smoke: bool,
    /// Machine + revision the numbers were taken on.
    pub machine: MachineInfo,
    /// All measured scenarios (superset of [`REQUIRED_SCENARIOS`]).
    pub scenarios: Vec<ScenarioResult>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

impl PerfReport {
    /// Pretty-printed JSON, stable field order, trailing newline (the
    /// file is committed; diffs should be line-oriented).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", esc(SCHEMA_NAME)));
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"os\": \"{}\",\n", esc(&self.machine.os)));
        out.push_str(&format!("  \"arch\": \"{}\",\n", esc(&self.machine.arch)));
        out.push_str(&format!("  \"cpus\": {},\n", self.machine.cpus));
        out.push_str(&format!(
            "  \"git_rev\": \"{}\",\n",
            esc(&self.machine.git_rev)
        ));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"iters\": {}, \
                 \"throughput\": {}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
                esc(&s.name),
                esc(&s.unit),
                s.iters,
                num(s.throughput),
                num(s.p50_us),
                num(s.p99_us),
                if i + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// A small strict JSON reader — just enough to structurally validate a
/// report file without a dependency. Numbers become `f64`; objects keep
/// insertion order.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn eat(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.lit("true", Value::Bool(true)),
                b'f' => self.lit("false", Value::Bool(false)),
                b'n' => self.lit("null", Value::Null),
                _ => self.number(),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                        self.pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let cp =
                                    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(cp).ok_or("surrogate \\u escape unsupported")?,
                                );
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                    }
                    _ => {
                        // Re-walk the char boundary for multi-byte UTF-8.
                        let start = self.pos - 1;
                        let s = std::str::from_utf8(&self.bytes[start..])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
            s.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number '{s}' at byte {start}"))
        }
    }
}

fn require<'a>(obj: &'a json::Value, key: &str) -> Result<&'a json::Value, String> {
    obj.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn require_str<'a>(obj: &'a json::Value, key: &str) -> Result<&'a str, String> {
    require(obj, key)?
        .as_str()
        .ok_or_else(|| format!("key '{key}' must be a string"))
}

fn require_num(obj: &json::Value, key: &str) -> Result<f64, String> {
    require(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("key '{key}' must be a number"))
}

/// Structurally validates a report document: the schema discriminator,
/// an exact [`SCHEMA_VERSION`] match (a committed artifact from another
/// version is drift — regenerate it), machine fields, and every
/// [`REQUIRED_SCENARIOS`] entry with sane finite numbers.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    if require_str(&doc, "schema")? != SCHEMA_NAME {
        return Err(format!("schema discriminator is not '{SCHEMA_NAME}'"));
    }
    let version = require_num(&doc, "schema_version")?;
    if version.fract() != 0.0 || version < 1.0 {
        return Err("schema_version must be a positive integer".into());
    }
    if version as u32 != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} does not match this binary's {SCHEMA_VERSION} \
             (regenerate the report)"
        ));
    }
    require_str(&doc, "os")?;
    require_str(&doc, "arch")?;
    require_str(&doc, "git_rev")?;
    if require_num(&doc, "cpus")? < 1.0 {
        return Err("cpus must be >= 1".into());
    }
    if !matches!(require(&doc, "smoke")?, json::Value::Bool(_)) {
        return Err("key 'smoke' must be a bool".into());
    }
    let scenarios = require(&doc, "scenarios")?
        .as_array()
        .ok_or("key 'scenarios' must be an array")?;
    let mut names = Vec::new();
    for s in scenarios {
        let name = require_str(s, "name")?.to_string();
        require_str(s, "unit")?;
        if require_num(s, "iters")? < 1.0 {
            return Err(format!("scenario '{name}': iters must be >= 1"));
        }
        let throughput = require_num(s, "throughput")?;
        if !throughput.is_finite() || throughput <= 0.0 {
            return Err(format!(
                "scenario '{name}': throughput must be finite and > 0"
            ));
        }
        let p50 = require_num(s, "p50_us")?;
        let p99 = require_num(s, "p99_us")?;
        if !p50.is_finite() || !p99.is_finite() || p50 < 0.0 || p50 > p99 {
            return Err(format!(
                "scenario '{name}': need 0 <= p50_us <= p99_us, got {p50} / {p99}"
            ));
        }
        names.push(name);
    }
    for required in REQUIRED_SCENARIOS {
        if !names.iter().any(|n| n == required) {
            return Err(format!("missing required scenario '{required}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report() -> PerfReport {
        PerfReport {
            smoke: true,
            machine: MachineInfo::probe("deadbeef".into()),
            scenarios: REQUIRED_SCENARIOS
                .iter()
                .enumerate()
                .map(|(i, name)| ScenarioResult {
                    name: name.to_string(),
                    unit: "elems/sec".into(),
                    iters: 4,
                    throughput: 1000.0 + i as f64,
                    p50_us: 10.0,
                    p99_us: 25.0,
                })
                .collect(),
        }
    }

    #[test]
    fn schema_version_is_monotonic() {
        // The floor only ever rises; lowering it would let an old
        // committed artifact pass --check against newer code. Read the
        // version back out of the report path so the check covers what
        // actually hits disk.
        let path = default_report_path();
        let version: u32 = path
            .strip_prefix("BENCH_")
            .and_then(|p| p.strip_suffix(".json"))
            .and_then(|v| v.parse().ok())
            .expect("report path is BENCH_<version>.json");
        assert_eq!(version, SCHEMA_VERSION);
        assert!(version >= 6, "schema version must never decrease");
    }

    #[test]
    fn emitted_report_validates() {
        let report = synthetic_report();
        let text = report.to_json();
        validate_report(&text).expect("emitted report is schema-valid");
    }

    #[test]
    fn measure_produces_valid_scenario() {
        let mut n = 0u64;
        let r = measure("spin", "spins/sec", 8, 3.0, || n += 1);
        assert_eq!(n, 8);
        assert_eq!(r.iters, 8);
        assert!(r.throughput > 0.0);
        assert!(r.p50_us <= r.p99_us);
    }

    #[test]
    fn validation_rejects_drift() {
        let good = synthetic_report().to_json();

        // Version drift.
        let bumped = good.replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SCHEMA_VERSION + 1),
        );
        assert!(validate_report(&bumped)
            .unwrap_err()
            .contains("schema_version"));

        // A required scenario renamed away.
        let renamed = good.replace("sim_reference", "sim_reference_gone");
        assert!(validate_report(&renamed)
            .unwrap_err()
            .contains("sim_reference"));

        // A required top-level key dropped.
        let no_rev = good.replace("\"git_rev\"", "\"git_rev_x\"");
        assert!(validate_report(&no_rev).unwrap_err().contains("git_rev"));

        // Not JSON at all.
        assert!(validate_report("BENCH { nope").is_err());
    }

    #[test]
    fn json_parser_round_trips_nesting() {
        let v =
            json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n\"y\" é"}, "d": true, "e": null}"#)
                .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            json::Value::Num(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\n\"y\" é"
        );
        assert_eq!(v.get("d"), Some(&json::Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&json::Value::Null));
        assert!(json::parse("{\"a\": 1,}").is_err());
        assert!(json::parse("[1, 2] trailing").is_err());
    }
}
