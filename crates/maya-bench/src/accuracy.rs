//! Shared evaluation harness for the accuracy experiments (Figs. 7-9).

use maya_trace::SimTime;

use crate::{baselines, valid_configs, Scenario};
use maya_search::ConfigPoint;
use maya_torchlet::TrainingJob;

/// What one system said about one configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SystemVerdict {
    /// Predicted iteration time.
    Time(SimTime),
    /// Predicted out-of-memory.
    Oom,
    /// Configuration outside the system's modeling domain.
    Unsupported,
}

impl SystemVerdict {
    /// Time if predicted.
    pub fn time(&self) -> Option<SimTime> {
        match self {
            SystemVerdict::Time(t) => Some(*t),
            _ => None,
        }
    }
}

/// Full evaluation record for one configuration.
#[derive(Clone, Debug)]
pub struct ConfigEval {
    /// The configuration.
    pub config: ConfigPoint,
    /// Testbed measurement (None = actually OOMs).
    pub actual: Option<SimTime>,
    /// Maya's verdict.
    pub maya: SystemVerdict,
    /// Baseline verdicts, in `baselines()` order.
    pub baselines: Vec<(&'static str, SystemVerdict)>,
}

/// Evaluates up to `n_configs` valid configurations of a scenario with
/// the testbed, Maya (forest estimator) and all baselines.
pub fn evaluate_scenario(scenario: &Scenario, n_configs: usize, seed: u64) -> Vec<ConfigEval> {
    let maya = scenario.maya(seed);
    let systems = baselines();
    let template = scenario.template();
    let configs = valid_configs(scenario, n_configs);
    let mut out = Vec::with_capacity(configs.len());
    for config in configs {
        let job = TrainingJob {
            parallel: config,
            ..template
        };
        let actual = match maya.measure_actual(&job) {
            Ok(Ok(m)) => Some(m.iteration_time),
            Ok(Err(_)) => None,
            Err(e) => panic!("testbed failed on {config}: {e}"),
        };
        let maya_verdict = match maya.predict_job(&job) {
            Ok(p) => match p.iteration_time() {
                Some(t) => SystemVerdict::Time(t),
                None => SystemVerdict::Oom,
            },
            Err(_) => SystemVerdict::Unsupported,
        };
        let baseline_verdicts = systems
            .iter()
            .map(|b| {
                let v = match b.predict(&job, &scenario.cluster) {
                    maya_baselines::BaselinePrediction::Time(t) => SystemVerdict::Time(t),
                    maya_baselines::BaselinePrediction::OutOfMemory => SystemVerdict::Oom,
                    maya_baselines::BaselinePrediction::Unsupported => SystemVerdict::Unsupported,
                };
                (b.name(), v)
            })
            .collect();
        out.push(ConfigEval {
            config,
            actual,
            maya: maya_verdict,
            baselines: baseline_verdicts,
        });
    }
    out
}

/// Keeps the evaluations that actually completed, ranked fastest-first
/// by measured time (the paper's "top N valid configurations").
pub fn ranked_completions(evals: &[ConfigEval]) -> Vec<&ConfigEval> {
    let mut v: Vec<&ConfigEval> = evals.iter().filter(|e| e.actual.is_some()).collect();
    v.sort_by_key(|e| e.actual.expect("filtered"));
    v
}

/// Absolute-percentage errors of one system over completed configs.
pub fn system_errors(evals: &[&ConfigEval], system: Option<&'static str>) -> Vec<f64> {
    evals
        .iter()
        .filter_map(|e| {
            let actual = e.actual?;
            let pred = match system {
                None => e.maya.time(),
                Some(name) => e
                    .baselines
                    .iter()
                    .find(|(n, _)| *n == name)
                    .and_then(|(_, v)| v.time()),
            }?;
            Some(crate::ape(pred, actual))
        })
        .collect()
}
