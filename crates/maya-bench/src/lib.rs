//! Shared harness for the per-figure/per-table benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§7); see DESIGN.md's experiment index. Output is
//! plain text: aligned tables for tables, CSV-like series for figures.
//!
//! Environment knobs (all optional):
//! - `MAYA_BENCH_CONFIGS`: cap on evaluated configurations per setup
//!   (default varies per binary; raise for closer-to-paper coverage).
//! - `MAYA_BENCH_FULL`: set to `1` to use paper-scale profiling datasets.

pub mod accuracy;
pub mod perf;

use maya::{Maya, MayaBuilder};
use maya_baselines::{Amped, BaselineModel, Calculon, Proteus};
use maya_estimator::ProfileScale;
use maya_hw::ClusterSpec;
use maya_search::{ConfigPoint, ConfigSpace};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::{Dtype, SimTime};

/// One evaluation scenario (hardware + model + batch), as in §7.1.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name ("GPT3 2.7B - 8xV100").
    pub name: &'static str,
    /// Cluster spec.
    pub cluster: ClusterSpec,
    /// Model.
    pub model: ModelSpec,
    /// Global batch size.
    pub global_batch: u32,
    /// Training precision.
    pub precision: Dtype,
}

impl Scenario {
    /// The four headline setups of Figures 7-9.
    pub fn headline() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "GPT3 2.7B - 8xV100",
                cluster: ClusterSpec::v100(1, 8),
                model: ModelSpec::gpt3_2_7b(),
                global_batch: 64,
                precision: Dtype::Fp16,
            },
            Scenario {
                name: "GPT3 2.7B - 16xV100",
                cluster: ClusterSpec::v100(2, 8),
                model: ModelSpec::gpt3_2_7b(),
                global_batch: 64,
                precision: Dtype::Fp16,
            },
            Scenario {
                name: "GPT3 18.4B - 32xH100",
                cluster: ClusterSpec::h100(4, 8),
                model: ModelSpec::gpt3_18_4b(),
                global_batch: 128,
                precision: Dtype::Bf16,
            },
            Scenario {
                name: "GPT3 18.4B - 64xH100",
                cluster: ClusterSpec::h100(8, 8),
                model: ModelSpec::gpt3_18_4b(),
                global_batch: 256,
                precision: Dtype::Bf16,
            },
        ]
    }

    /// Job template for this scenario.
    pub fn template(&self) -> TrainingJob {
        TrainingJob {
            model: self.model,
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: self.global_batch,
            world: self.cluster.num_gpus(),
            gpus_per_node: self.cluster.gpus_per_node,
            precision: self.precision,
            iterations: 1,
        }
    }

    /// Builder pre-configured for this scenario (dedup + selective
    /// launch on); chain estimator/thread knobs per binary.
    pub fn builder(&self) -> MayaBuilder {
        MayaBuilder::new(self.cluster.clone()).selective_launch(true)
    }

    /// A Maya instance with the trained forest estimator for this
    /// cluster (dedup + selective launch on).
    pub fn maya(&self, seed: u64) -> Maya {
        self.builder()
            .forest(profile_scale(), seed)
            .build()
            .expect("scenario runtime builds")
    }

    /// A Maya instance with the oracle estimator.
    pub fn maya_oracle(&self) -> Maya {
        self.builder().build().expect("scenario runtime builds")
    }
}

/// Profile scale from the environment: paper-scale sweeps by default,
/// `MAYA_BENCH_FAST=1` for quick smoke runs.
pub fn profile_scale() -> ProfileScale {
    if std::env::var("MAYA_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        ProfileScale::Test
    } else {
        ProfileScale::Full
    }
}

/// Config-count budget from the environment.
pub fn config_budget(default: usize) -> usize {
    std::env::var("MAYA_BENCH_CONFIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Enumerates structurally-valid configurations for a scenario, sampled
/// deterministically down to `limit`.
pub fn valid_configs(scenario: &Scenario, limit: usize) -> Vec<ConfigPoint> {
    let template = scenario.template();
    let all: Vec<ConfigPoint> = ConfigSpace::default()
        .enumerate()
        .into_iter()
        .filter(|c| {
            TrainingJob {
                parallel: *c,
                ..template
            }
            .validate()
            .is_ok()
        })
        .collect();
    // Always include the "plain" tp x pp sub-space (the only recipes the
    // narrowest baselines can express), then stride-sample the rest.
    let mut picked: Vec<ConfigPoint> = all
        .iter()
        .filter(|c| {
            c.microbatch_multiplier == 1
                && c.virtual_stages == 1
                && !c.activation_recompute
                && !c.sequence_parallel
                && !c.distributed_optimizer
        })
        .copied()
        .collect();
    picked.truncate(limit / 2);
    if picked.len() < limit {
        let remaining = limit - picked.len();
        let rest: Vec<ConfigPoint> = all
            .iter()
            .filter(|c| !picked.contains(c))
            .copied()
            .collect();
        if rest.len() > remaining {
            let stride = rest.len() as f64 / remaining as f64;
            picked.extend((0..remaining).map(|i| rest[(i as f64 * stride) as usize]));
        } else {
            picked.extend(rest);
        }
    }
    picked
}

/// The three baseline systems of §7.1.
pub fn baselines() -> Vec<Box<dyn BaselineModel>> {
    vec![
        Box::new(Proteus::default()),
        Box::new(Calculon),
        Box::new(Amped),
    ]
}

/// Absolute percentage error.
pub fn ape(predicted: SimTime, actual: SimTime) -> f64 {
    (predicted.as_secs_f64() - actual.as_secs_f64()).abs() / actual.as_secs_f64().max(1e-12)
}

/// Quantile of a (will be sorted) sample.
pub fn quantile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    values[idx]
}

/// Prints a CSV-ish series block (the "figure" output format).
pub fn print_series(title: &str, header: &str, rows: &[String]) {
    println!("# {title}");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_scenarios_have_valid_configs() {
        for s in Scenario::headline() {
            let configs = valid_configs(&s, 50);
            assert!(!configs.is_empty(), "{} has no valid configs", s.name);
            assert!(configs.len() <= 50);
            let template = s.template();
            for c in &configs {
                assert!(TrainingJob {
                    parallel: *c,
                    ..template
                }
                .validate()
                .is_ok());
            }
        }
    }

    #[test]
    fn quantiles() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&mut v, 0.0), 1.0);
        assert_eq!(quantile(&mut v, 0.5), 3.0);
        assert_eq!(quantile(&mut v, 1.0), 5.0);
    }

    #[test]
    fn ape_basics() {
        assert!((ape(SimTime::from_ms(11.0), SimTime::from_ms(10.0)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn baseline_set_is_three_systems() {
        let b = baselines();
        let names: Vec<&str> = b.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Proteus", "Calculon", "AMPeD"]);
    }
}
