//! Table 2: effect of each configuration knob on compute / memory /
//! network load, measured from emulated traces at fixed global batch.

use maya_bench::Scenario;
use maya_hw::ClusterSpec;
use maya_torchlet::{ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::{DeviceOp, Dtype};

/// Aggregate loads from one rank-0 trace.
fn loads(job: &TrainingJob, scenario: &Scenario) -> Option<(f64, f64, f64)> {
    if job.validate().is_err() {
        return None;
    }
    let (trace, res) = maya_torchlet::engine::trace_one_rank(job, 0, scenario.cluster.gpu);
    if res.is_err() && !trace.summary.oom {
        return None;
    }
    let flops: f64 = trace
        .kernels()
        .filter_map(|e| e.op.as_kernel().map(|k| k.flops()))
        .sum();
    let mem = trace.summary.peak_mem_bytes as f64;
    let net: f64 = trace
        .events
        .iter()
        .filter_map(|e| match e.op {
            DeviceOp::Collective { desc } => Some(desc.bytes as f64),
            _ => None,
        })
        .sum();
    Some((flops, mem, net))
}

fn arrow(ratio: f64) -> &'static str {
    if ratio > 1.05 {
        "UP"
    } else if ratio < 0.95 {
        "DOWN"
    } else {
        "-"
    }
}

fn main() {
    let cluster = ClusterSpec::h100(1, 8);
    let scenario = Scenario {
        name: "GPT3 2.7B - 8xH100",
        cluster,
        model: ModelSpec::gpt3_2_7b(),
        global_batch: 32,
        precision: Dtype::Bf16,
    };
    let base_cfg = ParallelConfig {
        tp: 2,
        pp: 2,
        microbatch_multiplier: 2,
        ..Default::default()
    };
    let base_job = TrainingJob {
        parallel: base_cfg,
        ..scenario.template()
    };
    let base = loads(&base_job, &scenario).expect("baseline runs");

    let knobs: Vec<(&str, ParallelConfig)> = vec![
        (
            "Tensor Parallel (x2)",
            ParallelConfig {
                tp: 4,
                pp: 1,
                ..base_cfg
            },
        ),
        (
            "Pipeline Parallel (x2)",
            ParallelConfig {
                tp: 1,
                pp: 4,
                ..base_cfg
            },
        ),
        (
            "Sequence Parallel",
            ParallelConfig {
                sequence_parallel: true,
                ..base_cfg
            },
        ),
        (
            "Pipeline Interleaving",
            ParallelConfig {
                virtual_stages: 2,
                ..base_cfg
            },
        ),
        (
            "Distributed Optimizer",
            ParallelConfig {
                distributed_optimizer: true,
                ..base_cfg
            },
        ),
        (
            "Activation Recompute",
            ParallelConfig {
                activation_recompute: true,
                ..base_cfg
            },
        ),
        (
            "Grad Accumulation (x2)",
            ParallelConfig {
                microbatch_multiplier: 4,
                ..base_cfg
            },
        ),
    ];
    println!("Table 2: per-rank load vs baseline (tp2 pp2, fixed global batch 32)");
    println!(
        "{:<26} {:>9} {:>9} {:>9}   (ratio to baseline)",
        "Knob", "Compute", "Memory", "Network"
    );
    for (name, cfg) in knobs {
        let job = TrainingJob {
            parallel: cfg,
            ..scenario.template()
        };
        match loads(&job, &scenario) {
            None => println!("{name:<26}   invalid"),
            Some((f, m, n)) => {
                println!(
                    "{:<26} {:>4} {:<4} {:>4} {:<4} {:>4} {:<4}  ({:.2}x, {:.2}x, {:.2}x)",
                    name,
                    arrow(f / base.0),
                    "",
                    arrow(m / base.1),
                    "",
                    arrow(n / base.2),
                    "",
                    f / base.0,
                    m / base.1,
                    n / base.2
                );
            }
        }
    }
}
