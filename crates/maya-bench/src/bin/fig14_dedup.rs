//! Figure 14: impact of dynamic worker deduplication on Maya's
//! end-to-end runtime. Parallelism is fixed while the data-parallel
//! degree (cluster size) grows; added DP workers are redundant, so
//! deduplication should hold the runtime roughly flat.

use maya::MayaBuilder;
use maya_bench::print_series;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use std::time::Instant;

fn main() {
    let parallel = ParallelConfig {
        tp: 2,
        pp: 2,
        microbatch_multiplier: 2,
        activation_recompute: true,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for (label, cluster) in [
        ("8xV100", ClusterSpec::v100(1, 8)),
        ("16xV100", ClusterSpec::v100(2, 8)),
        ("32xV100", ClusterSpec::v100(4, 8)),
        ("32xH100", ClusterSpec::h100(4, 8)),
        ("64xH100", ClusterSpec::h100(8, 8)),
    ] {
        let job = TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            parallel,
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 4 * cluster.num_gpus(),
            world: cluster.num_gpus(),
            gpus_per_node: 8,
            precision: if cluster.gpu.supports_bf16 {
                Dtype::Bf16
            } else {
                Dtype::Fp16
            },
            iterations: 1,
        };
        eprintln!("[fig14] {}...", label);
        let no_opt = MayaBuilder::new(cluster.clone())
            .without_optimizations()
            .build()
            .expect("builds");
        let t0 = Instant::now();
        let p_no = no_opt.predict_job(&job).expect("runs");
        let without = t0.elapsed();

        let with_dedup = MayaBuilder::new(cluster.clone())
            .selective_launch(true)
            .build()
            .expect("builds");
        let t1 = Instant::now();
        let p_yes = with_dedup.predict_job(&job).expect("runs");
        let with = t1.elapsed();

        // Both must agree on the prediction (fidelity-preserving).
        let (a, b) = (
            p_no.iteration_time().expect("fits"),
            p_yes.iteration_time().expect("fits"),
        );
        let drift = (a.as_secs_f64() / b.as_secs_f64() - 1.0).abs() * 100.0;
        rows.push(format!(
            "{label},{:.3},{:.3},{:.0}%,{:.2}%,{},{}",
            without.as_secs_f64(),
            with.as_secs_f64(),
            (1.0 - with.as_secs_f64() / without.as_secs_f64()) * 100.0,
            drift,
            p_no.workers_simulated,
            p_yes.workers_simulated,
        ));
    }
    print_series(
        "Figure 14: worker-deduplication runtime impact (fixed tp2 pp2, growing DP)",
        "setup,no_dedup_s,dedup_s,saving,prediction_drift,workers_no_dedup,workers_dedup",
        &rows,
    );
}
