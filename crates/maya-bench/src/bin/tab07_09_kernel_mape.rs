//! Tables 7/8/9: per-kernel MAPE of the random-forest estimators on
//! held-out validation data for H100, V100 and A40.

use maya_bench::profile_scale;
use maya_estimator::ForestEstimator;
use maya_hw::ClusterSpec;

fn main() {
    let scale = profile_scale();
    for (label, cluster) in [
        ("Table 7 (H100)", ClusterSpec::h100(1, 8)),
        ("Table 8 (V100)", ClusterSpec::v100(1, 8)),
        ("Table 9 (A40)", ClusterSpec::a40(1, 8)),
    ] {
        eprintln!("[tab07-09] profiling + training on {}...", cluster.gpu.name);
        let (_est, report) = ForestEstimator::train(&cluster, scale, 0xBEEF);
        println!("{label} — per-kernel MAPE on a held-out 20% split");
        println!("{}", report.to_table());
    }
    println!("(set MAYA_BENCH_FULL=1 for paper-scale training sweeps)");
}
