//! Figure 15: trial status breakdown (executed / cached / skipped)
//! during configuration search on each setup.

use maya_bench::{print_series, Scenario};
use maya_search::{AlgorithmKind, Objective, TrialScheduler};

fn main() {
    let mut rows = Vec::new();
    for scenario in Scenario::headline() {
        eprintln!("[fig15] searching {}...", scenario.name);
        let maya = scenario.maya_oracle();
        let objective = Objective::new(maya.engine(), scenario.template());
        let result = TrialScheduler::new(&objective).run(AlgorithmKind::CmaEs, 400, 15);
        let s = result.stats;
        let denom = (s.executed + s.skipped).max(1);
        rows.push(format!(
            "{},{},{},{},{},{:.0}%",
            scenario.name,
            s.executed,
            s.cached,
            s.skipped,
            s.invalid,
            s.skipped as f64 / denom as f64 * 100.0
        ));
    }
    print_series(
        "Figure 15: trial status breakdown during config search",
        "setup,executed,cached,skipped,invalid,skip_rate",
        &rows,
    );
}
