//! Table 4: framework generality — models x framework stacks that run
//! under Maya's emulation and produce usable traces.

use maya::MayaBuilder;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    let cluster = ClusterSpec::h100(1, 4);
    let maya = MayaBuilder::new(cluster).build().expect("builds");
    let models: Vec<(&str, ModelSpec)> = vec![
        ("GPT", ModelSpec::gpt3_125m()),
        ("Llama", ModelSpec::llama2_7b()),
        ("BERT", ModelSpec::bert_large()),
        ("ViT", ModelSpec::vit_large()),
        ("T5", ModelSpec::t5_large()),
        ("ResNet", ModelSpec::resnet152()),
    ];
    let flavors: Vec<(&str, FrameworkFlavor, bool)> = vec![
        ("DDP", FrameworkFlavor::Ddp, false),
        ("DDP+compile", FrameworkFlavor::Ddp, true),
        ("FSDP", FrameworkFlavor::Fsdp, false),
        (
            "ZeRO-1",
            FrameworkFlavor::DeepSpeedZero {
                stage: 1,
                activation_offload: false,
            },
            false,
        ),
        (
            "ZeRO-2",
            FrameworkFlavor::DeepSpeedZero {
                stage: 2,
                activation_offload: false,
            },
            false,
        ),
        (
            "ZeRO-3",
            FrameworkFlavor::DeepSpeedZero {
                stage: 3,
                activation_offload: false,
            },
            false,
        ),
        (
            "ZeRO-1+offload",
            FrameworkFlavor::DeepSpeedZero {
                stage: 1,
                activation_offload: true,
            },
            false,
        ),
    ];

    print!("{:<10}", "Model");
    for (fname, _, _) in &flavors {
        print!(" {fname:>14}");
    }
    println!();
    for (mname, model) in &models {
        print!("{mname:<10}");
        for (_, flavor, compile) in &flavors {
            let job = TrainingJob {
                model: *model,
                parallel: ParallelConfig::default(),
                flavor: *flavor,
                compile: *compile,
                global_batch: 16,
                world: 4,
                gpus_per_node: 8,
                precision: Dtype::Bf16,
                iterations: 1,
            };
            let cell = match maya.predict_job(&job) {
                Ok(p) => {
                    if p.oom() {
                        "OOM".to_string()
                    } else {
                        format!("{:.0}ms", p.iteration_time().unwrap().as_ms())
                    }
                }
                Err(_) => "err".to_string(),
            };
            print!(" {cell:>14}");
        }
        println!();
    }
    println!("\n(every cell = emulation ran and produced a prediction; times are per iteration)");
}
