//! Figure 9: cumulative distribution of absolute prediction errors per
//! system, on the smallest and largest setups.

use maya_bench::accuracy::{evaluate_scenario, ranked_completions, system_errors};
use maya_bench::{config_budget, print_series, quantile, Scenario};

fn main() {
    let budget = config_budget(36);
    let setups = Scenario::headline();
    for scenario in [setups[0].clone(), setups[3].clone()] {
        eprintln!("[fig09] evaluating {}...", scenario.name);
        let evals = evaluate_scenario(&scenario, budget, 3000);
        let ranked = ranked_completions(&evals);
        let systems: [(&str, Option<&'static str>); 4] = [
            ("Maya", None),
            ("Proteus", Some("Proteus")),
            ("Calculon", Some("Calculon")),
            ("AMPeD", Some("AMPeD")),
        ];
        let rows: Vec<String> = systems
            .iter()
            .map(|(label, key)| {
                let mut errs: Vec<f64> = system_errors(&ranked, *key)
                    .iter()
                    .map(|e| e * 100.0)
                    .collect();
                if errs.is_empty() {
                    return format!("{label},-,-,-,-,-");
                }
                format!(
                    "{label},{:.2},{:.2},{:.2},{:.2},{:.2}",
                    quantile(&mut errs, 0.10),
                    quantile(&mut errs, 0.25),
                    quantile(&mut errs, 0.50),
                    quantile(&mut errs, 0.75),
                    quantile(&mut errs, 0.90),
                )
            })
            .collect();
        print_series(
            &format!("Figure 9: error CDF, {}", scenario.name),
            "system,p10_err%,p25_err%,p50_err%,p75_err%,p90_err%",
            &rows,
        );
    }
}
