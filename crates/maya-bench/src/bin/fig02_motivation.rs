//! Figure 2: sensitivity of optimal configurations to cluster size
//! (GPT-3 18.4B on H100) — the optimal recipe per size (2a) and the
//! cross-deployment cost-ratio matrix (2b).

use maya_bench::Scenario;
use maya_hw::ClusterSpec;
use maya_search::{Objective, TrialScheduler};
use maya_torchlet::{ModelSpec, TrainingJob};
use maya_trace::Dtype;

fn main() {
    let sizes = [16u32, 32, 64, 128];
    let mut optima = Vec::new();
    for &n in &sizes {
        let cluster = ClusterSpec::h100(n / 8, 8);
        let scenario = Scenario {
            name: "GPT3 18.4B",
            cluster,
            model: ModelSpec::gpt3_18_4b(),
            global_batch: 512,
            precision: Dtype::Bf16,
        };
        eprintln!("[fig02] grid-searching {} GPUs...", n);
        let maya = scenario.maya_oracle();
        let objective = Objective::new(maya.engine(), scenario.template());
        // Deterministic stride sample of the valid space (widen with
        // MAYA_BENCH_CONFIGS).
        let cap = maya_bench::config_budget(120);
        let mut sched = TrialScheduler::new(&objective);
        for c in maya_bench::valid_configs(&scenario, cap) {
            sched.evaluate(&c);
        }
        let result = sched.run(maya_search::AlgorithmKind::Random, 0, 0);
        let (cfg, outcome) = result.best.expect("feasible config exists");
        let t = outcome.time().expect("completed");
        println!(
            "GPUs {:>4}: optimal {}  iter {:.2}s  MFU {:.1}%",
            n,
            cfg,
            t.as_secs_f64(),
            outcome.mfu().unwrap_or(0.0) * 100.0
        );
        optima.push((n, cfg, t));
    }

    // Cross-deployment matrix: run the optimum of size A at size B.
    println!("\nFigure 2b: cross-deployment cost ratio (rows = reference, cols = deployment)");
    print!("{:>10}", "");
    for &(n, _, _) in &optima {
        print!("{n:>10}");
    }
    println!();
    for &(ref_n, ref_cfg, _) in &optima {
        print!("{ref_n:>10}");
        for &(dep_n, _, dep_opt) in &optima {
            let cluster = ClusterSpec::h100(dep_n / 8, 8);
            let scenario = Scenario {
                name: "GPT3 18.4B",
                cluster,
                model: ModelSpec::gpt3_18_4b(),
                global_batch: 512,
                precision: Dtype::Bf16,
            };
            let maya = scenario.maya_oracle();
            let job = TrainingJob {
                parallel: ref_cfg,
                ..scenario.template()
            };
            let cell = if job.validate().is_err() {
                "inval".to_string()
            } else {
                match maya.predict_job(&job) {
                    Ok(p) => match p.iteration_time() {
                        Some(t) => format!("{:.2}", t.as_secs_f64() / dep_opt.as_secs_f64()),
                        None => "OOM".to_string(),
                    },
                    Err(_) => "inval".to_string(),
                }
            };
            print!("{cell:>10}");
        }
        println!();
    }
    println!("\n(cell = cost of reference-size optimum deployed at column size, normalized)");
}
