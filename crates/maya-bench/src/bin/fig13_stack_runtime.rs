//! Figure 13: Maya stack runtime (emulator / collator / predictor /
//! simulator wall time) when scaling the cluster to thousands of GPUs
//! with a fixed configuration.
//!
//! Uses selective launch (8 unique workers, one per pipeline stage) as
//! in §7.4. The model is a scaled-down GPT so the largest point finishes
//! in seconds rather than the paper's ~25 minutes; the *scaling shape*
//! across cluster sizes is the result.

use maya::MayaBuilder;
use maya_bench::print_series;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    let mut rows = Vec::new();
    for dp in [16u32, 32, 64, 128, 256] {
        let world = 8 * 8 * dp; // 1K .. 16K GPUs
        let cluster = ClusterSpec::h100(world / 8, 8);
        let maya = MayaBuilder::new(cluster.clone())
            .selective_launch(true)
            .build()
            .expect("builds");
        let parallel = ParallelConfig {
            tp: 8,
            pp: 8,
            microbatch_multiplier: 4,
            activation_recompute: true,
            sequence_parallel: true,
            distributed_optimizer: true,
            ..Default::default()
        };
        // Per-DP-rank batch fixed: global batch grows with the cluster.
        let job = TrainingJob {
            model: ModelSpec::gpt3_18_4b(),
            parallel,
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: dp * parallel.num_microbatches(),
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        };
        eprintln!("[fig13] {} GPUs...", world);
        let p = maya.predict_job(&job).expect("pipeline runs");
        let t = p.timings;
        // At feasible sizes, also run with all optimizations off to show
        // the full-simulation cost the paper's Fig. 13 is dominated by.
        let full = if world <= 1024 {
            let no_opt = MayaBuilder::new(cluster.clone())
                .without_optimizations()
                .build()
                .expect("builds");
            no_opt
                .predict_job(&job)
                .ok()
                .map(|p| format!("{:.3}", p.timings.total().as_secs_f64()))
                .unwrap_or_else(|| "-".into())
        } else {
            "-".into()
        };
        rows.push(format!(
            "{world},{:.3},{:.3},{:.3},{:.3},{:.3},{},{}",
            t.emulation.as_secs_f64(),
            t.collation.as_secs_f64(),
            t.estimation.as_secs_f64(),
            t.simulation.as_secs_f64(),
            t.total().as_secs_f64(),
            p.trace_events,
            full,
        ));
    }
    print_series(
        "Figure 13: Maya stack runtime vs cluster size (selective launch)",
        "gpus,emulator_s,collator_s,predictor_s,simulator_s,total_s,trace_events,full_sim_total_s",
        &rows,
    );
    println!(
        "note: unlike the paper's implementation (which reconstructs and simulates every\n\
         rank), this pipeline simulates only unique workers, so the optimized stack cost\n\
         is nearly scale-independent; the full_sim column shows the unoptimized cost."
    );
}
