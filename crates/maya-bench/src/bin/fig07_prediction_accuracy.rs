//! Figure 7: predicted vs. actual per-iteration runtime for the top
//! valid configurations on each deployment setup.

use maya_bench::accuracy::{evaluate_scenario, ranked_completions};
use maya_bench::{config_budget, print_series, Scenario};

fn main() {
    let budget = config_budget(36);
    for (i, scenario) in Scenario::headline().into_iter().enumerate() {
        eprintln!(
            "[fig07] evaluating {} ({} configs)...",
            scenario.name, budget
        );
        let evals = evaluate_scenario(&scenario, budget, 1000 + i as u64);
        let ranked = ranked_completions(&evals);
        let top: Vec<_> = ranked.iter().take(100).collect();
        let rows: Vec<String> = top
            .iter()
            .enumerate()
            .map(|(id, e)| {
                let fmt = |v: Option<maya_trace::SimTime>| {
                    v.map(|t| format!("{:.4}", t.as_secs_f64()))
                        .unwrap_or_else(|| "-".into())
                };
                let b = |name: &str| {
                    e.baselines
                        .iter()
                        .find(|(n, _)| *n == name)
                        .and_then(|(_, v)| v.time())
                };
                format!(
                    "{id},{},{},{},{},{},{}",
                    fmt(e.actual),
                    fmt(e.maya.time()),
                    fmt(b("Proteus")),
                    fmt(b("Calculon")),
                    fmt(b("AMPeD")),
                    e.config
                )
            })
            .collect();
        print_series(
            &format!("Figure 7: {}", scenario.name),
            "config_id,actual_s,maya_s,proteus_s,calculon_s,amped_s,config",
            &rows,
        );
        // Summary: mean APE per system over the top configs.
        let mean = |name: Option<&'static str>| {
            let errs = maya_bench::accuracy::system_errors(&ranked, name);
            if errs.is_empty() {
                f64::NAN
            } else {
                errs.iter().sum::<f64>() / errs.len() as f64 * 100.0
            }
        };
        println!(
            "summary {}: mean APE  Maya {:.1}%  Proteus {:.1}%  Calculon {:.1}%  AMPeD {:.1}%\n",
            scenario.name,
            mean(None),
            mean(Some("Proteus")),
            mean(Some("Calculon")),
            mean(Some("AMPeD")),
        );
    }
}
