//! Figure 10: prediction accuracy across ResNet-152 configurations on
//! the 8×A40 node (data configs × torch.compile).

use maya_bench::{print_series, Scenario};
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    let cluster = ClusterSpec::a40(1, 8);
    let scenario = Scenario {
        name: "ResNet152 - 8xA40",
        cluster,
        model: ModelSpec::resnet152(),
        global_batch: 256,
        precision: Dtype::Fp32,
    };
    eprintln!("[fig10] training estimator for A40...");
    let maya = scenario.maya(77);

    let mut rows = Vec::new();
    let mut errs = Vec::new();
    let mut id = 0;
    for batch in [64u32, 128, 192, 256, 384, 512] {
        for accum in [1u32, 2] {
            for compile in [false, true] {
                let job = TrainingJob {
                    model: ModelSpec::resnet152(),
                    parallel: ParallelConfig {
                        microbatch_multiplier: accum,
                        ..Default::default()
                    },
                    flavor: FrameworkFlavor::Ddp,
                    compile,
                    global_batch: batch,
                    world: 8,
                    gpus_per_node: 8,
                    precision: Dtype::Fp32,
                    iterations: 1,
                };
                if job.validate().is_err() {
                    continue;
                }
                let pred = maya.predict_job(&job).expect("pipeline runs");
                let actual = maya.measure_actual(&job).expect("testbed runs");
                if let (Some(p), Ok(a)) = (pred.iteration_time(), actual) {
                    let err = maya_bench::ape(p, a.iteration_time) * 100.0;
                    errs.push(err);
                    rows.push(format!(
                        "{id},{:.4},{:.4},{:.2},batch{batch}-ga{accum}{}",
                        a.iteration_time.as_secs_f64(),
                        p.as_secs_f64(),
                        err,
                        if compile { "-compile" } else { "" }
                    ));
                    id += 1;
                }
            }
        }
    }
    print_series(
        "Figure 10: ResNet152 on 8xA40",
        "config_id,actual_s,maya_s,error%,config",
        &rows,
    );
    let under5 = errs.iter().filter(|&&e| e < 5.0).count();
    println!(
        "summary: {}/{} configs under 5% error; median {:.2}%",
        under5,
        errs.len(),
        maya_bench::quantile(&mut errs.clone(), 0.5)
    );
}
