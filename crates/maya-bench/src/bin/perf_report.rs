//! Serving-path performance report: `BENCH_<version>.json`.
//!
//! Measures the four hot loops the sim-core optimization targets —
//! discrete-event simulation (optimized core with a reused scratch
//! arena, the same core with fresh state, and the frozen
//! pre-optimization reference core as the baseline), cold and warm
//! batched prediction, sequential vs speculative-batched search, and
//! loopback wire round trips — plus `obs_overhead`, the fully
//! instrumented sim run that pins the observability subsystem's cost
//! to ~zero — then writes the schema-versioned JSON report (see
//! `maya_bench::perf`).
//!
//! Flags:
//! - `--smoke`: few iterations (seconds, for CI schema checking; the
//!   numbers are not comparable across machines or runs).
//! - `--out <path>`: report path (default `BENCH_<version>.json`).
//! - `--check <path>`: validate an existing report file against this
//!   binary's schema and exit; nonzero on drift.

use std::sync::Arc;

use maya::{EmulationSpec, MayaBuilder};
use maya_bench::perf::{
    default_report_path, measure, validate_report, MachineInfo, PerfReport, ScenarioResult,
    SCHEMA_VERSION,
};
use maya_collate::collate;
use maya_estimator::OracleEstimator;
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, Objective, TrialScheduler};
use maya_sim::reference::simulate_reference;
use maya_sim::{SimObs, SimScratch, Simulator};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{MayaService, Request, WireClient, WireServer};

fn fixture_job(world: u32, parallel: ParallelConfig, global_batch: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel,
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch,
        world,
        gpus_per_node: 8,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

/// The sim-core scenarios share one collated 8-rank trace, validated
/// exactly once (the hoisted-validation serving path). `net_contended`
/// re-runs the same trace on a topology-carrying cluster so concurrent
/// collectives compete for link bandwidth through the max-min fair
/// flow model — the cost of contention-aware simulation relative to
/// `sim_dense_scratch`.
fn sim_scenarios(smoke: bool) -> Vec<ScenarioResult> {
    let cluster = ClusterSpec::h100(1, 8);
    let world = 8;
    let job = fixture_job(
        world,
        ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        4 * world,
    );
    let workers: Vec<_> = (0..world)
        .map(|r| maya_torchlet::engine::trace_one_rank(&job, r, cluster.gpu).0)
        .collect();
    let trace = collate(workers, world).expect("collates");
    trace.validate().expect("fixture trace is valid");
    let events = trace.total_events() as f64;
    let oracle = OracleEstimator::new(&cluster);
    let sim = Simulator::new(&oracle, &cluster);
    let iters = if smoke { 10 } else { 400 };

    let mut scratch = SimScratch::new();
    sim.run_with_scratch(&trace, &mut scratch).expect("warmup");
    let dense_scratch = measure("sim_dense_scratch", "events/sec", iters, events, || {
        sim.run_prevalidated(&trace, &mut scratch)
            .expect("simulates");
    });
    let dense_fresh = measure("sim_dense_fresh", "events/sec", iters, events, || {
        sim.run(&trace).expect("simulates");
    });
    let reference = measure("sim_reference", "events/sec", iters, events, || {
        simulate_reference(&trace, &cluster, &oracle).expect("simulates");
    });

    let contended_cluster = cluster.clone().with_default_topology();
    let sim_net = Simulator::new(&oracle, &contended_cluster);
    let mut net_scratch = SimScratch::new();
    sim_net
        .run_with_scratch(&trace, &mut net_scratch)
        .expect("warmup");
    let net_contended = measure("net_contended", "events/sec", iters, events, || {
        sim_net
            .run_prevalidated(&trace, &mut net_scratch)
            .expect("simulates");
    });

    // Same trace, same reused arena, but with every observability sink
    // installed (counters, high-water gauge, flight recorder). The sim
    // keeps its tallies in the scratch arena and publishes them once
    // after the event loop drains, so this figure is required to sit
    // within noise of `sim_dense_scratch` — the "off-path costs
    // nothing, on-path costs almost nothing" acceptance check.
    let obs = SimObs::default();
    let sim_obs = Simulator::new(&oracle, &cluster).with_obs(Some(&obs));
    let mut obs_scratch = SimScratch::new();
    sim_obs
        .run_with_scratch(&trace, &mut obs_scratch)
        .expect("warmup");
    let obs_overhead = measure("obs_overhead", "events/sec", iters, events, || {
        sim_obs
            .run_prevalidated(&trace, &mut obs_scratch)
            .expect("simulates");
    });

    vec![
        dense_scratch,
        dense_fresh,
        reference,
        net_contended,
        obs_overhead,
    ]
}

/// Batched prediction through `predict_batch`: cold (every job a shape
/// the memo has never seen — full emulate/collate/simulate pipeline)
/// and warm (pure memo hits).
fn predict_scenarios(smoke: bool) -> Vec<ScenarioResult> {
    let cluster = ClusterSpec::h100(1, 2);
    let world = cluster.num_gpus();
    let maya = MayaBuilder::new(cluster.clone())
        .selective_launch(true)
        .build()
        .expect("builds");
    let batch = if smoke { 2 } else { 4 };
    let jobs = |base: u32| -> Vec<TrainingJob> {
        (0..batch)
            .map(|i| fixture_job(world, ParallelConfig::default(), (base + i) * world))
            .collect()
    };

    let mut next_base = 1u32;
    let cold_iters = if smoke { 2 } else { 8 };
    let cold = measure(
        "predict_cold",
        "predictions/sec",
        cold_iters,
        batch as f64,
        || {
            let js = jobs(next_base);
            next_base += batch;
            for r in maya.predict_batch(&js) {
                r.expect("predicts");
            }
        },
    );

    let warm_jobs = jobs(next_base);
    for r in maya.predict_batch(&warm_jobs) {
        r.expect("warmup");
    }
    let warm_iters = if smoke { 40 } else { 1500 };
    let warm = measure(
        "predict_warm",
        "predictions/sec",
        warm_iters,
        batch as f64,
        || {
            for r in maya.predict_batch(&warm_jobs) {
                r.expect("predicts");
            }
        },
    );
    vec![cold, warm]
}

/// Grid search over the default space, sequential vs speculative
/// batched. Every run gets a fresh runtime (cold memo) so trials pay
/// the real pipeline and batching has concurrency to exploit.
fn search_scenarios(smoke: bool) -> Vec<ScenarioResult> {
    let cluster = ClusterSpec::h100(1, 4);
    let template = fixture_job(cluster.num_gpus(), ParallelConfig::default(), 16);
    let budget = if smoke { 6 } else { 48 };
    let runs = if smoke { 1 } else { 5 };
    let run_search = |batched: bool| -> usize {
        let maya = MayaBuilder::new(cluster.clone())
            .selective_launch(true)
            .build()
            .expect("builds");
        let objective = Objective::new(maya.engine(), template);
        let scheduler = TrialScheduler::new(&objective);
        let result = if batched {
            scheduler.run_batched(AlgorithmKind::Grid, budget, 0)
        } else {
            scheduler.run(AlgorithmKind::Grid, budget, 0)
        };
        result.trials.len()
    };
    // Trial count is deterministic for a fixed space/budget/seed.
    let trials = run_search(false) as f64;
    let sequential = measure("search_sequential", "trials/sec", runs, trials, || {
        run_search(false);
    });
    let batched = measure("search_batched", "trials/sec", runs, trials, || {
        run_search(true);
    });
    vec![sequential, batched]
}

/// Warm predict served over a loopback TCP round trip through
/// `maya-wire`: frame encode, socket, decode, queue, execute, respond.
fn wire_scenario(smoke: bool) -> ScenarioResult {
    let cluster = ClusterSpec::h100(1, 1);
    let request = || Request::Predict {
        target: "bench".into(),
        jobs: vec![fixture_job(1, ParallelConfig::default(), 8)],
    };
    let service = Arc::new(
        MayaService::builder()
            .target("bench", EmulationSpec::new(cluster))
            .workers(2)
            .build()
            .expect("service"),
    );
    service.call(request()).expect("warmup");
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let client = WireClient::connect(server.local_addr()).expect("connect");
    client.call(&request()).expect("warmup round trip");
    let iters = if smoke { 50 } else { 1500 };
    measure("wire_loopback", "roundtrips/sec", iters, 1.0, || {
        client.call(&request()).expect("round trip");
    })
}

/// Workspace root and budget config for the lint scenarios.
///
/// perf_report runs from the workspace root in CI; fall back to the
/// manifest-relative root for `cargo run -p maya-bench`.
fn lint_setup() -> (std::path::PathBuf, maya_lint::config::Config) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let cfg = std::fs::read_to_string(root.join("lint-budget.toml"))
        .ok()
        .and_then(|t| maya_lint::config::Config::parse(&t).ok())
        .unwrap_or_default();
    (root, cfg)
}

/// Phase-1 maya-lint scan (per-file rules only), reported as
/// files/sec: the analyzer runs on every CI build, so its cost is
/// tracked like any other subsystem's.
fn lint_scenario(smoke: bool) -> ScenarioResult {
    let (root, cfg) = lint_setup();
    let files = maya_lint::run_workspace_phase1(&root, &cfg)
        .map(|r| r.files as f64)
        .unwrap_or(0.0);
    let iters = if smoke { 2 } else { 10 };
    measure("lint_scan", "files/sec", iters, files, || {
        let report = maya_lint::run_workspace_phase1(&root, &cfg).expect("lint scan");
        assert!(report.files > 0, "lint scan found no files");
    })
}

/// Full two-phase maya-lint run (per-file rules plus the item index,
/// call graph, lock-order and codec checks), so the interprocedural
/// layer's cost is visible separately from `lint_scan`.
fn lint_interproc_scenario(smoke: bool) -> ScenarioResult {
    let (root, cfg) = lint_setup();
    let files = maya_lint::run_workspace(&root, &cfg)
        .map(|r| r.files as f64)
        .unwrap_or(0.0);
    let iters = if smoke { 2 } else { 10 };
    measure("lint_interproc", "files/sec", iters, files, || {
        let report = maya_lint::run_workspace(&root, &cfg).expect("lint interproc scan");
        assert!(report.files > 0, "lint scan found no files");
    })
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn fail(msg: &str) -> ! {
    eprintln!("perf_report: {msg}");
    std::process::exit(1)
}

fn main() {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(args.next().unwrap_or_else(|| fail("--out needs a path"))),
            "--check" => check = Some(args.next().unwrap_or_else(|| fail("--check needs a path"))),
            other => fail(&format!(
                "unknown flag '{other}' (expected --smoke, --out <path>, --check <path>)"
            )),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        match validate_report(&text) {
            Ok(()) => println!("{path}: valid maya-perf-report schema v{SCHEMA_VERSION}"),
            Err(e) => fail(&format!("{path}: schema check failed: {e}")),
        }
        return;
    }

    let out = out.unwrap_or_else(default_report_path);
    let mode = if smoke { "smoke" } else { "full" };
    println!("# perf_report ({mode}) -> {out}");

    let mut scenarios = Vec::new();
    scenarios.extend(sim_scenarios(smoke));
    scenarios.extend(predict_scenarios(smoke));
    scenarios.extend(search_scenarios(smoke));
    scenarios.push(wire_scenario(smoke));
    scenarios.push(lint_scenario(smoke));
    scenarios.push(lint_interproc_scenario(smoke));

    println!(
        "{:<22} {:>14} {:<16} {:>12} {:>12}",
        "scenario", "throughput", "unit", "p50_us", "p99_us"
    );
    for s in &scenarios {
        println!(
            "{:<22} {:>14.1} {:<16} {:>12.1} {:>12.1}",
            s.name, s.throughput, s.unit, s.p50_us, s.p99_us
        );
    }

    let report = PerfReport {
        smoke,
        machine: MachineInfo::probe(git_rev()),
        scenarios,
    };
    let text = report.to_json();
    validate_report(&text).unwrap_or_else(|e| fail(&format!("emitted report invalid: {e}")));
    std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!("wrote {out}");
}
