//! Figure 11: end-to-end configuration-search runtime and fidelity —
//! CMA-ES search (all optimizations) vs. the grid-search optimum, per
//! resource/model spec.

use maya_bench::{config_budget, valid_configs, Scenario};
use maya_search::{AlgorithmKind, Objective, TrialScheduler};
use std::time::Instant;

fn main() {
    println!(
        "{:<22} {:>12} {:>14} {:>12} {:>12}",
        "setup", "search time", "grid time", "cma cost", "norm. cost"
    );
    // The grid reference enumerates a deterministic stride sample of the
    // valid space (MAYA_BENCH_CONFIGS to widen; the paper's full grid is
    // the 1920-point space).
    let grid_cap = config_budget(150);
    for scenario in Scenario::headline() {
        eprintln!("[fig11] searching {}...", scenario.name);
        let maya = scenario.maya_oracle();
        let objective = Objective::new(maya.engine(), scenario.template());
        let cma = TrialScheduler::new(&objective).run(AlgorithmKind::CmaEs, 600, 11);
        let grid = {
            let mut sched = TrialScheduler::new(&objective);
            let t0 = Instant::now();
            for c in valid_configs(&scenario, grid_cap) {
                sched.evaluate(&c);
            }
            let mut r = sched.run(AlgorithmKind::Random, 0, 0);
            r.wall = t0.elapsed();
            r
        };
        let (ct, gt) = match (cma.best_time(), grid.best_time()) {
            (Some(c), Some(g)) => (c.as_secs_f64(), g.as_secs_f64()),
            _ => {
                println!("{:<22} no feasible config", scenario.name);
                continue;
            }
        };
        println!(
            "{:<22} {:>11.1}s {:>13.1}s {:>11.3}s {:>11.3}x",
            scenario.name,
            cma.wall.as_secs_f64(),
            grid.wall.as_secs_f64(),
            ct,
            ct / gt
        );
    }
    println!("\n(norm. cost = CMA-found config cost / grid-search optimal; 1.000x = optimal)");
}
