//! Table 6: runtime statistics of configuration search on the 32×H100
//! spec with and without Maya's optimizations (worker deduplication +
//! selective launch, pruning, CMA vs. grid).

use maya::{Maya, MayaBuilder, StageTimings};
use maya_bench::Scenario;
use maya_search::{AlgorithmKind, Objective, TrialScheduler};
use std::time::Duration;

fn accumulate(
    maya: &Maya,
    scenario: &Scenario,
    optimized: bool,
) -> (StageTimings, Duration, usize) {
    let objective = Objective::new(maya.engine(), scenario.template());
    let mut sched = TrialScheduler::new(&objective);
    sched.pruning = optimized;
    if !optimized {
        sched.early_stop_patience = None;
    }
    let result = if optimized {
        sched.run(AlgorithmKind::CmaEs, 300, 6)
    } else {
        // Grid without heuristics — capped via MAYA_BENCH_CONFIGS for
        // tractability; the paper's full grid ran >24 hours.
        let cap = maya_bench::config_budget(120);
        let space = maya_search::ConfigSpace::default();
        for c in space.enumerate().into_iter().take(cap) {
            sched.evaluate(&c);
        }
        sched.run(AlgorithmKind::Random, 0, 0) // finalize with no extra trials
    };
    // Per-trial stage timings from one representative *fitting* recipe
    // (timings are also accumulated inside each trial; this keeps the
    // table honest and cheap).
    let rep_job = maya_torchlet::TrainingJob {
        parallel: maya_torchlet::ParallelConfig {
            tp: 4,
            pp: 2,
            microbatch_multiplier: 2,
            activation_recompute: true,
            sequence_parallel: true,
            distributed_optimizer: true,
            ..Default::default()
        },
        ..scenario.template()
    };
    let rep = maya
        .predict_job(&rep_job)
        .ok()
        .map(|p| p.timings)
        .unwrap_or_default();
    (rep, result.wall, result.stats.executed)
}

fn main() {
    let scenario = Scenario::headline()[2].clone(); // 32xH100
    eprintln!("[tab06] optimized search...");
    let opt_maya = scenario.maya_oracle();
    let (opt_stage, opt_wall, opt_exec) = accumulate(&opt_maya, &scenario, true);
    eprintln!("[tab06] unoptimized search (capped grid)...");
    let no_maya = MayaBuilder::new(scenario.cluster.clone())
        .without_optimizations()
        .build()
        .expect("builds");
    let (no_stage, no_wall, no_exec) = accumulate(&no_maya, &scenario, false);

    println!(
        "Table 6: per-trial stage runtimes and search totals ({})",
        scenario.name
    );
    println!("{:<22} {:>14} {:>16}", "Stage", "Maya", "No Optimization");
    let ms = |d: Duration| format!("{:.2}ms", d.as_secs_f64() * 1e3);
    println!(
        "{:<22} {:>14} {:>16}",
        "Emulation",
        ms(opt_stage.emulation),
        ms(no_stage.emulation)
    );
    println!(
        "{:<22} {:>14} {:>16}",
        "Trace collation",
        ms(opt_stage.collation),
        ms(no_stage.collation)
    );
    println!(
        "{:<22} {:>14} {:>16}",
        "Runtime prediction",
        ms(opt_stage.estimation),
        ms(no_stage.estimation)
    );
    println!(
        "{:<22} {:>14} {:>16}",
        "Simulation",
        ms(opt_stage.simulation),
        ms(no_stage.simulation)
    );
    println!(
        "{:<22} {:>13.1}s {:>15.1}s",
        "Total search time",
        opt_wall.as_secs_f64(),
        no_wall.as_secs_f64()
    );
    println!(
        "{:<22} {:>14} {:>16}",
        "Trials executed",
        opt_exec,
        format!("{no_exec} (capped)")
    );
}
