//! Figure 16 (Appendix C): comparison of search algorithms — best MFU
//! found vs. number of unique valid configurations sampled, 2000-sample
//! budget each.

use maya_bench::{print_series, Scenario};
use maya_search::{AlgorithmKind, Objective, TrialScheduler};

fn main() {
    let scenario = Scenario::headline()[0].clone(); // GPT3-2.7B 8xV100
    eprintln!("[fig16] setup: {}", scenario.name);
    let maya = scenario.maya_oracle();
    let objective = Objective::new(maya.engine(), scenario.template());

    let checkpoints = [25usize, 50, 100, 200, 300, 500];
    // Appendix C used a 2000-sample budget; default lower here for
    // single-core runs (override with MAYA_BENCH_CONFIGS).
    let budget = maya_bench::config_budget(800);
    let mut rows = Vec::new();
    for kind in AlgorithmKind::all() {
        eprintln!("[fig16] running {kind:?}...");
        let mut sched = TrialScheduler::new(&objective);
        sched.early_stop_patience = None; // fixed budget, like Appendix C
        let result = sched.run(kind, budget, 99);
        let conv = &result.convergence;
        let at = |n: usize| -> String {
            if conv.is_empty() {
                return "-".into();
            }
            let idx = n.min(conv.len()) - 1;
            format!("{:.2}", conv[idx] * 100.0)
        };
        let cells: Vec<String> = checkpoints.iter().map(|&n| at(n)).collect();
        rows.push(format!(
            "{:?},{},{}",
            kind,
            cells.join(","),
            conv.last()
                .map(|m| format!("{:.2}", m * 100.0))
                .unwrap_or_default()
        ));
    }
    print_series(
        &format!(
            "Figure 16: best MFU%% vs unique valid configs ({})",
            scenario.name
        ),
        "algorithm,@25,@50,@100,@200,@300,@500,final",
        &rows,
    );
}
