//! Figure 12: predicted MFU and iteration time when scaling the
//! data-parallel degree to thousands of GPUs (GPT-3 145.6B, TP8 PP8,
//! fixed global batch, 64 microbatches), using selective worker launch
//! and the analytical (ASTRA-sim-style) network model.

use maya::MayaBuilder;
use maya_bench::print_series;
use maya_hw::{mfu, ClusterSpec};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn main() {
    // Fixed parallelism: TP8 PP8, 64 microbatches; vary DP. Global batch
    // fixed at 12288 sequences (the paper's 12K batch).
    let global_batch = 12288u32;
    let mut rows = Vec::new();
    for dp in [16u32, 24, 32, 48, 96, 192] {
        let world = 8 * 8 * dp;
        let micro = global_batch / (dp * 64);
        if micro == 0 || global_batch % (dp * 64) != 0 {
            continue;
        }
        let cluster = ClusterSpec::h100(world / 8, 8);
        let maya = MayaBuilder::new(cluster.clone())
            .selective_launch(true)
            .build()
            .expect("builds");
        let parallel = ParallelConfig {
            tp: 8,
            pp: 8,
            microbatch_multiplier: 8, // 64 microbatches
            activation_recompute: true,
            sequence_parallel: true,
            distributed_optimizer: true,
            ..Default::default()
        };
        let job = TrainingJob {
            model: ModelSpec::gpt3_145_6b(),
            parallel,
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch,
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        };
        eprintln!("[fig12] {} GPUs (dp {dp}, micro-bs {micro})...", world);
        match maya.predict_job(&job) {
            Err(e) => println!("{world} GPUs: error {e}"),
            Ok(p) => match p.report() {
                None => rows.push(format!("{world},OOM,-")),
                Some(r) => {
                    let spec = job.flops_spec().expect("transformer");
                    let m = mfu::mfu(&spec, r.total_time.as_secs_f64(), &cluster);
                    rows.push(format!(
                        "{world},{:.2},{:.2}",
                        r.total_time.as_secs_f64(),
                        m * 100.0
                    ));
                }
            },
        }
    }
    print_series(
        "Figure 12: MFU when scaling DP (GPT3-145.6B, TP8 PP8, batch 12288)",
        "gpus,iter_time_s,mfu%",
        &rows,
    );
}
