//! Table 3: breakdown of prediction error — oracle (true per-kernel
//! runtimes) vs. end-to-end (forest estimator), isolating the error
//! introduced by the emulation + simulation phases.

use maya_bench::Scenario;
use maya_hw::ClusterSpec;
use maya_torchlet::{ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

struct Row {
    model: ModelSpec,
    name: &'static str,
    world: u32,
    nodes: u32,
    bs: u32,
    tp: u32,
    pp: u32,
    ga: u32,
}

fn main() {
    let rows = vec![
        Row {
            model: ModelSpec::gpt3_1_3b(),
            name: "GPT3-1.3B",
            world: 8,
            nodes: 1,
            bs: 16,
            tp: 1,
            pp: 2,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_1_3b(),
            name: "GPT3-1.3B",
            world: 8,
            nodes: 1,
            bs: 16,
            tp: 2,
            pp: 1,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_1_3b(),
            name: "GPT3-1.3B",
            world: 8,
            nodes: 1,
            bs: 16,
            tp: 2,
            pp: 2,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_1_3b(),
            name: "GPT3-1.3B",
            world: 8,
            nodes: 1,
            bs: 16,
            tp: 2,
            pp: 4,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_1_3b(),
            name: "GPT3-1.3B",
            world: 8,
            nodes: 1,
            bs: 16,
            tp: 4,
            pp: 2,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_2_7b(),
            name: "GPT3-2.7B",
            world: 8,
            nodes: 1,
            bs: 16,
            tp: 1,
            pp: 2,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_2_7b(),
            name: "GPT3-2.7B",
            world: 8,
            nodes: 1,
            bs: 16,
            tp: 2,
            pp: 1,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_2_7b(),
            name: "GPT3-2.7B",
            world: 8,
            nodes: 1,
            bs: 8,
            tp: 2,
            pp: 2,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_2_7b(),
            name: "GPT3-2.7B",
            world: 8,
            nodes: 1,
            bs: 8,
            tp: 2,
            pp: 4,
            ga: 2,
        },
        Row {
            model: ModelSpec::gpt3_2_7b(),
            name: "GPT3-2.7B",
            world: 8,
            nodes: 1,
            bs: 8,
            tp: 4,
            pp: 2,
            ga: 2,
        },
        Row {
            model: ModelSpec::llama2_7b(),
            name: "Llama2-7B",
            world: 32,
            nodes: 4,
            bs: 16,
            tp: 2,
            pp: 8,
            ga: 2,
        },
        Row {
            model: ModelSpec::llama2_7b(),
            name: "Llama2-7B",
            world: 32,
            nodes: 4,
            bs: 8,
            tp: 2,
            pp: 8,
            ga: 4,
        },
        Row {
            model: ModelSpec::llama2_7b(),
            name: "Llama2-7B",
            world: 32,
            nodes: 4,
            bs: 16,
            tp: 4,
            pp: 4,
            ga: 2,
        },
        Row {
            model: ModelSpec::llama2_7b(),
            name: "Llama2-7B",
            world: 32,
            nodes: 4,
            bs: 8,
            tp: 8,
            pp: 2,
            ga: 2,
        },
    ];

    println!(
        "{:<11} {:>4} {:>3} {:>3} {:>3} {:>10} {:>8} {:>8}",
        "Model", "BS", "TP", "PP", "GA", "actual", "Oracle", "E2E"
    );
    // One forest estimator per cluster size (both are V100 clusters).
    let mut mayas: std::collections::HashMap<u32, (maya::Maya, maya::Maya)> = Default::default();
    for row in rows {
        let cluster = ClusterSpec::v100(row.nodes, 8);
        let scenario = Scenario {
            name: row.name,
            cluster,
            model: row.model,
            global_batch: row.bs,
            precision: Dtype::Fp16,
        };
        let (oracle, e2e) = mayas
            .entry(row.world)
            .or_insert_with(|| (scenario.maya_oracle(), scenario.maya(4242)));
        let parallel = ParallelConfig {
            tp: row.tp,
            pp: row.pp,
            microbatch_multiplier: row.ga,
            activation_recompute: true,
            ..Default::default()
        };
        let job = TrainingJob {
            parallel,
            ..scenario.template()
        };
        if job.validate().is_err() {
            println!("{:<11} config {} invalid, skipped", row.name, parallel);
            continue;
        }
        let actual = match oracle.measure_actual(&job) {
            Ok(Ok(m)) => m.iteration_time,
            _ => {
                println!(
                    "{:<11} {:>4} {:>3} {:>3} {:>3} {:>10}",
                    row.name, row.bs, row.tp, row.pp, row.ga, "OOM"
                );
                continue;
            }
        };
        let err = |m: &maya::Maya| -> String {
            match m.predict_job(&job).ok().and_then(|p| p.iteration_time()) {
                Some(t) => format!(
                    "{:.2}%",
                    (t.as_secs_f64() / actual.as_secs_f64() - 1.0).abs() * 100.0
                ),
                None => "OOM".to_string(),
            }
        };
        println!(
            "{:<11} {:>4} {:>3} {:>3} {:>3} {:>9.3}s {:>8} {:>8}",
            row.name,
            row.bs,
            row.tp,
            row.pp,
            row.ga,
            actual.as_secs_f64(),
            err(oracle),
            err(e2e),
        );
    }
    println!("\n(Oracle = true per-kernel runtimes; E2E = trained random-forest estimator)");
}
