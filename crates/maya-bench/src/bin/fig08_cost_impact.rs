//! Figure 8: cost impact of prediction accuracy on configuration
//! selection — each system picks its best-predicted config; we report
//! that config's *actual* cost normalized to the actual optimum.

use maya_bench::accuracy::{evaluate_scenario, SystemVerdict};
use maya_bench::{config_budget, Scenario};
use maya_trace::SimTime;

fn main() {
    let budget = config_budget(36);
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "setup", "Maya", "Proteus", "Calculon", "AMPeD"
    );
    for (i, scenario) in Scenario::headline().into_iter().enumerate() {
        eprintln!("[fig08] evaluating {}...", scenario.name);
        let evals = evaluate_scenario(&scenario, budget, 2000 + i as u64);
        let optimal = evals
            .iter()
            .filter_map(|e| e.actual)
            .min()
            .expect("at least one config completes");

        // Actual cost of the config each system would select.
        let pick = |selector: &dyn Fn(&maya_bench::accuracy::ConfigEval) -> Option<SimTime>|
         -> Option<f64> {
            let best = evals
                .iter()
                .filter(|e| selector(e).is_some())
                .min_by_key(|e| selector(e).expect("filtered"))?;
            let actual = best.actual?; // selected config may actually OOM
            Some(actual.as_secs_f64() / optimal.as_secs_f64())
        };
        let fmt = |v: Option<f64>| match v {
            Some(r) => format!("+{:.0}%", (r - 1.0) * 100.0),
            // Either no supported/feasible prediction, or the selected
            // config actually OOMs on deployment.
            None => "n/a".to_string(),
        };
        let maya_pick = pick(&|e| e.maya.time());
        let base_pick = |name: &'static str| {
            pick(&move |e| {
                e.baselines
                    .iter()
                    .find(|(n, _)| *n == name)
                    .and_then(|(_, v)| match v {
                        SystemVerdict::Time(t) => Some(*t),
                        _ => None,
                    })
            })
        };
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>10}",
            scenario.name,
            fmt(maya_pick),
            fmt(base_pick("Proteus")),
            fmt(base_pick("Calculon")),
            fmt(base_pick("AMPeD")),
        );
    }
    println!("\n(normalized actual cost of each system's selected config; +0% = optimal)");
}
