//! Table 1: capability matrix of Maya vs. the baselines, derived by
//! probing each system with single-knob configurations rather than
//! hard-coding claims.

use maya_baselines::BaselinePrediction;
use maya_bench::Scenario;
use maya_hw::ClusterSpec;
use maya_torchlet::{ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn probe_job(parallel: ParallelConfig) -> TrainingJob {
    let cluster = ClusterSpec::h100(4, 8);
    let scenario = Scenario {
        name: "probe",
        cluster,
        model: ModelSpec::gpt3_18_4b(),
        global_batch: 256,
        precision: Dtype::Bf16,
    };
    TrainingJob {
        parallel,
        ..scenario.template()
    }
}

fn main() {
    let knobs: Vec<(&str, ParallelConfig)> = vec![
        ("Data Parallel", ParallelConfig::default()),
        (
            "Tensor Parallel",
            ParallelConfig {
                tp: 4,
                ..Default::default()
            },
        ),
        (
            "Pipeline Parallel",
            ParallelConfig {
                pp: 4,
                ..Default::default()
            },
        ),
        (
            "Sequence Parallel",
            ParallelConfig {
                tp: 4,
                sequence_parallel: true,
                ..Default::default()
            },
        ),
        (
            "Pipeline Interleaving",
            ParallelConfig {
                pp: 4,
                virtual_stages: 2,
                ..Default::default()
            },
        ),
        (
            "Distributed Optimizer",
            ParallelConfig {
                distributed_optimizer: true,
                ..Default::default()
            },
        ),
        (
            "Activation Recompute",
            ParallelConfig {
                activation_recompute: true,
                ..Default::default()
            },
        ),
        (
            "Gradient Accumulation",
            ParallelConfig {
                microbatch_multiplier: 4,
                ..Default::default()
            },
        ),
    ];
    let systems = maya_bench::baselines();
    let cluster = ClusterSpec::h100(4, 8);

    print!("{:<24} {:>6}", "Capability", "Maya");
    for s in &systems {
        print!(" {:>9}", s.name());
    }
    println!();
    let maya = Scenario {
        name: "probe",
        cluster: cluster.clone(),
        model: ModelSpec::gpt3_18_4b(),
        global_batch: 256,
        precision: Dtype::Bf16,
    }
    .maya_oracle();
    for (name, parallel) in knobs {
        let job = probe_job(parallel);
        // An OOM verdict still counts as support: the pipeline produced
        // a definitive answer for the knob combination.
        let maya_ok = job.validate().is_ok() && maya.predict_job(&job).is_ok();
        print!("{:<24} {:>6}", name, if maya_ok { "yes" } else { "no" });
        for s in &systems {
            let supported = !matches!(s.predict(&job, &cluster), BaselinePrediction::Unsupported);
            print!(" {:>9}", if supported { "yes" } else { "no" });
        }
        println!();
    }
    println!("\nTransparent (no code modifications): Maya yes; all baselines no (by design —");
    println!("they consume declarative specs / strategy trees rather than the running script).");
}
