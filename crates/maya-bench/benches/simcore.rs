//! Sim-core micro-benchmarks: the dense-slot optimized core (with a
//! reused scratch arena and with fresh state per run) against the
//! frozen pre-optimization reference core, over one shared collated
//! 8-rank trace. The same three shapes `perf_report` measures, under
//! criterion's statistics.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use maya_collate::collate;
use maya_estimator::OracleEstimator;
use maya_hw::ClusterSpec;
use maya_sim::reference::simulate_reference;
use maya_sim::{SimScratch, Simulator};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn bench_job(world: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 4 * world,
        world,
        gpus_per_node: 8,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn bench_simcore(c: &mut Criterion) {
    let cluster = ClusterSpec::h100(1, 8);
    let job = bench_job(8);
    let workers: Vec<_> = (0..8)
        .map(|r| maya_torchlet::engine::trace_one_rank(&job, r, cluster.gpu).0)
        .collect();
    let trace = collate(workers, 8).expect("collates");
    trace.validate().expect("valid fixture");
    let oracle = OracleEstimator::new(&cluster);
    let sim = Simulator::new(&oracle, &cluster);
    let events = trace.total_events() as u64;

    let mut g = c.benchmark_group("simcore");
    g.throughput(Throughput::Elements(events));
    let mut scratch = SimScratch::new();
    sim.run_with_scratch(&trace, &mut scratch).expect("warmup");
    g.bench_function("dense_scratch", |b| {
        b.iter(|| {
            sim.run_prevalidated(&trace, &mut scratch)
                .expect("simulates")
        })
    });
    g.bench_function("dense_fresh", |b| {
        b.iter(|| sim.run(&trace).expect("simulates"))
    });
    g.bench_function("reference", |b| {
        b.iter(|| simulate_reference(&trace, &cluster, &oracle).expect("simulates"))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simcore
);
criterion_main!(benches);
