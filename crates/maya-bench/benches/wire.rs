//! Wire overhead: the same warm predict served in-process vs. over a
//! loopback TCP round trip through `maya-wire`.
//!
//! Both paths hit one shared `MayaService` whose memo is warmed first,
//! so the measured gap is purely the serving stack: frame encode,
//! socket write, server decode, queue, response encode, socket read,
//! client decode. The third benchmark pipelines a whole burst per
//! iteration to show amortization over one connection.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use maya::EmulationSpec;
use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;
use maya_wire::{MayaService, Request, WireClient, WireServer};

fn job(cluster: &ClusterSpec) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 8 * cluster.num_gpus(),
        world: cluster.num_gpus(),
        gpus_per_node: cluster.gpus_per_node,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn predict(cluster: &ClusterSpec) -> Request {
    Request::Predict {
        target: "h100-1".into(),
        jobs: vec![job(cluster)],
    }
}

fn bench_wire(c: &mut Criterion) {
    let cluster = ClusterSpec::h100(1, 1);
    let service = Arc::new(
        MayaService::builder()
            .target("h100-1", EmulationSpec::new(cluster.clone()))
            .workers(2)
            .build()
            .expect("service"),
    );
    // Warm the memo so both paths measure serving, not estimation.
    service.call(predict(&cluster)).expect("warmup");

    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let client = WireClient::connect(server.local_addr()).expect("connect");

    let mut group = c.benchmark_group("serve_warm_predict");
    group.bench_function("in_process", |b| {
        b.iter(|| service.call(predict(&cluster)).expect("direct"))
    });
    group.bench_function("wire_loopback", |b| {
        b.iter(|| client.call(&predict(&cluster)).expect("wire"))
    });
    group.finish();

    let mut group = c.benchmark_group("wire_pipelined_burst");
    const BURST: usize = 16;
    group.throughput(Throughput::Elements(BURST as u64));
    group.bench_function("burst16_one_connection", |b| {
        b.iter(|| {
            let pending: Vec<_> = (0..BURST)
                .map(|_| client.submit(&predict(&cluster)).expect("submit"))
                .collect();
            for p in pending {
                p.wait().expect("response");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
