//! Criterion micro-benchmarks for the Maya pipeline stages: emulation
//! throughput, collation + dedup, estimator inference, discrete-event
//! simulation, and the end-to-end predict path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use maya::MayaBuilder;
use maya_collate::{collate, dedup_classes};
use maya_estimator::{OracleEstimator, RuntimeEstimator};
use maya_hw::ClusterSpec;
use maya_sim::simulate;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::{Dtype, KernelKind};

fn bench_job(world: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        },
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 4 * world,
        world,
        gpus_per_node: 8,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn emulation(c: &mut Criterion) {
    let job = bench_job(8);
    let gpu = ClusterSpec::h100(1, 8).gpu;
    let (trace, _) = maya_torchlet::engine::trace_one_rank(&job, 0, gpu);
    let events = trace.events.len() as u64;
    let mut g = c.benchmark_group("emulation");
    g.throughput(Throughput::Elements(events));
    g.bench_function("one_worker_gpt125m", |b| {
        b.iter(|| maya_torchlet::engine::trace_one_rank(&job, 0, gpu))
    });
    g.finish();
}

fn collation(c: &mut Criterion) {
    let job = bench_job(8);
    let gpu = ClusterSpec::h100(1, 8).gpu;
    let workers: Vec<_> = (0..8)
        .map(|r| maya_torchlet::engine::trace_one_rank(&job, r, gpu).0)
        .collect();
    let mut g = c.benchmark_group("collation");
    g.bench_function("collate_8_workers", |b| {
        b.iter(|| collate(workers.clone(), 8).expect("collates"))
    });
    g.bench_function("dedup_8_workers", |b| b.iter(|| dedup_classes(&workers)));
    g.finish();
}

fn estimation(c: &mut Criterion) {
    let cluster = ClusterSpec::h100(1, 8);
    let oracle = OracleEstimator::new(&cluster);
    let kernel = KernelKind::Gemm {
        m: 4096,
        n: 4096,
        k: 4096,
        dtype: Dtype::Bf16,
    };
    c.bench_function("estimator/oracle_kernel_query", |b| {
        b.iter(|| oracle.kernel_time(&kernel))
    });
}

fn simulation(c: &mut Criterion) {
    let cluster = ClusterSpec::h100(1, 8);
    let oracle = OracleEstimator::new(&cluster);
    let job = bench_job(8);
    let workers: Vec<_> = (0..8)
        .map(|r| maya_torchlet::engine::trace_one_rank(&job, r, cluster.gpu).0)
        .collect();
    let trace = collate(workers, 8).expect("collates");
    let events = trace.total_events() as u64;
    let mut g = c.benchmark_group("simulation");
    g.throughput(Throughput::Elements(events));
    g.bench_function("des_8_ranks_gpt125m", |b| {
        b.iter(|| simulate(&trace, &cluster, &oracle).expect("simulates"))
    });
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let cluster = ClusterSpec::h100(1, 8);
    let maya = MayaBuilder::new(cluster.clone())
        .selective_launch(true)
        .build()
        .expect("builds");
    let job = bench_job(8);
    c.bench_function("end_to_end/predict_gpt125m_8gpu", |b| {
        b.iter(|| maya.predict_job(&job).expect("predicts"))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = emulation, collation, estimation, simulation, end_to_end
);
criterion_main!(benches);
