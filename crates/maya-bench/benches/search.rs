//! Sequential vs. engine-batched config search on the Table 5 space.
//!
//! The batched scheduler drives speculative candidate waves through the
//! `PredictionEngine` worker pool while committing results in proposal
//! order; this bench measures the wall-clock payoff on a multi-core
//! host. Both modes search the same sub-space with the same algorithm
//! and seed, so they evaluate identical trial sequences.

use criterion::{criterion_group, criterion_main, Criterion};
use maya::{Maya, MayaBuilder};
use maya_hw::ClusterSpec;
use maya_search::{AlgorithmKind, ConfigSpace, Objective, TrialScheduler};
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::Dtype;

fn template(world: u32) -> TrainingJob {
    TrainingJob {
        model: ModelSpec::gpt3_125m(),
        parallel: ParallelConfig::default(),
        flavor: FrameworkFlavor::Megatron,
        compile: false,
        global_batch: 8 * world,
        world,
        gpus_per_node: 8,
        precision: Dtype::Bf16,
        iterations: 1,
    }
}

fn search_space() -> ConfigSpace {
    // A Table 5 sub-space sized so one search run stays in bench budget.
    ConfigSpace {
        tp: vec![1, 2, 4],
        pp: vec![1, 2],
        microbatch_multiplier: vec![1, 2, 4],
        virtual_stages: vec![1],
        activation_recompute: vec![true, false],
        sequence_parallel: vec![true, false],
        distributed_optimizer: vec![true, false],
    }
}

fn run_search(maya: &Maya, batched: bool) -> usize {
    let tmpl = template(maya.spec().cluster.num_gpus());
    let obj = Objective::new(maya.engine(), tmpl);
    let sched = TrialScheduler::new(&obj)
        .with_space(search_space())
        .with_batch(8);
    let result = if batched {
        sched.run_batched(AlgorithmKind::Random, 48, 17)
    } else {
        sched.run(AlgorithmKind::Random, 48, 17)
    };
    result.stats.executed
}

fn search_modes(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let cluster = ClusterSpec::h100(1, 8);
    let sequential = MayaBuilder::new(cluster.clone()).build().expect("builds");
    let batched = MayaBuilder::new(cluster)
        .emulation_threads(threads)
        .build()
        .expect("builds");
    // Fresh-cache cost is paid once per engine; steady-state search (what
    // Fig. 15 iterates) is the interesting regime, so warm both first.
    run_search(&sequential, false);
    run_search(&batched, true);
    let mut g = c.benchmark_group("search");
    g.bench_function("sequential", |b| b.iter(|| run_search(&sequential, false)));
    g.bench_function(&format!("engine_batched_{threads}threads"), |b| {
        b.iter(|| run_search(&batched, true))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = search_modes
);
criterion_main!(benches);
