//! Merging per-worker traces into a validated job trace.

use std::collections::BTreeMap;
use std::fmt;

use maya_trace::{CollectiveKind, DeviceOp, JobTrace, WorkerTrace};

/// Errors detected while collating traces.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CollateError {
    /// Two workers claim the same `(comm, rank_in_comm)` slot.
    ConflictingCommMembership {
        /// Communicator id.
        comm: u64,
        /// Contested position.
        rank_in_comm: u32,
        /// First claimant (global rank).
        first: u32,
        /// Second claimant.
        second: u32,
    },
    /// A worker declares a different size for a communicator than others.
    CommSizeMismatch {
        /// Communicator id.
        comm: u64,
        /// Sizes seen.
        sizes: (u32, u32),
    },
    /// Participants disagree on a collective's kind or payload.
    CollectiveMismatch {
        /// Communicator id.
        comm: u64,
        /// Sequence number.
        seq: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// A communicator slot was never claimed but ops reference the group.
    IncompleteComm {
        /// Communicator id.
        comm: u64,
        /// Number of members seen vs declared size.
        seen: u32,
        /// Declared size.
        declared: u32,
    },
    /// The merged job failed structural validation.
    Invalid(String),
}

impl fmt::Display for CollateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollateError::ConflictingCommMembership {
                comm,
                rank_in_comm,
                first,
                second,
            } => {
                write!(
                    f,
                    "comm {comm:#x} slot {rank_in_comm} claimed by ranks {first} and {second}"
                )
            }
            CollateError::CommSizeMismatch { comm, sizes } => {
                write!(
                    f,
                    "comm {comm:#x} declared with sizes {} and {}",
                    sizes.0, sizes.1
                )
            }
            CollateError::CollectiveMismatch { comm, seq, detail } => {
                write!(
                    f,
                    "collective (comm {comm:#x}, seq {seq}) mismatch: {detail}"
                )
            }
            CollateError::IncompleteComm {
                comm,
                seen,
                declared,
            } => {
                write!(f, "comm {comm:#x} has {seen}/{declared} members traced")
            }
            CollateError::Invalid(msg) => write!(f, "invalid job: {msg}"),
        }
    }
}

impl std::error::Error for CollateError {}

/// Merges worker traces into a job trace for a `world`-rank job.
///
/// Workers may be a subset of all ranks (selective launch, §7.4); in that
/// case communicator membership is inferred by arithmetic (constant
/// stride) extrapolation, which covers groups with two or more observed
/// members. Single-observation groups are assumed rank-contiguous —
/// callers with workload knowledge should prefer
/// [`collate_with_known_groups`].
pub fn collate(workers: Vec<WorkerTrace>, world: u32) -> Result<JobTrace, CollateError> {
    collate_with_known_groups(workers, world, &BTreeMap::new())
}

/// [`collate`] with authoritative communicator membership supplied by the
/// caller (e.g. computed from the Megatron parallelism configuration for
/// selective launch). Known groups bypass inference; observed slots are
/// still checked against them.
pub fn collate_with_known_groups(
    mut workers: Vec<WorkerTrace>,
    world: u32,
    known: &BTreeMap<u64, Vec<u32>>,
) -> Result<JobTrace, CollateError> {
    workers.sort_by_key(|w| w.rank);
    let mut comm_sizes: BTreeMap<u64, u32> = BTreeMap::new();
    let mut comm_slots: BTreeMap<u64, BTreeMap<u32, u32>> = BTreeMap::new();

    for w in &workers {
        for e in &w.events {
            if let DeviceOp::Collective { desc } = e.op {
                match comm_sizes.get(&desc.comm_id) {
                    None => {
                        comm_sizes.insert(desc.comm_id, desc.nranks);
                    }
                    Some(&n) if n != desc.nranks => {
                        return Err(CollateError::CommSizeMismatch {
                            comm: desc.comm_id,
                            sizes: (n, desc.nranks),
                        });
                    }
                    _ => {}
                }
                let slots = comm_slots.entry(desc.comm_id).or_default();
                match slots.get(&desc.rank_in_comm) {
                    None => {
                        slots.insert(desc.rank_in_comm, w.rank);
                    }
                    Some(&g) if g != w.rank => {
                        return Err(CollateError::ConflictingCommMembership {
                            comm: desc.comm_id,
                            rank_in_comm: desc.rank_in_comm,
                            first: g,
                            second: w.rank,
                        });
                    }
                    _ => {}
                }
            }
        }
    }

    // Build dense member lists where complete; for partially-observed
    // communicators (dedup), infer the missing global ranks only when the
    // group structure is arithmetic (constant stride), which covers
    // Megatron's tp/dp/pp groups; otherwise keep observed slots at their
    // positions and fill gaps by extrapolation failure -> error.
    let mut groups: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for (comm, slots) in &comm_slots {
        let size = comm_sizes[comm];
        if let Some(k) = known.get(comm) {
            if k.len() != size as usize {
                return Err(CollateError::CommSizeMismatch {
                    comm: *comm,
                    sizes: (k.len() as u32, size),
                });
            }
            for (&pos, &g) in slots {
                if k.get(pos as usize) != Some(&g) {
                    return Err(CollateError::ConflictingCommMembership {
                        comm: *comm,
                        rank_in_comm: pos,
                        first: k.get(pos as usize).copied().unwrap_or(u32::MAX),
                        second: g,
                    });
                }
            }
            groups.insert(*comm, k.clone());
            continue;
        }
        let mut members = vec![u32::MAX; size as usize];
        for (&pos, &g) in slots {
            if pos >= size {
                return Err(CollateError::Invalid(format!(
                    "comm {comm:#x}: rank_in_comm {pos} out of size {size}"
                )));
            }
            members[pos as usize] = g;
        }
        if members.contains(&u32::MAX) {
            infer_missing_members(&mut members, world).map_err(|seen| {
                CollateError::IncompleteComm {
                    comm: *comm,
                    seen,
                    declared: size,
                }
            })?;
        }
        groups.insert(*comm, members);
    }

    let job = JobTrace {
        nranks: world,
        workers,
        comm_groups: groups,
    };
    job.validate().map_err(CollateError::Invalid)?;
    validate_collectives(&job)?;
    Ok(job)
}

/// Fills `u32::MAX` holes in a member list by arithmetic extrapolation
/// from the known slots (Megatron groups have constant stride). Returns
/// `Err(seen_count)` if no consistent stride exists.
fn infer_missing_members(members: &mut [u32], world: u32) -> Result<(), u32> {
    let known: Vec<(usize, u32)> = members
        .iter()
        .enumerate()
        .filter(|(_, &m)| m != u32::MAX)
        .map(|(i, &m)| (i, m))
        .collect();
    let seen = known.len() as u32;
    if known.is_empty() {
        return Err(0);
    }
    if known.len() == 1 && members.len() > 1 {
        // A single observation cannot pin the stride unless the group has
        // stride deducible from position 0 == global rank pattern; assume
        // contiguous ranks starting at the observed anchor.
        let (pos, g) = known[0];
        let base = g as i64 - pos as i64;
        if base < 0 {
            return Err(seen);
        }
        for (i, m) in members.iter_mut().enumerate() {
            let v = base + i as i64;
            if v < 0 || v >= world as i64 {
                return Err(seen);
            }
            *m = v as u32;
        }
        return Ok(());
    }
    // Deduce stride from the first two known slots.
    let (i0, g0) = known[0];
    let (i1, g1) = known[1];
    let stride = (g1 as i64 - g0 as i64) / (i1 as i64 - i0 as i64).max(1);
    let base = g0 as i64 - stride * i0 as i64;
    for (i, slot) in members.iter_mut().enumerate() {
        let v = base + stride * i as i64;
        if v < 0 || v >= world as i64 {
            return Err(seen);
        }
        let v = v as u32;
        if *slot != u32::MAX && *slot != v {
            return Err(seen);
        }
        *slot = v;
    }
    Ok(())
}

/// Verifies that every logical collective is issued consistently by all
/// *present* participants: same kind class, same payload, and matched
/// send/recv pairing.
pub fn validate_collectives(job: &JobTrace) -> Result<(), CollateError> {
    use std::collections::HashMap;
    /// Rendezvous identity: communicator, sequence, send/recv pair.
    type CollSite = (u64, u32, (u32, u32));
    /// What every participant must agree on: kind class, bytes, count.
    type CollShape = (u8, u64, u32);
    let mut seen: HashMap<CollSite, CollShape> = HashMap::new();
    for w in &job.workers {
        for e in &w.events {
            if let DeviceOp::Collective { desc } = e.op {
                let (class, pair) = match desc.kind {
                    CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => (
                        255u8,
                        (desc.rank_in_comm.min(peer), desc.rank_in_comm.max(peer)),
                    ),
                    k => (k.id(), (u32::MAX, u32::MAX)),
                };
                let key = (desc.comm_id, desc.seq, pair);
                match seen.get_mut(&key) {
                    None => {
                        seen.insert(key, (class, desc.bytes, 1));
                    }
                    Some((c, b, n)) => {
                        if *c != class {
                            return Err(CollateError::CollectiveMismatch {
                                comm: desc.comm_id,
                                seq: desc.seq,
                                detail: "kind mismatch between participants".into(),
                            });
                        }
                        if *b != desc.bytes {
                            return Err(CollateError::CollectiveMismatch {
                                comm: desc.comm_id,
                                seq: desc.seq,
                                detail: format!("payload mismatch: {} vs {}", b, desc.bytes),
                            });
                        }
                        *n += 1;
                    }
                }
            }
        }
    }
    // Full collectives must be joined by every present group member.
    for (&(comm, seq, pair), &(class, _, n)) in &seen {
        if pair == (u32::MAX, u32::MAX) && class != 255 {
            if let Some(members) = job.comm_groups.get(&comm) {
                let expected = job.present_count(members);
                if n != expected {
                    return Err(CollateError::CollectiveMismatch {
                        comm,
                        seq,
                        detail: format!("{n}/{expected} present participants joined"),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::{CollectiveDesc, SimTime, StreamId, TraceEvent};

    fn coll_event(
        kind: CollectiveKind,
        comm: u64,
        seq: u32,
        bytes: u64,
        n: u32,
        r: u32,
    ) -> TraceEvent {
        TraceEvent {
            stream: StreamId::DEFAULT,
            op: DeviceOp::Collective {
                desc: CollectiveDesc {
                    kind,
                    comm_id: comm,
                    seq,
                    bytes,
                    nranks: n,
                    rank_in_comm: r,
                },
            },
            host_delay: SimTime::from_us(1.0),
        }
    }

    fn worker(rank: u32, events: Vec<TraceEvent>) -> WorkerTrace {
        let mut w = WorkerTrace::new(rank);
        w.events = events;
        w
    }

    #[test]
    fn reconstructs_comm_groups_by_slot() {
        let w0 = worker(
            0,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 2, 0)],
        );
        let w1 = worker(
            1,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 2, 1)],
        );
        let job = collate(vec![w1, w0], 2).unwrap();
        assert_eq!(job.comm_groups[&5], vec![0, 1]);
        assert_eq!(job.workers[0].rank, 0, "workers sorted by rank");
    }

    #[test]
    fn non_contiguous_group_order_preserved() {
        // dp group over ranks 1 and 3 (stride 2), rank 3 is slot 1.
        let w1 = worker(
            1,
            vec![coll_event(CollectiveKind::AllReduce, 9, 0, 64, 2, 0)],
        );
        let w3 = worker(
            3,
            vec![coll_event(CollectiveKind::AllReduce, 9, 0, 64, 2, 1)],
        );
        let job = collate(vec![w3, w1], 4).unwrap();
        assert_eq!(job.comm_groups[&9], vec![1, 3]);
    }

    #[test]
    fn conflicting_membership_detected() {
        let w0 = worker(
            0,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 2, 0)],
        );
        let w1 = worker(
            1,
            vec![coll_event(CollectiveKind::AllReduce, 5, 1, 64, 2, 0)],
        );
        let err = collate(vec![w0, w1], 2).unwrap_err();
        assert!(
            matches!(err, CollateError::ConflictingCommMembership { .. }),
            "{err}"
        );
    }

    #[test]
    fn size_mismatch_detected() {
        let w0 = worker(
            0,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 2, 0)],
        );
        let w1 = worker(
            1,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 3, 1)],
        );
        let err = collate(vec![w0, w1], 2).unwrap_err();
        assert!(
            matches!(err, CollateError::CommSizeMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn payload_mismatch_detected() {
        let w0 = worker(
            0,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 2, 0)],
        );
        let w1 = worker(
            1,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 128, 2, 1)],
        );
        let err = collate(vec![w0, w1], 2).unwrap_err();
        assert!(
            matches!(err, CollateError::CollectiveMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_participant_detected() {
        // Dense 2-rank job where rank 1 skips the second collective.
        let w0 = worker(
            0,
            vec![
                coll_event(CollectiveKind::AllReduce, 5, 0, 64, 2, 0),
                coll_event(CollectiveKind::AllReduce, 5, 1, 64, 2, 0),
            ],
        );
        let w1 = worker(
            1,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 2, 1)],
        );
        let err = collate(vec![w0, w1], 2).unwrap_err();
        assert!(
            matches!(err, CollateError::CollectiveMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn send_recv_pairs_match_by_pair_key() {
        let w0 = worker(
            0,
            vec![coll_event(CollectiveKind::Send { peer: 1 }, 7, 0, 32, 2, 0)],
        );
        let w1 = worker(
            1,
            vec![coll_event(CollectiveKind::Recv { peer: 0 }, 7, 0, 32, 2, 1)],
        );
        assert!(collate(vec![w0, w1], 2).is_ok());
    }

    #[test]
    fn sparse_collate_infers_strided_group() {
        // Only rank 0 of an 8-rank dp group (stride 1) was emulated.
        let w0 = worker(
            0,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 8, 0)],
        );
        let job = collate(vec![w0], 8).unwrap();
        assert_eq!(job.comm_groups[&5], vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(!job.is_dense());
    }

    #[test]
    fn sparse_collate_infers_stride_from_two_members() {
        // Ranks 0 and 4 of a 4-member group with stride 4.
        let w0 = worker(
            0,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 4, 0)],
        );
        let w4 = worker(
            4,
            vec![coll_event(CollectiveKind::AllReduce, 5, 0, 64, 4, 1)],
        );
        let job = collate(vec![w0, w4], 16).unwrap();
        assert_eq!(job.comm_groups[&5], vec![0, 4, 8, 12]);
    }

    #[test]
    fn empty_job_collates() {
        let job = collate(vec![worker(0, vec![])], 1).unwrap();
        assert_eq!(job.total_events(), 0);
        assert!(job.comm_groups.is_empty());
    }
}
