//! Trace collation and dynamic worker deduplication (§4.2).
//!
//! The collator merges per-worker traces into a job-level trace: it
//! reconstructs communicator membership from `(comm_id, rank_in_comm)`
//! pairs, and verifies that every logical collective is issued
//! consistently by all of its participants (same kind, payload and
//! sequence position) — the "matching across workers using communicator
//! IDs and sequence numbers" step of the paper.
//!
//! Worker deduplication computes a rolling structural hash of each
//! worker's operation sequence (invariant to rank-specific identifiers
//! like raw communicator ids and pointers, sensitive to shapes, streams
//! and communication structure) and groups identical workers; the
//! simulator then runs only one representative per class.

pub mod collate;
pub mod dedup;

pub use collate::{collate, collate_with_known_groups, validate_collectives, CollateError};
pub use dedup::{dedup_classes, reduce_job, signature, unique_megatron_ranks, DedupClass};
