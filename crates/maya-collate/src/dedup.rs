//! Dynamic worker deduplication (§4.2) and selective launch (§7.4).
//!
//! In data-parallel (and tensor-parallel) training, many workers execute
//! identical operation sequences on different data shards. The paper
//! computes rolling hashes of each worker's operations during the first
//! iteration, terminates redundant workers, and continues with unique
//! ranks only.

use maya_trace::{DeviceOp, JobTrace, WorkerTrace};

/// One equivalence class of identical workers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DedupClass {
    /// The rank whose trace represents the class.
    pub representative: u32,
    /// All member ranks (including the representative).
    pub members: Vec<u32>,
    /// The class signature.
    pub signature: u64,
}

/// Structural rolling hash of a worker's operation sequence.
///
/// Invariant to identifiers that differ between otherwise-identical
/// workers (raw communicator ids, device pointers, host-delay jitter);
/// sensitive to everything that defines the workload structure: op kinds,
/// kernel shapes, payload sizes, stream assignment, communicator *roles*
/// (local index + size + rank-in-comm is excluded, since e.g. pipeline
/// neighbors differ only by rank) and sequence numbers.
pub fn signature(trace: &WorkerTrace) -> u64 {
    use maya_hw::noise::Key;
    use std::collections::HashMap;
    let mut comm_index: HashMap<u64, u64> = HashMap::new();
    let mut key = Key::new(0x5749_5245);
    for e in &trace.events {
        key = key.with(e.stream.0 as u64);
        match e.op {
            DeviceOp::KernelLaunch { kernel } => {
                key = key.with(1).with(kernel.family_id() as u64);
                key = key
                    .with(kernel.flops().to_bits())
                    .with(kernel.bytes_accessed().to_bits());
            }
            DeviceOp::MemcpyAsync { bytes, kind, sync } => {
                key = key.with(2).with(bytes).with(kind as u64).with(sync as u64);
            }
            DeviceOp::Malloc { bytes, .. } => {
                key = key.with(3).with(bytes);
            }
            DeviceOp::Free { .. } => {
                key = key.with(4);
            }
            DeviceOp::EventRecord { event, version } => {
                key = key.with(5).with(event).with(version as u64);
            }
            DeviceOp::StreamWaitEvent { event, version } => {
                key = key.with(6).with(event).with(version as u64);
            }
            DeviceOp::EventSynchronize { event, version } => {
                key = key.with(7).with(event).with(version as u64);
            }
            DeviceOp::StreamSynchronize => key = key.with(8),
            DeviceOp::DeviceSynchronize => key = key.with(9),
            DeviceOp::Collective { desc } => {
                let next = comm_index.len() as u64;
                let idx = *comm_index.entry(desc.comm_id).or_insert(next);
                key = key
                    .with(10)
                    .with(idx)
                    .with(desc.kind.id() as u64)
                    .with(desc.bytes)
                    .with(desc.nranks as u64)
                    .with(desc.seq as u64);
            }
        }
    }
    key.finish()
}

/// Groups workers into equivalence classes by signature. The lowest rank
/// of each class becomes its representative.
pub fn dedup_classes(workers: &[WorkerTrace]) -> Vec<DedupClass> {
    use std::collections::BTreeMap;
    let mut by_sig: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for w in workers {
        by_sig.entry(signature(w)).or_default().push(w.rank);
    }
    let mut classes: Vec<DedupClass> = by_sig
        .into_iter()
        .map(|(signature, mut members)| {
            members.sort_unstable();
            DedupClass {
                representative: members[0],
                members,
                signature,
            }
        })
        .collect();
    classes.sort_by_key(|c| c.representative);
    classes
}

/// Drops redundant workers from a job, keeping one representative per
/// class. Communicator groups are preserved in full, so downstream
/// consumers can still size collectives correctly.
pub fn reduce_job(job: &JobTrace, classes: &[DedupClass]) -> JobTrace {
    let keep: std::collections::BTreeSet<u32> = classes.iter().map(|c| c.representative).collect();
    JobTrace {
        nranks: job.nranks,
        workers: job
            .workers
            .iter()
            .filter(|w| keep.contains(&w.rank))
            .cloned()
            .collect(),
        comm_groups: job.comm_groups.clone(),
    }
}

/// Megatron-aware ahead-of-time unique-rank selection (§7.4): with
/// explicit knowledge of the parallelism configuration, the unique
/// workers are the first data-parallel, first tensor-parallel rank of
/// each pipeline stage.
pub fn unique_megatron_ranks(tp: u32, dp: u32, pp: u32) -> Vec<u32> {
    (0..pp).map(|p| p * tp * dp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::{
        CollectiveDesc, CollectiveKind, Dtype, KernelKind, SimTime, StreamId, TraceEvent,
    };

    fn kernel_event(m: u64, host_us: f64) -> TraceEvent {
        TraceEvent {
            stream: StreamId::DEFAULT,
            op: DeviceOp::KernelLaunch {
                kernel: KernelKind::Gemm {
                    m,
                    n: 64,
                    k: 64,
                    dtype: Dtype::Bf16,
                },
            },
            host_delay: SimTime::from_us(host_us),
        }
    }

    fn coll_event(comm: u64, rank_in_comm: u32) -> TraceEvent {
        TraceEvent {
            stream: StreamId::DEFAULT,
            op: DeviceOp::Collective {
                desc: CollectiveDesc {
                    kind: CollectiveKind::AllReduce,
                    comm_id: comm,
                    seq: 0,
                    bytes: 1024,
                    nranks: 2,
                    rank_in_comm,
                },
            },
            host_delay: SimTime::from_us(1.0),
        }
    }

    fn worker(rank: u32, events: Vec<TraceEvent>) -> WorkerTrace {
        let mut w = WorkerTrace::new(rank);
        w.events = events;
        w
    }

    #[test]
    fn identical_work_same_signature_despite_jitter() {
        // Same ops, different host delays and different comm ids (as two
        // dp peers in different tp groups would have).
        let a = worker(0, vec![kernel_event(128, 3.0), coll_event(111, 0)]);
        let b = worker(1, vec![kernel_event(128, 7.5), coll_event(222, 0)]);
        assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn different_shapes_different_signature() {
        let a = worker(0, vec![kernel_event(128, 1.0)]);
        let b = worker(1, vec![kernel_event(256, 1.0)]);
        assert_ne!(signature(&a), signature(&b));
    }

    #[test]
    fn different_comm_role_differs() {
        // Same kernel work but one rank also all-reduces.
        let a = worker(0, vec![kernel_event(128, 1.0)]);
        let b = worker(1, vec![kernel_event(128, 1.0), coll_event(5, 0)]);
        assert_ne!(signature(&a), signature(&b));
    }

    #[test]
    fn classes_group_and_pick_lowest_representative() {
        let ws = vec![
            worker(0, vec![kernel_event(128, 1.0)]),
            worker(1, vec![kernel_event(256, 1.0)]),
            worker(2, vec![kernel_event(128, 9.0)]),
            worker(3, vec![kernel_event(256, 2.0)]),
        ];
        let classes = dedup_classes(&ws);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].representative, 0);
        assert_eq!(classes[0].members, vec![0, 2]);
        assert_eq!(classes[1].representative, 1);
        assert_eq!(classes[1].members, vec![1, 3]);
    }

    #[test]
    fn reduce_job_keeps_representatives_and_groups() {
        let ws = vec![
            worker(0, vec![coll_event(5, 0)]),
            worker(1, vec![coll_event(5, 1)]),
        ];
        let job = crate::collate(ws, 2).unwrap();
        // Force both into one class signature-wise? They differ by
        // rank_in_comm exclusion: signatures ignore rank_in_comm, so both
        // hash identically.
        let classes = dedup_classes(&job.workers);
        assert_eq!(classes.len(), 1);
        let reduced = reduce_job(&job, &classes);
        assert_eq!(reduced.workers.len(), 1);
        assert_eq!(reduced.nranks, 2);
        assert_eq!(reduced.comm_groups[&5], vec![0, 1]);
        assert!(reduced.validate().is_ok());
    }

    #[test]
    fn megatron_unique_ranks_one_per_stage() {
        // 8-way TP x 8-way DP x 1 PP: a single unique worker (the paper's
        // 64-GPU example).
        assert_eq!(unique_megatron_ranks(8, 8, 1), vec![0]);
        // With 4 stages: first rank of each stage.
        assert_eq!(unique_megatron_ranks(2, 2, 4), vec![0, 4, 8, 12]);
    }
}
