//! The lock-light metrics registry: named counters, gauges, and
//! log-bucketed histograms behind cheap cloneable handles.
//!
//! Registration takes a short-lived lock once per name; every update
//! after that is a plain atomic on the handle — no lock, no hash
//! lookup, no allocation. [`Registry::snapshot`] walks the registered
//! instruments in sorted-name order and produces a deterministic
//! [`ObsSnapshot`] whose encoding is byte-stable for a quiesced
//! registry (the property the wire `Scrape` round-trip test pins).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle. Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (same cell semantics;
    /// useful for code that keeps its own stats surface but wants the
    /// shared handle type).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. For mirroring an external monotonic
    /// counter into the registry; regular code should [`Counter::add`].
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A point-in-time gauge handle (queue depth, high-water marks).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below it (high-water marks).
    #[inline]
    pub fn raise(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Values below `1 << SUB_BITS` get one exact bucket each; above that,
/// each power-of-two range splits into `1 << SUB_BITS` sub-buckets, so
/// any recorded value lands in a bucket whose lower bound is within
/// `1/2^SUB_BITS` (6.25%) of it.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;

/// Total bucket count: 16 exact low buckets plus 16 sub-buckets for
/// each of the 60 remaining power-of-two ranges of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= SUB_BITS
    let sub = ((v >> (msb - SUB_BITS as usize)) & (SUBS as u64 - 1)) as usize;
    SUBS + (msb - SUB_BITS as usize) * SUBS + sub
}

/// Inclusive lower bound of bucket `i` — the histogram's canonical
/// representative for every value that lands in it.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUBS {
        return i as u64;
    }
    let msb = SUB_BITS as usize + (i - SUBS) / SUBS;
    let sub = ((i - SUBS) % SUBS) as u64;
    (1u64 << msb) | (sub << (msb - SUB_BITS as usize))
}

struct HistogramCore {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        // `AtomicU64` is not Copy; build the boxed array from a Vec.
        let v: Vec<AtomicU64> = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count");
        HistogramCore {
            buckets,
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram handle: unbounded sample count, ~6.25%
/// relative value error, wait-free `record`. Subsumes the nearest-rank
/// reservoir it replaced — the tail is never truncated, only rounded
/// to its bucket's lower bound.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `Duration` in whole microseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded (sum over buckets).
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the
    /// holding bucket's lower bound. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram {{ count: {}, sum: {} }}", s.count, s.sum)
    }
}

/// A point-in-time histogram: sample count, value sum, and the
/// non-empty `(bucket index, count)` pairs in index order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples (equals the sum of the bucket counts).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile over the buckets, as the holding bucket's
    /// lower bound. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(i as usize);
            }
        }
        bucket_lower_bound(self.buckets.last().map(|&(i, _)| i as usize).unwrap_or(0))
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Histogram)>>,
}

/// The instrument registry (see module docs). Clones share the
/// instrument set.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

fn intern<T: Clone + Default>(list: &Mutex<Vec<(String, T)>>, name: &str) -> T {
    let mut list = list.lock().unwrap_or_else(|p| p.into_inner());
    if let Some((_, handle)) = list.iter().find(|(n, _)| n == name) {
        return handle.clone();
    }
    let handle = T::default();
    list.push((name.to_string(), handle.clone()));
    handle
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Repeated calls return handles to the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        intern(&self.inner.counters, name)
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        intern(&self.inner.gauges, name)
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        intern(&self.inner.histograms, name)
    }

    /// A deterministic point-in-time snapshot: every instrument, sorted
    /// by name within its kind. The span slots are empty; callers that
    /// also keep a flight recorder fill them in (see
    /// [`ObsSnapshot::recent_jobs`]).
    pub fn snapshot(&self) -> ObsSnapshot {
        fn collect<T, V: Ord>(
            list: &Mutex<Vec<(String, T)>>,
            read: impl Fn(&T) -> V,
        ) -> Vec<(String, V)> {
            let list = list.lock().unwrap_or_else(|p| p.into_inner());
            let mut out: Vec<(String, V)> =
                list.iter().map(|(n, h)| (n.clone(), read(h))).collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        }
        ObsSnapshot {
            counters: collect(&self.inner.counters, Counter::get),
            gauges: collect(&self.inner.gauges, Gauge::get),
            histograms: {
                let list = self
                    .inner
                    .histograms
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                let mut out: Vec<(String, HistogramSnapshot)> = list
                    .iter()
                    .map(|(n, h)| (n.clone(), h.snapshot()))
                    .collect();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                out
            },
            recent_jobs: Vec::new(),
        }
    }
}

/// The full observability snapshot a `Scrape` returns: every metric
/// plus the flight recorder's recent job span trees.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span trees of recently completed jobs, oldest first.
    pub recent_jobs: Vec<crate::span::SpanNode>,
}

impl ObsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_lower_bound_agree() {
        for v in (0..2048u64).chain([
            4095,
            4096,
            4097,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 3,
            u64::MAX,
        ]) {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS, "index {i} for {v}");
            let lo = bucket_lower_bound(i);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            // The next bucket starts above the value.
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(bucket_lower_bound(i + 1) > v, "value {v} beyond bucket {i}");
            }
            // Relative error of the representative is bounded by the
            // sub-bucket width.
            if v >= SUBS as u64 {
                assert!((v - lo) as f64 / v as f64 <= 1.0 / SUBS as f64 + 1e-9);
            } else {
                assert_eq!(lo, v, "low buckets are exact");
            }
        }
    }

    #[test]
    fn histogram_quantiles_track_nearest_rank() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.count, s.buckets.iter().map(|&(_, n)| n).sum::<u64>());
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p99);
        // Within one sub-bucket of the exact nearest-rank answers.
        assert!((440..=500).contains(&p50), "p50 {p50}");
        assert!((920..=990).contains(&p99), "p99 {p99}");
        // Quantiles never exceed the recorded maximum.
        assert!(s.quantile(1.0) <= 1000);
        assert_eq!(Histogram::detached().quantile(0.99), 0);
    }

    #[test]
    fn registry_handles_are_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        reg.gauge("g").set(-7);
        assert_eq!(reg.gauge("g").get(), -7);
        reg.gauge("g").raise(3);
        assert_eq!(reg.gauge("g").get(), 3);
        reg.gauge("g").raise(1);
        assert_eq!(reg.gauge("g").get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.histogram("h.wait").record(10);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.counters[0].0, "a.first");
        assert_eq!(s1.counters[1].0, "z.last");
        assert_eq!(s1.counter("a.first"), Some(2));
        assert_eq!(s1.histogram("h.wait").unwrap().count, 1);
    }

    #[test]
    fn concurrent_recording_keeps_count_sum_agreement() {
        let h = Histogram::detached();
        let c = Counter::detached();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(c.get(), 40_000);
        assert_eq!(s.count, s.buckets.iter().map(|&(_, n)| n).sum::<u64>());
        // The sum must be consistent with the bucketed distribution:
        // every sample's bucket lower bound is <= the sample.
        let lower: u64 = s
            .buckets
            .iter()
            .map(|&(i, n)| bucket_lower_bound(i as usize) * n)
            .sum();
        assert!(lower <= s.sum);
    }
}
