//! Chrome-trace JSON export (`chrome://tracing` / Perfetto "JSON
//! array" format): every event is a complete `"X"` (duration) phase
//! with microsecond timestamps, so the file loads directly in the
//! trace viewer with no footer or metadata required.

use std::fmt::Write as _;
use std::time::Duration;

use crate::span::{SpanNode, SpanRecord};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event(out: &mut String, name: &str, ts_us: u64, dur_us: u64, pid: u32, tid: u32, first: bool) {
    if !first {
        out.push_str(",\n");
    }
    let _ = write!(
        out,
        "  {{\"name\": \"{}\", \"cat\": \"maya\", \"ph\": \"X\", \"ts\": {}, \
         \"dur\": {}, \"pid\": {}, \"tid\": {}}}",
        esc(name),
        ts_us,
        dur_us,
        pid,
        tid
    );
}

fn walk_tree(out: &mut String, node: &SpanNode, origin: Duration, tid: u32, first: &mut bool) {
    let start = origin + node.start;
    event(
        out,
        &node.name,
        start.as_micros() as u64,
        node.duration.as_micros() as u64,
        1,
        tid,
        *first,
    );
    *first = false;
    for child in &node.children {
        // Child offsets are relative to the same tree origin.
        walk_tree(out, child, origin, tid, first);
    }
}

/// Renders flat flight-recorder spans plus job span trees as one
/// Chrome-trace JSON array. Flat spans keep their recording thread as
/// `tid`; each job tree gets its own synthetic `tid` starting above
/// the flat ones, laid out end to end so overlapping jobs stay
/// readable.
pub fn chrome_trace_json(flat: &[SpanRecord], jobs: &[SpanNode]) -> String {
    let mut out = String::with_capacity(256 + 128 * (flat.len() + jobs.len()));
    out.push_str("[\n");
    let mut first = true;
    for span in flat {
        event(
            &mut out,
            span.name,
            span.start_us,
            span.dur_us,
            1,
            span.thread,
            first,
        );
        first = false;
    }
    let base_tid = flat.iter().map(|s| s.thread + 1).max().unwrap_or(0) + 100;
    let mut origin = Duration::ZERO;
    for (i, tree) in jobs.iter().enumerate() {
        walk_tree(&mut out, tree, origin, base_tid + i as u32, &mut first);
        origin += tree.duration + Duration::from_micros(50);
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_balanced_json_with_all_events() {
        let flat = vec![
            SpanRecord {
                name: "sim.run",
                start_us: 10,
                dur_us: 90,
                thread: 0,
            },
            SpanRecord {
                name: "flow.solve",
                start_us: 40,
                dur_us: 5,
                thread: 1,
            },
        ];
        let ms = Duration::from_millis;
        let job = SpanNode::leaf("job", ms(0), ms(10)).with_child(SpanNode::leaf(
            "queued \"q\"",
            ms(0),
            ms(2),
        ));
        let json = chrome_trace_json(&flat, &[job]);
        for key in ["\"sim.run\"", "\"flow.solve\"", "\"job\"", "\\\"q\\\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 4);
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
    }

    #[test]
    fn empty_export_is_an_empty_array() {
        let json = chrome_trace_json(&[], &[]);
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }
}
