//! Compact-format codecs for the snapshot vocabulary, so a full
//! [`ObsSnapshot`] — and the span trees inside it — can cross the wire
//! in a `Scrape` frame and re-encode byte-identically.

use serde::{compact, Deserialize, Serialize};

use crate::metrics::{HistogramSnapshot, ObsSnapshot};
use crate::span::SpanNode;

impl Serialize for HistogramSnapshot {
    fn serialize(&self, w: &mut compact::Writer) {
        self.count.serialize(w);
        self.sum.serialize(w);
        self.buckets.serialize(w);
    }
}

impl<'de> Deserialize<'de> for HistogramSnapshot {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(HistogramSnapshot {
            count: Deserialize::deserialize(r)?,
            sum: Deserialize::deserialize(r)?,
            buckets: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for SpanNode {
    fn serialize(&self, w: &mut compact::Writer) {
        self.name.serialize(w);
        self.start.serialize(w);
        self.duration.serialize(w);
        self.children.serialize(w);
    }
}

impl<'de> Deserialize<'de> for SpanNode {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(SpanNode {
            name: Deserialize::deserialize(r)?,
            start: Deserialize::deserialize(r)?,
            duration: Deserialize::deserialize(r)?,
            children: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for ObsSnapshot {
    fn serialize(&self, w: &mut compact::Writer) {
        self.counters.serialize(w);
        self.gauges.serialize(w);
        self.histograms.serialize(w);
        self.recent_jobs.serialize(w);
    }
}

impl<'de> Deserialize<'de> for ObsSnapshot {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(ObsSnapshot {
            counters: Deserialize::deserialize(r)?,
            gauges: Deserialize::deserialize(r)?,
            histograms: Deserialize::deserialize(r)?,
            recent_jobs: Deserialize::deserialize(r)?,
        })
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ObsSnapshot {
    /// Human-readable JSON rendering (metrics only; job trees export
    /// through [`crate::chrome::chrome_trace_json`]).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(n), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(n), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
                json_str(n),
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.99)
            );
        }
        let _ = write!(out, "}},\"recent_jobs\":{}}}", self.recent_jobs.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_snapshot() -> ObsSnapshot {
        let reg = crate::Registry::new();
        reg.counter("serve.served").add(3);
        reg.counter("sim.events").add(12_345);
        reg.gauge("queue.depth").set(-2);
        let h = reg.histogram("serve.queue_wait_us");
        for v in [1u64, 5, 900, 4096, 1 << 33] {
            h.record(v);
        }
        let mut snap = reg.snapshot();
        snap.recent_jobs.push(
            SpanNode::leaf("job", Duration::ZERO, Duration::from_millis(12)).with_child(
                SpanNode::leaf(
                    "queued name with spaces",
                    Duration::ZERO,
                    Duration::from_millis(2),
                ),
            ),
        );
        snap
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let snap = sample_snapshot();
        let text = serde::to_string(&snap);
        let back: ObsSnapshot = serde::from_str(&text).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(serde::to_string(&back), text);
    }

    #[test]
    fn json_rendering_is_balanced_and_carries_names() {
        let json = sample_snapshot().to_json();
        for key in [
            "serve.served",
            "queue.depth",
            "serve.queue_wait_us",
            "\"p99\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced: {json}");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = ObsSnapshot::default();
        let back: ObsSnapshot = serde::from_str(&serde::to_string(&snap)).unwrap();
        assert_eq!(back, snap);
    }
}
