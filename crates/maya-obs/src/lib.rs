//! Maya-Obs: the unified observability layer — one metrics registry,
//! one span vocabulary, one flight recorder — threaded through every
//! stage of the stack (simulator, estimator cache, admission queue,
//! service, wire protocol) in place of the per-layer counters that
//! grew up around them.
//!
//! Three pieces:
//!
//! - **[`Registry`]** — named [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s behind cheap cloneable handles.
//!   Registration locks once per name; every update after that is a
//!   single relaxed atomic. [`Registry::snapshot`] is deterministic
//!   (sorted names) and the resulting [`ObsSnapshot`] has a compact
//!   wire codec, which is what a v5 `Scrape` frame carries.
//! - **Span tracing** — [`FlightRecorder::span`] records flat timed
//!   spans into bounded per-thread rings (the flight recorder), and
//!   [`SpanNode`] is the explicit job-lifecycle tree
//!   (queued → execute → stages → reply) that rides on service
//!   telemetry. Both export as Chrome-trace JSON via
//!   [`chrome::chrome_trace_json`] — load the file at
//!   `chrome://tracing`.
//! - **[`ObsConfig`]** — the zero-cost-when-off switch instrumented
//!   code branches on. `ObsConfig::off()` keeps hot paths exactly as
//!   uninstrumented (the perf report's `obs_overhead` scenario pins
//!   the cost of the *on* path).

pub mod chrome;
pub mod metrics;
pub mod serdes;
pub mod span;

pub use chrome::chrome_trace_json;
pub use metrics::{
    bucket_index, bucket_lower_bound, Counter, Gauge, Histogram, HistogramSnapshot, ObsSnapshot,
    Registry, HISTOGRAM_BUCKETS,
};
pub use span::{FlightRecorder, JobTreeRing, SpanGuard, SpanNode, SpanRecord};

/// Instrumentation switches: what instrumented code records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Publish counters/gauges/histograms.
    pub metrics: bool,
    /// Record spans into the flight recorder.
    pub spans: bool,
}

impl ObsConfig {
    /// Everything on.
    pub fn on() -> ObsConfig {
        ObsConfig {
            metrics: true,
            spans: true,
        }
    }

    /// Everything off: instrumented code must cost the same as before
    /// it was instrumented.
    pub fn off() -> ObsConfig {
        ObsConfig {
            metrics: false,
            spans: false,
        }
    }

    /// Whether any channel is on.
    pub fn enabled(&self) -> bool {
        self.metrics || self.spans
    }
}

impl Default for ObsConfig {
    /// Defaults to on: per-job instrumentation is cheap, and a server
    /// should answer a `Scrape` out of the box. Per-event hot loops
    /// (the simulator core) are only instrumented when explicitly
    /// given handles, so the default stays free there.
    fn default() -> Self {
        ObsConfig::on()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_toggles() {
        assert!(ObsConfig::default().enabled());
        assert!(ObsConfig::on().metrics && ObsConfig::on().spans);
        assert!(!ObsConfig::off().enabled());
    }
}
