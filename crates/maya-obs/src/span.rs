//! Span tracing: a scoped-guard `Span` API over a bounded per-thread
//! ring-buffer **flight recorder**, plus the [`SpanNode`] tree that
//! rides on service telemetry.
//!
//! Two span representations serve two needs:
//!
//! - [`FlightRecorder`] + [`FlightRecorder::span`] record *flat* timed
//!   spans (name, start, duration, thread) into fixed-size per-thread
//!   rings — wait-free against other threads, bounded memory, oldest
//!   entries overwritten. The recorder drains to Chrome-trace JSON
//!   (see [`crate::chrome`]).
//! - [`SpanNode`] is an explicit tree of named intervals (offsets from
//!   a common origin) built by code that already knows its phase
//!   structure — the job lifecycle tree on `Telemetry`
//!   (queued → execute → stages → reply).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed flat span in the flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name.
    pub name: &'static str,
    /// Start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Recording thread, as a small dense id assigned per recorder.
    pub thread: u32,
}

struct ThreadRing {
    thread: u32,
    /// Ring storage; `seq` counts total pushes, so the live window is
    /// the last `min(seq, cap)` entries ending at `seq % cap`.
    buf: Mutex<(Vec<SpanRecord>, u64)>,
}

struct RecorderInner {
    id: u64,
    epoch: Instant,
    enabled: AtomicBool,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadRing>>>,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Cache of this thread's ring per recorder id, so the steady-state
    /// span path is one `RefCell` borrow + one uncontended mutex.
    static LOCAL_RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// The bounded flight recorder (see module docs). Clones share state.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(4096)
    }
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity_per_thread` recent spans
    /// per recording thread.
    pub fn new(capacity_per_thread: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                enabled: AtomicBool::new(true),
                capacity: capacity_per_thread.max(1),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Runtime toggle. While disabled, [`FlightRecorder::span`] returns
    /// an inert guard whose drop does nothing — the off-path cost is
    /// one relaxed atomic load.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The recorder's time origin (spans are stamped relative to it).
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Opens a span; it records itself when the guard drops.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard(None);
        }
        SpanGuard(Some((self, name, Instant::now())))
    }

    /// Records an already-measured interval.
    pub fn record(&self, name: &'static str, start: Instant, dur: Duration) {
        if !self.enabled() {
            return;
        }
        let start_us = start
            .saturating_duration_since(self.inner.epoch)
            .as_micros() as u64;
        let rec = SpanRecord {
            name,
            start_us,
            dur_us: dur.as_micros() as u64,
            thread: 0, // patched by the ring below
        };
        self.push(rec);
    }

    fn ring(&self) -> Arc<ThreadRing> {
        LOCAL_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.inner.id) {
                return Arc::clone(ring);
            }
            let mut threads = self.inner.threads.lock().unwrap_or_else(|p| p.into_inner());
            let ring = Arc::new(ThreadRing {
                thread: threads.len() as u32,
                buf: Mutex::new((Vec::with_capacity(self.inner.capacity.min(64)), 0)),
            });
            threads.push(Arc::clone(&ring));
            drop(threads);
            rings.push((self.inner.id, Arc::clone(&ring)));
            ring
        })
    }

    fn push(&self, mut rec: SpanRecord) {
        let ring = self.ring();
        rec.thread = ring.thread;
        let mut buf = ring.buf.lock().unwrap_or_else(|p| p.into_inner());
        let (store, seq) = &mut *buf;
        let cap = self.inner.capacity;
        if store.len() < cap {
            store.push(rec);
        } else {
            store[(*seq % cap as u64) as usize] = rec;
        }
        *seq += 1;
    }

    /// All retained spans, across threads, sorted by start time (ties
    /// by thread then name) — deterministic for a quiesced recorder.
    pub fn drain_sorted(&self) -> Vec<SpanRecord> {
        let threads = self.inner.threads.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = Vec::new();
        for ring in threads.iter() {
            let buf = ring.buf.lock().unwrap_or_else(|p| p.into_inner());
            out.extend(buf.0.iter().cloned());
        }
        drop(threads);
        out.sort_by(|a, b| (a.start_us, a.thread, a.name).cmp(&(b.start_us, b.thread, b.name)));
        out
    }
}

/// RAII guard from [`FlightRecorder::span`]; records on drop.
pub struct SpanGuard<'a>(Option<(&'a FlightRecorder, &'static str, Instant)>);

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((recorder, name, start)) = self.0.take() {
            recorder.record(name, start, start.elapsed());
        }
    }
}

/// One node of an explicit span tree: a named interval, offset from
/// the tree's origin, with nested children.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name ("job", "queued", "simulation", ...).
    pub name: String,
    /// Offset of the interval start from the tree origin.
    pub start: Duration,
    /// Interval length.
    pub duration: Duration,
    /// Nested phases, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf span.
    pub fn leaf(name: &str, start: Duration, duration: Duration) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            start,
            duration,
            children: Vec::new(),
        }
    }

    /// Appends a child and returns `self` (builder style).
    pub fn with_child(mut self, child: SpanNode) -> SpanNode {
        self.children.push(child);
        self
    }

    /// Finds a descendant (or `self`) by name, depth-first.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Sum of the direct children's durations — the portion of this
    /// span its children account for.
    pub fn child_coverage(&self) -> Duration {
        self.children.iter().map(|c| c.duration).sum()
    }

    /// Total node count of the tree rooted here.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(SpanNode::len).sum::<usize>()
    }

    /// Whether the tree is a single childless node.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

/// A bounded ring of recently completed job span trees keyed by job
/// id, shared by the service workers and drained into
/// [`crate::ObsSnapshot`]. Re-recording an id *replaces* that entry in
/// place, so a layer that enriches a tree (the wire server appending a
/// `reply` span to the worker's tree) upserts rather than duplicates.
#[derive(Clone)]
pub struct JobTreeRing {
    inner: Arc<Mutex<RingState>>,
}

/// The id-keyed ring entries plus the capacity bound.
type RingState = (std::collections::VecDeque<(u64, SpanNode)>, usize);

impl Default for JobTreeRing {
    fn default() -> Self {
        JobTreeRing::new(64)
    }
}

impl JobTreeRing {
    /// A ring keeping the latest `capacity` trees.
    pub fn new(capacity: usize) -> JobTreeRing {
        JobTreeRing {
            inner: Arc::new(Mutex::new((
                std::collections::VecDeque::new(),
                capacity.max(1),
            ))),
        }
    }

    /// Records (or replaces) the tree for job `id`, evicting the
    /// oldest entry at capacity.
    pub fn record(&self, id: u64, tree: SpanNode) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let cap = inner.1;
        if let Some(slot) = inner.0.iter_mut().find(|(k, _)| *k == id) {
            slot.1 = tree;
            return;
        }
        if inner.0.len() == cap {
            inner.0.pop_front();
        }
        inner.0.push_back((id, tree));
    }

    /// The retained tree for job `id`, if still in the ring.
    pub fn tree(&self, id: u64) -> Option<SpanNode> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .0
            .iter()
            .find(|(k, _)| *k == id)
            .map(|(_, t)| t.clone())
    }

    /// The retained trees, oldest first.
    pub fn trees(&self) -> Vec<SpanNode> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.0.iter().map(|(_, t)| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_sort() {
        let rec = FlightRecorder::new(8);
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let spans = rec.drain_sorted();
        assert_eq!(spans.len(), 2);
        // Inner drops first but started later (or at the same
        // microsecond); both must be present.
        assert!(spans.iter().any(|s| s.name == "outer"));
        assert!(spans.iter().any(|s| s.name == "inner"));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let rec = FlightRecorder::new(4);
        for _ in 0..10 {
            drop(rec.span("s"));
        }
        assert_eq!(rec.drain_sorted().len(), 4);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::new(8);
        rec.set_enabled(false);
        drop(rec.span("skipped"));
        rec.record("skipped", Instant::now(), Duration::from_millis(1));
        assert!(rec.drain_sorted().is_empty());
        rec.set_enabled(true);
        drop(rec.span("kept"));
        assert_eq!(rec.drain_sorted().len(), 1);
    }

    #[test]
    fn per_thread_rings_do_not_interleave_capacity() {
        let rec = FlightRecorder::new(4);
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..6 {
                        drop(rec.span("t"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Each thread keeps its own 4 most recent spans.
        assert_eq!(rec.drain_sorted().len(), 12);
    }

    #[test]
    fn span_tree_finds_and_measures() {
        let ms = Duration::from_millis;
        let tree = SpanNode::leaf("job", ms(0), ms(10))
            .with_child(SpanNode::leaf("queued", ms(0), ms(2)))
            .with_child(
                SpanNode::leaf("execute", ms(2), ms(7)).with_child(SpanNode::leaf(
                    "simulation",
                    ms(3),
                    ms(5),
                )),
            )
            .with_child(SpanNode::leaf("reply", ms(9), ms(1)));
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.find("simulation").unwrap().duration, ms(5));
        assert_eq!(tree.child_coverage(), ms(10));
    }

    #[test]
    fn job_ring_is_bounded() {
        let ring = JobTreeRing::new(2);
        for i in 0..5u64 {
            ring.record(
                i,
                SpanNode::leaf(&format!("job{i}"), Duration::ZERO, Duration::from_millis(1)),
            );
        }
        let trees = ring.trees();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].name, "job3");
        assert_eq!(trees[1].name, "job4");
    }

    #[test]
    fn job_ring_upserts_by_id() {
        let ring = JobTreeRing::new(4);
        let ms = Duration::from_millis;
        ring.record(7, SpanNode::leaf("job", ms(0), ms(5)));
        ring.record(8, SpanNode::leaf("job", ms(0), ms(3)));
        // The wire layer re-records id 7 with a reply child appended.
        ring.record(
            7,
            SpanNode::leaf("job", ms(0), ms(6)).with_child(SpanNode::leaf("reply", ms(5), ms(1))),
        );
        let trees = ring.trees();
        assert_eq!(trees.len(), 2, "upsert must not duplicate");
        assert_eq!(ring.tree(7).unwrap().find("reply").unwrap().duration, ms(1));
        assert_eq!(ring.tree(8).unwrap().duration, ms(3));
        assert!(ring.tree(9).is_none());
    }
}
