//! maya-lint CLI.
//!
//! ```text
//! cargo run -p maya-lint -- --check                  # gate: exit 1 on any finding
//! cargo run -p maya-lint -- --check --format json    # machine-readable report
//! cargo run -p maya-lint -- --check --format sarif   # SARIF 2.1.0 for code scanning
//! cargo run -p maya-lint -- --write-budget           # regenerate lint-budget.toml
//! ```
//!
//! The workspace root is located from `CARGO_MANIFEST_DIR` (set by
//! `cargo run`) or, failing that, the current directory; `--root PATH`
//! overrides both.

use std::path::PathBuf;
use std::process::ExitCode;

use maya_lint::config::Config;

const USAGE: &str =
    "usage: maya-lint [--check] [--format text|json|sarif] [--write-budget] [--root PATH]";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut write_budget = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --check is the default (and only) analysis mode; accept
            // it explicitly so the CI invocation reads as a gate.
            "--check" => {}
            // Back-compat alias for `--format json`.
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--write-budget" => write_budget = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("maya-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    let budget_path = root.join("lint-budget.toml");
    let cfg = match std::fs::read_to_string(&budget_path) {
        Ok(text) => match Config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("maya-lint: {e}");
                return ExitCode::from(2);
            }
        },
        // No budget file yet: empty caps (every crate with panic sites
        // will report as missing until --write-budget commits one).
        Err(_) => Config::default(),
    };

    if write_budget {
        let next = match maya_lint::write_budget(&root, &cfg) {
            Ok(next) => next,
            Err(e) => {
                eprintln!("maya-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&budget_path, next.render()) {
            eprintln!("maya-lint: cannot write {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
        println!(
            "maya-lint: wrote {} ({} crate budget(s))",
            budget_path.display(),
            next.budgets.len()
        );
        return ExitCode::SUCCESS;
    }

    let report = match maya_lint::run_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("maya-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
        Format::Sarif => print!("{}", report.render_sarif()),
    }
    if report.failed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `CARGO_MANIFEST_DIR` points at `crates/maya-lint`; the workspace
/// root is two levels up. Outside cargo, fall back to the current dir.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(dir);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}
