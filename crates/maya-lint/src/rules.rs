//! The five workspace rules, each a pass over one file's token stream.
//!
//! Every rule is heuristic by design — this is a token scanner, not a
//! type checker — and each one is tuned so that the committed tree is
//! clean without weakening the property it guards:
//!
//! - **guard-across-blocking-call** — a `let g = ….lock()/.read()/.write()`
//!   binding whose scope contains a blocking call (`recv`, `wait`,
//!   `join`, `read_exact`, `write_all`, `accept`, …) is the PR-5 bug
//!   class: one stalled peer wedges every thread behind the mutex. A
//!   blocking call *on* the guard itself (the mutex exists to serialize
//!   that resource) or *consuming* the guard (condvar idiom,
//!   `cond.wait(g)`) is the correct pattern and exempt.
//! - **nondeterministic-iteration** — iterating a `HashMap`/`HashSet`
//!   inside a serialization-shaped function (`snapshot`, `to_json`,
//!   `emit`, `serialize`, or anything in a `serdes` module) without a
//!   downstream `sort`/`BTreeMap` breaks the byte-identity proofs.
//! - **wall-clock-in-output** — `Instant::now`/`SystemTime` outside the
//!   allowlisted telemetry modules: wall-clock reads are how
//!   nondeterminism leaks into otherwise pure stages.
//! - **unseeded-randomness** — RNG construction that does not take an
//!   explicit seed (`thread_rng`, `from_entropy`, `OsRng`): every
//!   random draw in this workspace must replay from a committed seed.
//! - **panic-budget** — `unwrap()`/`expect()`/`panic!`-family/slice
//!   indexing per non-test crate, capped by `lint-budget.toml` (which
//!   may only ratchet down).
//!
//! Limits worth knowing when reading findings: guard bindings are
//! recognized from `let` statements and `for`-loop headers (not
//! `if let`/`match` arms), and collection types are resolved per file
//! (a `HashMap` field declared in another file is invisible). Both cut
//! toward false negatives, never spurious failures; `lint:allow`
//! covers the remainder.

use crate::lexer::{TokKind, Token};

/// Rule identifiers, as they appear in findings, suppressions and the
/// JSON report.
pub const GUARD_RULE: &str = "guard-across-blocking-call";
/// See [`GUARD_RULE`] (module docs list all five).
pub const ITER_RULE: &str = "nondeterministic-iteration";
/// See [`GUARD_RULE`].
pub const WALL_CLOCK_RULE: &str = "wall-clock-in-output";
/// See [`GUARD_RULE`].
pub const RNG_RULE: &str = "unseeded-randomness";
/// See [`GUARD_RULE`].
pub const PANIC_RULE: &str = "panic-budget";
/// Reported when a `lint:allow` comment itself is malformed (missing
/// rule or reason).
pub const SUPPRESSION_RULE: &str = "bad-suppression";
/// Interprocedural: a cycle in the workspace lock-order graph (see
/// [`crate::interproc`]).
pub const LOCK_ORDER_RULE: &str = "lock-order-cycle";
/// Interprocedural: encoder/decoder asymmetry in a serdes module (see
/// [`crate::codec_check`]).
pub const CODEC_RULE: &str = "wire-codec-drift";

/// Every rule name, for validation and docs.
pub const ALL_RULES: &[&str] = &[
    GUARD_RULE,
    ITER_RULE,
    WALL_CLOCK_RULE,
    RNG_RULE,
    PANIC_RULE,
    SUPPRESSION_RULE,
    LOCK_ORDER_RULE,
    CODEC_RULE,
];

/// One rule hit at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Human message.
    pub message: String,
}

/// Per-file panic-budget tallies (summed per crate by the engine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PanicCounts {
    /// `.unwrap()` calls.
    pub unwrap: u64,
    /// `.expect(…)` calls.
    pub expect: u64,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    pub panics: u64,
    /// Slice/array index expressions (`x[i]`, `x[a..b]`).
    pub index: u64,
}

impl PanicCounts {
    /// Sum of every category.
    pub fn total(&self) -> u64 {
        self.unwrap + self.expect + self.panics + self.index
    }

    /// Adds `other` into `self`.
    pub fn add(&mut self, other: &PanicCounts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.panics += other.panics;
        self.index += other.index;
    }
}

/// Everything the rules need about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path (`/`-separated).
    pub path: &'a str,
    /// The token stream.
    pub tokens: &'a [Token],
    /// Sorted, disjoint token-index ranges of test code
    /// (`#[cfg(test)]` / `#[test]` items) — exempt from every rule.
    pub exempt: &'a [(usize, usize)],
}

impl FileCtx<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    fn is_exempt(&self, i: usize) -> bool {
        self.exempt.iter().any(|&(a, b)| i >= a && i < b)
    }

    fn line(&self, i: usize) -> u32 {
        self.tok(i).map(|t| t.line).unwrap_or(0)
    }

    fn finding(&self, i: usize, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.path.to_string(),
            line: self.line(i),
            rule,
            message,
        }
    }
}

/// Computes the exempt (test-code) token ranges for a stream: any item
/// annotated `#[cfg(test)]` or `#[test]`, through the end of its body
/// (`{…}`) or declaration (`;`).
pub fn test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            let start = i;
            // Skip this and any further attributes.
            let mut j = i;
            while is_attr_start(tokens, j) {
                j = skip_attr(tokens, j);
            }
            // Scan to the item body: first `{` (take its matching `}`)
            // or a `;` before any brace.
            let mut k = j;
            let end = loop {
                match tokens.get(k) {
                    None => break tokens.len(),
                    Some(t) if t.is_punct('{') => break match_delim(tokens, k, '{', '}'),
                    Some(t) if t.is_punct(';') => break k + 1,
                    // A `(`/`[` in the signature (args, generics) may
                    // contain braces-in-closures; skip them wholesale.
                    Some(t) if t.is_punct('(') => k = match_delim(tokens, k, '(', ')'),
                    Some(t) if t.is_punct('[') => k = match_delim(tokens, k, '[', ']'),
                    Some(_) => k += 1,
                }
            };
            out.push((start, end));
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i), Some(t) if t.is_punct('#'))
        && matches!(tokens.get(i + 1), Some(t) if t.is_punct('['))
}

/// Whether the attribute starting at `i` is `#[test]`, `#[cfg(test)]`
/// or any `#[cfg(...)]` mentioning `test` (e.g. `cfg(any(test, ...))`).
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if !is_attr_start(tokens, i) {
        return false;
    }
    let end = skip_attr(tokens, i);
    let body = &tokens[i + 2..end.saturating_sub(1).max(i + 2)];
    match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Returns the index just past the attribute starting at `i` (`#`).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    match_delim(tokens, i + 1, '[', ']')
}

/// Index just past the delimiter at `open_idx`'s matching closer.
/// `open_idx` must point at the opener; unbalanced streams end at EOF.
pub(crate) fn match_delim(tokens: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while let Some(t) = tokens.get(i) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

// ---------------------------------------------------------------------
// Rule 1: guard-across-blocking-call
// ---------------------------------------------------------------------

/// Method names treated as blocking when called with a guard live.
/// `join` and `accept` only count with an empty argument list
/// (`Path::join(arg)` and iterator adapters stay clean).
pub(crate) const BLOCKING: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_timeout_while",
    "wait_while",
    "join",
    "read_exact",
    "write_all",
    "accept",
    "sleep",
];

/// Blocking names that only count when called with no arguments.
const BLOCKING_NEEDS_EMPTY_ARGS: &[&str] = &["join", "accept"];

struct Guard {
    name: Option<String>,
    acquired: &'static str,
    line: u32,
}

/// Runs the guard-across-blocking-call rule.
pub fn guard_across_blocking(ctx: &FileCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    // One frame per `{`; each holds the guards declared inside it.
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    let mut i = 0usize;
    while i < ctx.tokens.len() {
        if ctx.is_exempt(i) {
            i += 1;
            continue;
        }
        let t = match ctx.tok(i) {
            Some(t) => t,
            None => break,
        };
        if t.is_punct('{') {
            scopes.push(Vec::new());
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if scopes.len() > 1 {
                scopes.pop();
            }
            i += 1;
            continue;
        }
        // `drop(name)` releases a guard early.
        if t.is_ident("drop")
            && matches!(ctx.tok(i + 1), Some(t) if t.is_punct('('))
            && matches!(ctx.tok(i + 3), Some(t) if t.is_punct(')'))
        {
            if let Some(arg) = ctx.tok(i + 2) {
                if arg.kind == TokKind::Ident {
                    for frame in scopes.iter_mut() {
                        frame.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                    }
                }
            }
            i += 4;
            continue;
        }
        // `let [mut] NAME = <expr ending in .lock()/.read()/.write()>;`
        if t.is_ident("let") {
            if let Some(g) = parse_guard_let(ctx.tokens, i) {
                if let Some(frame) = scopes.last_mut() {
                    frame.push(Guard {
                        name: Some(g.name),
                        acquired: g.kind,
                        line: g.line,
                    });
                }
                i = g.next;
                continue;
            }
        }
        // `for PAT in <expr containing .lock()/.read()/.write()> {` —
        // the guard is an unnamed temporary living for the loop body.
        if t.is_ident("for") {
            if let Some((kind, line, body_open)) = parse_guard_for(ctx.tokens, i) {
                // Findings inside the body can never name the guard, so
                // receiver/argument exemptions do not apply.
                scopes.push(vec![Guard {
                    name: None,
                    acquired: kind,
                    line,
                }]);
                // The body's `{` would push another frame; skip past it
                // so our frame IS the body frame.
                i = body_open + 1;
                continue;
            }
        }
        // A blocking call while guards are live?
        if let Some((callee, args_open)) = blocking_call_at(ctx.tokens, i) {
            let live: Vec<&Guard> = scopes.iter().flatten().collect();
            if !live.is_empty() {
                let args_end = match_delim(ctx.tokens, args_open, '(', ')');
                let receiver = ctx
                    .tok(i.wrapping_sub(1))
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                for g in live {
                    let name = g.name.as_deref();
                    // Called on the guard itself: the lock exists to
                    // serialize this resource.
                    if name.is_some() && receiver.as_deref() == name {
                        continue;
                    }
                    // Guard consumed/passed by the call (condvar
                    // `cond.wait(guard)` idiom).
                    let in_args = name.is_some_and(|n| {
                        ctx.tokens[args_open..args_end]
                            .iter()
                            .any(|t| t.is_ident(n))
                    });
                    if in_args {
                        continue;
                    }
                    let held = match name {
                        Some(n) => format!("guard `{n}`"),
                        None => "a temporary guard".to_string(),
                    };
                    findings.push(ctx.finding(
                        i,
                        GUARD_RULE,
                        format!(
                            "{held} (.{}() at line {}) is held across blocking `.{callee}()` — \
                             narrow the guard's scope or pass it to the wait",
                            g.acquired, g.line
                        ),
                    ));
                }
            }
            i = args_open;
            continue;
        }
        i += 1;
    }
    findings
}

/// A recognized `let`-bound guard acquisition.
pub(crate) struct GuardLet {
    /// The bound name.
    pub name: String,
    /// `"lock"`, `"read"` or `"write"`.
    pub kind: &'static str,
    /// Line of the binding.
    pub line: u32,
    /// Token index of the `.` before the acquiring method — the
    /// receiver chain ends just before it.
    pub dot: usize,
    /// Index past the statement's `;`.
    pub next: usize,
}

/// If `i` points at `let` binding a fresh guard, describes it.
pub(crate) fn parse_guard_let(tokens: &[Token], i: usize) -> Option<GuardLet> {
    let mut j = i + 1;
    if matches!(tokens.get(j), Some(t) if t.is_ident("mut")) {
        j += 1;
    }
    let name_tok = tokens.get(j)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    j += 1;
    // Optional `: Type` annotation — skip to the `=` at depth 0.
    let mut depth = 0i32;
    loop {
        let t = tokens.get(j)?;
        if depth == 0 && t.is_punct('=') {
            // Reject `==`, `=>`, `<=` style (not a plain assign).
            if matches!(tokens.get(j + 1), Some(n) if n.is_punct('=') || n.is_punct('>')) {
                return None;
            }
            j += 1;
            break;
        }
        if depth == 0 && t.is_punct(';') {
            return None; // `let x;`
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        }
        j += 1;
    }
    // `let v = *m.lock().unwrap();` copies the value out — the guard
    // is a temporary dropped at the end of the statement, not bound.
    if matches!(tokens.get(j), Some(t) if t.is_punct('*')) {
        return None;
    }
    // Scan the initializer to its terminating `;` at depth 0, looking
    // for a lock acquisition that is the *final* call of the chain.
    let mut found: Option<(&'static str, usize)> = None;
    let mut depth = 0i32;
    loop {
        let t = tokens.get(j)?;
        if depth == 0 && t.is_punct(';') {
            break;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return None; // statement ended by a closing brace (expr tail)
            }
        }
        // `.lock()` / `.read()` / `.write()` with EMPTY parens at the
        // initializer's top level.
        if depth == 0 && t.is_punct('.') {
            if let Some(lk) = lock_method_at(tokens, j) {
                // Check the suffix: only unwrap/expect/
                // unwrap_or_else/`?` may follow before the `;`.
                let mut k = j + 4;
                let ok = loop {
                    let s = match tokens.get(k) {
                        Some(s) => s,
                        None => break false,
                    };
                    if s.is_punct(';') {
                        break true;
                    }
                    if s.is_punct('?') {
                        k += 1;
                        continue;
                    }
                    if s.is_punct('.') {
                        let m2 = match tokens.get(k + 1) {
                            Some(m2) => m2,
                            None => break false,
                        };
                        if matches!(m2.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                            && matches!(tokens.get(k + 2), Some(t) if t.is_punct('('))
                        {
                            k = match_delim(tokens, k + 2, '(', ')');
                            continue;
                        }
                    }
                    break false;
                };
                if ok {
                    found = Some((lk, j));
                }
            }
        }
        j += 1;
    }
    found.map(|(kind, dot)| GuardLet {
        name,
        kind,
        line,
        dot,
        next: j + 1,
    })
}

/// If the `.` at `i` starts `.lock()`/`.read()`/`.write()` with empty
/// parens, names the acquisition kind.
pub(crate) fn lock_method_at(tokens: &[Token], i: usize) -> Option<&'static str> {
    if !matches!(tokens.get(i), Some(t) if t.is_punct('.')) {
        return None;
    }
    let m = tokens.get(i + 1)?;
    let lk = match m.text.as_str() {
        "lock" => "lock",
        "read" => "read",
        "write" => "write",
        _ => return None,
    };
    if matches!(tokens.get(i + 2), Some(t) if t.is_punct('('))
        && matches!(tokens.get(i + 3), Some(t) if t.is_punct(')'))
    {
        Some(lk)
    } else {
        None
    }
}

/// If `i` points at a `for` whose header acquires a lock, returns
/// `(lock_kind, line, index of the body '{')`.
pub(crate) fn parse_guard_for(tokens: &[Token], i: usize) -> Option<(&'static str, u32, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut kind: Option<&'static str> = None;
    loop {
        let t = tokens.get(j)?;
        if depth == 0 && t.is_punct('{') {
            return kind.map(|k| (k, tokens.get(i).map(|t| t.line).unwrap_or(0), j));
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') {
            return None; // not a for-loop header after all
        }
        if kind.is_none() {
            kind = lock_method_at(tokens, j);
        }
        j += 1;
    }
}

/// If `i` points at the `.` (or `::`-tail ident) of a blocking call,
/// returns `(method name, index of its '(')`.
pub(crate) fn blocking_call_at(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let t = tokens.get(i)?;
    // `.recv(` — method-call style.
    if t.is_punct('.') {
        let m = tokens.get(i + 1)?;
        if m.kind == TokKind::Ident && BLOCKING.contains(&m.text.as_str()) {
            let open = i + 2;
            if matches!(tokens.get(open), Some(t) if t.is_punct('(')) {
                if BLOCKING_NEEDS_EMPTY_ARGS.contains(&m.text.as_str())
                    && !matches!(tokens.get(open + 1), Some(t) if t.is_punct(')'))
                {
                    return None;
                }
                return Some((m.text.clone(), open));
            }
        }
        return None;
    }
    // `thread::sleep(` — path-call style (sleep only; the rest are
    // methods in practice).
    if t.is_ident("sleep")
        && matches!(tokens.get(i.wrapping_sub(1)), Some(p) if p.is_punct(':'))
        && matches!(tokens.get(i + 1), Some(t) if t.is_punct('('))
    {
        return Some(("sleep".to_string(), i + 1));
    }
    None
}

// ---------------------------------------------------------------------
// Rule 2: nondeterministic-iteration
// ---------------------------------------------------------------------

/// Function-name fragments that mark a serialization context.
const SER_FN_MARKERS: &[&str] = &["snapshot", "to_json", "emit", "serialize", "serde"];

/// Iterator-producing methods on hash collections.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers that mitigate hash-order nondeterminism downstream.
fn is_mitigation(t: &Token) -> bool {
    (t.kind == TokKind::Ident && t.text.contains("sort"))
        || t.is_ident("BTreeMap")
        || t.is_ident("BTreeSet")
}

/// Runs the nondeterministic-iteration rule.
pub fn nondeterministic_iteration(ctx: &FileCtx) -> Vec<Finding> {
    let hashy = hashy_names(ctx.tokens);
    let mut findings = Vec::new();
    let in_serdes_file = ctx.path.ends_with("/serdes.rs")
        || ctx.path.contains("/serdes/")
        || ctx.path.ends_with("/json.rs");
    let mut i = 0usize;
    while i < ctx.tokens.len() {
        let t = match ctx.tok(i) {
            Some(t) => t,
            None => break,
        };
        if t.is_ident("fn") && !ctx.is_exempt(i) {
            if let Some(name) = ctx.tok(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let lowered = name.text.to_lowercase();
                let target = in_serdes_file || SER_FN_MARKERS.iter().any(|m| lowered.contains(m));
                if target {
                    // Find the body: first `{` after the signature.
                    let mut j = i + 2;
                    let body_open = loop {
                        match ctx.tok(j) {
                            None => break None,
                            Some(t) if t.is_punct('{') => break Some(j),
                            Some(t) if t.is_punct(';') => break None, // trait decl
                            Some(t) if t.is_punct('(') => {
                                j = match_delim(ctx.tokens, j, '(', ')');
                            }
                            Some(_) => j += 1,
                        }
                    };
                    if let Some(open) = body_open {
                        let end = match_delim(ctx.tokens, open, '{', '}');
                        findings.extend(check_ser_body(ctx, &name.text, open, end, &hashy));
                        i = end;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    findings
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type (or
/// initialized from one) anywhere in the file.
fn hashy_names(tokens: &[Token]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `name: [& mut] HashMap<...>` — field, param or annotated let.
        let mut j = i;
        while j > 0 && matches!(tokens.get(j - 1), Some(p) if p.is_punct('&') || p.is_ident("mut"))
        {
            j -= 1;
        }
        if j >= 2
            && matches!(tokens.get(j - 1), Some(p) if p.is_punct(':'))
            && !matches!(tokens.get(j - 2), Some(p) if p.is_punct(':'))
        {
            if let Some(name) = tokens.get(j - 2).filter(|t| t.kind == TokKind::Ident) {
                out.push(name.text.clone());
                continue;
            }
        }
        // `let [mut] name = HashMap::new()` / `::default()` / `::from(...)`.
        if i >= 2
            && matches!(tokens.get(i - 1), Some(p) if p.is_punct('='))
            && matches!(
                tokens.get(i + 2).map(|t| t.text.as_str()),
                Some("new" | "default" | "with_capacity" | "from")
            )
        {
            if let Some(name) = tokens.get(i - 2).filter(|t| t.kind == TokKind::Ident) {
                out.push(name.text.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Scans one serialization-context function body for unsorted hash
/// iteration.
fn check_ser_body(
    ctx: &FileCtx,
    fn_name: &str,
    open: usize,
    end: usize,
    hashy: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut i = open;
    while i < end {
        let site = iteration_site(ctx, i, end, hashy);
        if let Some((name, site_idx)) = site {
            // Mitigated if anything from here to the end of the
            // function sorts or rebuilds into an ordered container.
            let mitigated = ctx.tokens[site_idx..end].iter().any(is_mitigation);
            if !mitigated {
                findings.push(ctx.finding(
                    site_idx,
                    ITER_RULE,
                    format!(
                        "`{fn_name}` iterates hash-ordered `{name}` without a downstream \
                         sort/BTreeMap — serialization output depends on hash order"
                    ),
                ));
            }
            i = site_idx + 1;
            continue;
        }
        i += 1;
    }
    findings
}

/// If an iteration over a hash-typed identifier starts at/after `i`,
/// returns `(identifier, site index)`. Two shapes: `name.iter()`-style
/// method chains, and `for pat in […] name {` headers.
fn iteration_site(
    ctx: &FileCtx,
    i: usize,
    end: usize,
    hashy: &[String],
) -> Option<(String, usize)> {
    let t = ctx.tok(i)?;
    if i + 3 < end && t.kind == TokKind::Ident && hashy.iter().any(|h| h == &t.text) {
        // `name . iter (`
        if matches!(ctx.tok(i + 1), Some(p) if p.is_punct('.')) {
            if let Some(m) = ctx.tok(i + 2) {
                if ITER_METHODS.contains(&m.text.as_str())
                    && matches!(ctx.tok(i + 3), Some(p) if p.is_punct('('))
                {
                    return Some((t.text.clone(), i));
                }
            }
        }
    }
    // `for pat in &name {` / `for pat in name {` — the chain's last
    // ident right before the body brace.
    if t.is_ident("for") {
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut last_ident: Option<(String, usize)> = None;
        while j < end {
            let tok = ctx.tok(j)?;
            if depth == 0 && tok.is_punct('{') {
                if let Some((name, at)) = last_ident {
                    if hashy.iter().any(|h| h == &name) {
                        return Some((name, at));
                    }
                }
                return None;
            }
            if tok.is_punct('(') || tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                depth -= 1;
            } else if tok.is_punct(';') {
                return None;
            }
            if depth == 0 && tok.kind == TokKind::Ident {
                last_ident = Some((tok.text.clone(), j));
            }
            j += 1;
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule 3: wall-clock-in-output
// ---------------------------------------------------------------------

/// Runs the wall-clock rule. `allowed` is the module allowlist from
/// `lint-budget.toml` (path prefixes/substrings).
pub fn wall_clock(ctx: &FileCtx, allowed: &[String]) -> Vec<Finding> {
    if allowed.iter().any(|p| ctx.path.contains(p.as_str())) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.is_exempt(i) {
            continue;
        }
        if t.is_ident("SystemTime") {
            findings.push(
                ctx.finding(
                    i,
                    WALL_CLOCK_RULE,
                    "`SystemTime` outside the telemetry allowlist — wall-clock time must not \
                 reach deterministic outputs"
                        .to_string(),
                ),
            );
        }
        if t.is_ident("Instant")
            && matches!(ctx.tok(i + 1), Some(p) if p.is_punct(':'))
            && matches!(ctx.tok(i + 2), Some(p) if p.is_punct(':'))
            && matches!(ctx.tok(i + 3), Some(n) if n.is_ident("now"))
        {
            findings.push(
                ctx.finding(
                    i,
                    WALL_CLOCK_RULE,
                    "`Instant::now` outside the telemetry allowlist — wall-clock reads leak \
                 nondeterminism into pure stages"
                        .to_string(),
                ),
            );
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 4: unseeded-randomness
// ---------------------------------------------------------------------

/// RNG constructors that consult ambient entropy instead of a seed.
const UNSEEDED: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// Runs the unseeded-randomness rule.
pub fn unseeded_randomness(ctx: &FileCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.is_exempt(i) || t.kind != TokKind::Ident {
            continue;
        }
        if !UNSEEDED.contains(&t.text.as_str()) {
            continue;
        }
        // A definition (`fn thread_rng(`) is not a use.
        if matches!(ctx.tok(i.wrapping_sub(1)), Some(p) if p.is_ident("fn")) {
            continue;
        }
        findings.push(ctx.finding(
            i,
            RNG_RULE,
            format!(
                "`{}` draws from ambient entropy — every RNG here must be constructed \
                 from an explicit committed seed (`seed_from_u64`)",
                t.text
            ),
        ));
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 5: panic-budget
// ---------------------------------------------------------------------

/// Counts panic-capable sites in non-test code.
pub fn panic_counts(ctx: &FileCtx) -> PanicCounts {
    let mut counts = PanicCounts::default();
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.is_exempt(i) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let called = matches!(ctx.tok(i + 1), Some(p) if p.is_punct('('));
                let method = matches!(ctx.tok(i.wrapping_sub(1)), Some(p) if p.is_punct('.'));
                match t.text.as_str() {
                    "unwrap" if called && method => counts.unwrap += 1,
                    "expect" if called && method => counts.expect += 1,
                    "panic" | "unreachable" | "todo" | "unimplemented" if matches!(ctx.tok(i + 1), Some(p) if p.is_punct('!')) =>
                    {
                        counts.panics += 1;
                    }
                    _ => {}
                }
            }
            TokKind::Punct if t.is_punct('[') => {
                // Indexing: `expr[` where expr ends in an identifier,
                // `)` or `]`. Attributes (`#[`), macros (`vec![`) and
                // type positions (`: [u8; 4]`) do not match.
                if matches!(
                    ctx.tok(i.wrapping_sub(1)),
                    Some(p) if p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']')
                ) {
                    counts.index += 1;
                }
            }
            _ => {}
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_findings(src: &str, rule: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let exempt = test_ranges(&lexed.tokens);
        let ctx = FileCtx {
            path: "crates/demo/src/lib.rs",
            tokens: &lexed.tokens,
            exempt: &exempt,
        };
        match rule {
            GUARD_RULE => guard_across_blocking(&ctx),
            ITER_RULE => nondeterministic_iteration(&ctx),
            WALL_CLOCK_RULE => wall_clock(&ctx, &[]),
            RNG_RULE => unseeded_randomness(&ctx),
            _ => Vec::new(),
        }
    }

    #[test]
    fn condvar_consuming_wait_is_exempt() {
        let src = "
            fn pop(&self) {
                let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    state = self.cond.wait(state).unwrap_or_else(|p| p.into_inner());
                }
            }
        ";
        assert!(ctx_findings(src, GUARD_RULE).is_empty());
    }

    #[test]
    fn recv_under_guard_is_flagged() {
        let src = "
            fn dequeue(&self) {
                let rx = self.rx.lock().unwrap();
                let job = rx2.recv();
            }
        ";
        let f = ctx_findings(src, GUARD_RULE);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`rx`"));
    }

    #[test]
    fn blocking_on_the_guard_itself_is_exempt() {
        let src = "
            fn send(&self) {
                let mut w = self.writer.lock().unwrap();
                w.write_all(b);
            }
        ";
        assert!(ctx_findings(src, GUARD_RULE).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "
            fn f(&self) {
                let g = self.m.lock().unwrap();
                drop(g);
                other.recv();
            }
        ";
        assert!(ctx_findings(src, GUARD_RULE).is_empty());
    }

    #[test]
    fn scope_end_releases_the_guard() {
        let src = "
            fn f(&self) {
                { let g = self.m.lock().unwrap(); }
                other.recv();
            }
        ";
        assert!(ctx_findings(src, GUARD_RULE).is_empty());
    }

    #[test]
    fn mid_expression_lock_is_not_a_guard_binding() {
        // The guard is a temporary inside mem::take — gone by the end
        // of the statement, so the later join is fine.
        let src = "
            fn f(&self) {
                let threads = std::mem::take(&mut *self.t.lock().unwrap());
                for h in threads { h.join(); }
            }
        ";
        assert!(ctx_findings(src, GUARD_RULE).is_empty());
    }

    #[test]
    fn path_join_is_not_blocking() {
        let src = "
            fn f(&self) {
                let g = self.m.lock().unwrap();
                let p = dir.join(name);
            }
        ";
        assert!(ctx_findings(src, GUARD_RULE).is_empty());
    }

    #[test]
    fn thread_join_under_guard_is_flagged() {
        let src = "
            fn f(&self) {
                let mut threads = self.t.lock().unwrap();
                for h in threads.drain(..) { h.join(); }
            }
        ";
        assert_eq!(ctx_findings(src, GUARD_RULE).len(), 1);
    }

    #[test]
    fn for_loop_over_lock_temporary_flags_blocking_body() {
        let src = "
            fn f(&self) {
                for h in self.t.lock().unwrap().drain() { h.join(); }
            }
        ";
        assert_eq!(ctx_findings(src, GUARD_RULE).len(), 1);
    }

    #[test]
    fn unsorted_hash_iteration_in_snapshot_fn_is_flagged() {
        let src = "
            struct S { items: HashMap<String, u64> }
            impl S {
                fn snapshot(&self) -> Vec<u64> {
                    self.items.values().copied().collect()
                }
                fn lookup(&self) -> usize { self.items.len() }
            }
        ";
        let f = ctx_findings(src, ITER_RULE);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("items"));
    }

    #[test]
    fn sorted_hash_iteration_is_clean() {
        let src = "
            struct S { items: HashMap<String, u64> }
            impl S {
                fn snapshot(&self) -> Vec<u64> {
                    let mut v: Vec<u64> = self.items.values().copied().collect();
                    v.sort();
                    v
                }
            }
        ";
        assert!(ctx_findings(src, ITER_RULE).is_empty());
    }

    #[test]
    fn for_over_hash_field_in_ser_fn_is_flagged() {
        let src = "
            struct S { targets: HashMap<String, u64> }
            impl S {
                fn emit(&self) {
                    for (k, v) in &self.targets { go(k, v); }
                }
            }
        ";
        assert_eq!(ctx_findings(src, ITER_RULE).len(), 1);
    }

    #[test]
    fn non_ser_functions_are_not_checked() {
        let src = "
            struct S { items: HashMap<String, u64> }
            impl S {
                fn tally(&self) -> u64 { self.items.values().sum() }
            }
        ";
        assert!(ctx_findings(src, ITER_RULE).is_empty());
    }

    #[test]
    fn wall_clock_and_rng_flag_outside_allowlist() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }";
        assert_eq!(ctx_findings(src, WALL_CLOCK_RULE).len(), 1);
        assert_eq!(ctx_findings(src, RNG_RULE).len(), 1);
    }

    #[test]
    fn wall_clock_allowlist_path_match() {
        let lexed = lex("fn f() { let t = Instant::now(); }");
        let ctx = FileCtx {
            path: "crates/maya-obs/src/span.rs",
            tokens: &lexed.tokens,
            exempt: &[],
        };
        assert!(wall_clock(&ctx, &["crates/maya-obs/".to_string()]).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn helper() { let t = Instant::now(); let r = thread_rng(); x.unwrap(); }
            }
            #[test]
            fn t() { y.unwrap(); }
        ";
        assert!(ctx_findings(src, WALL_CLOCK_RULE).is_empty());
        assert!(ctx_findings(src, RNG_RULE).is_empty());
        let lexed = lex(src);
        let exempt = test_ranges(&lexed.tokens);
        let ctx = FileCtx {
            path: "x.rs",
            tokens: &lexed.tokens,
            exempt: &exempt,
        };
        assert_eq!(panic_counts(&ctx).total(), 0);
    }

    #[test]
    fn panic_counting() {
        let src = "
            fn f(v: &[u8], m: std::collections::HashMap<u8, u8>) {
                v.get(0).unwrap();
                m.get(&1).expect(\"present\");
                let x = v[0];
                let y = v[1..3];
                let t: [u8; 4] = [0; 4];
                let w = vec![1, 2];
                #[derive(Debug)]
                struct Z;
                if bad { panic!(\"no\"); }
                unwrap_or_else(|| 0);
            }
        ";
        let lexed = lex(src);
        let ctx = FileCtx {
            path: "x.rs",
            tokens: &lexed.tokens,
            exempt: &[],
        };
        let c = panic_counts(&ctx);
        assert_eq!(c.unwrap, 1);
        assert_eq!(c.expect, 1);
        assert_eq!(c.panics, 1);
        assert_eq!(
            c.index, 2,
            "v[0] and v[1..3]; not types, not vec!, not #[..]"
        );
    }
}
