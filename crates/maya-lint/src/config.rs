//! `lint-budget.toml`: the committed panic budget and the wall-clock
//! module allowlist.
//!
//! Parsed with a deliberately tiny TOML subset reader (tables, `key =
//! integer`, `key = [ "string", … ]`) — the workspace is registry-free,
//! so no real TOML crate is available, and the budget file is machine-
//! written by `--write-budget` anyway.
//!
//! The budget is a **ratchet**: `--check` fails when any crate exceeds
//! its committed cap, and reports (without failing) when a cap has
//! slack so it can be tightened. Raising a number in this file should
//! only ever happen in the same PR that explains why.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed contents of `lint-budget.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Per-crate panic-site caps, keyed by crate name (`maya-sim`,
    /// `vendor-serde`, `maya-repro` for the root crate).
    pub budgets: BTreeMap<String, u64>,
    /// Path substrings where wall-clock reads are legitimate
    /// (telemetry/timing modules).
    pub wall_clock_allow: Vec<String>,
}

/// A parse failure with its line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in the budget file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-budget.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut table = String::new();
        // Multiline-array accumulation: set once `paths = [` is seen
        // without its closing `]`, cleared at the `]` line.
        let mut in_paths_array = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if in_paths_array {
                if line == "]" {
                    in_paths_array = false;
                    continue;
                }
                let item = line.trim_end_matches(',').trim();
                let s = item
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!("expected a quoted path in the array, got `{item}`"),
                    })?;
                cfg.wall_clock_allow.push(s.to_string());
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                // Not a table header if it's the array opener's own
                // line (`paths = [` was handled below) — headers are
                // bare `[name]`.
                table = name.trim().to_string();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            match table.as_str() {
                "budget" => {
                    let n: u64 = value.parse().map_err(|_| ConfigError {
                        line: lineno,
                        message: format!("budget for `{key}` is not an integer: `{value}`"),
                    })?;
                    cfg.budgets.insert(key, n);
                }
                "wall-clock-allow" if key == "paths" => {
                    if value == "[" {
                        in_paths_array = true;
                    } else {
                        cfg.wall_clock_allow =
                            parse_string_array(value).ok_or_else(|| ConfigError {
                                line: lineno,
                                message: format!("expected a [\"…\", …] array, got `{value}`"),
                            })?;
                    }
                }
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown table `[{other}]` or key `{key}`"),
                    });
                }
            }
        }
        Ok(cfg)
    }

    /// Renders back to the canonical committed form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Panic budget per crate: unwrap + expect + panic-family macros +\n\
             # slice-index sites in non-test code. This file is a ratchet — numbers\n\
             # may only go DOWN. Regenerate with `cargo run -p maya-lint -- --write-budget`.\n\n\
             [budget]\n",
        );
        for (name, cap) in &self.budgets {
            let _ = writeln!(out, "\"{name}\" = {cap}");
        }
        out.push_str(
            "\n# Modules where wall-clock reads (Instant::now/SystemTime) are the\n\
             # point: telemetry, benchmarking, and transport timeouts.\n\n\
             [wall-clock-allow]\npaths = [\n",
        );
        for p in &self.wall_clock_allow {
            let _ = writeln!(out, "    \"{p}\",");
        }
        out.push_str("]\n");
        out
    }
}

fn strip_comment(line: &str) -> &str {
    // Good enough for this file: `#` never appears inside our strings.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(part.strip_prefix('"')?.strip_suffix('"')?.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut cfg = Config::default();
        cfg.budgets.insert("maya-sim".to_string(), 12);
        cfg.budgets.insert("vendor-serde".to_string(), 3);
        cfg.wall_clock_allow.push("crates/maya-obs/".to_string());
        let text = cfg.render();
        let back = Config::parse(&text).expect("canonical form parses");
        assert_eq!(back.budgets, cfg.budgets);
        assert_eq!(back.wall_clock_allow, cfg.wall_clock_allow);
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let text = "
            # header comment
            [budget]
            \"maya-wire\" = 4   # trailing
            [wall-clock-allow]
            paths = [\"a/\", \"b/\"]
        ";
        let cfg = Config::parse(text).expect("parses");
        assert_eq!(cfg.budgets.get("maya-wire"), Some(&4));
        assert_eq!(
            cfg.wall_clock_allow,
            vec!["a/".to_string(), "b/".to_string()]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Config::parse("[budget]\nx = not-a-number").is_err());
        assert!(Config::parse("[mystery]\nx = 1").is_err());
        assert!(Config::parse("[budget]\njust-a-key").is_err());
    }
}
