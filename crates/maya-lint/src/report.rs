//! Rendering: human `file:line rule message` lines, the
//! machine-readable JSON report, and a SARIF 2.1.0 export for code
//! scanning UIs.
//!
//! All three are hand-rolled (the linter is pure std) and
//! deterministic: findings arrive pre-sorted from the engine, budgets
//! and suppression tallies are emitted in sorted order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Finding, PanicCounts, ALL_RULES};

/// One crate's panic tally against its committed cap.
#[derive(Clone, Debug)]
pub struct BudgetLine {
    /// Crate name as keyed in `lint-budget.toml`.
    pub krate: String,
    /// Counted sites.
    pub counts: PanicCounts,
    /// Committed cap, if the crate has one.
    pub cap: Option<u64>,
}

impl BudgetLine {
    /// Over budget (or missing from the budget file entirely).
    pub fn violation(&self) -> bool {
        match self.cap {
            Some(cap) => self.counts.total() > cap,
            None => true,
        }
    }

    /// Unused headroom that could be ratcheted away.
    pub fn slack(&self) -> u64 {
        self.cap
            .map(|c| c.saturating_sub(self.counts.total()))
            .unwrap_or(0)
    }
}

/// A suppressed finding: where, which rule, and the justification.
#[derive(Clone, Debug)]
pub struct Suppressed {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// Rule that would have fired.
    pub rule: &'static str,
    /// The reason given in the `lint:allow` comment.
    pub reason: String,
}

/// Full result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Live findings (sorted by file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned `lint:allow`.
    pub suppressed: Vec<Suppressed>,
    /// Per-crate budget status (sorted by crate).
    pub budgets: Vec<BudgetLine>,
    /// Files scanned.
    pub files: usize,
    /// Total source lines scanned.
    pub lines: u64,
}

impl Report {
    /// Whether `--check` should fail.
    pub fn failed(&self) -> bool {
        !self.findings.is_empty() || self.budgets.iter().any(|b| b.violation())
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{} {} {}", f.file, f.line, f.rule, f.message);
        }
        for b in &self.budgets {
            if b.violation() {
                match b.cap {
                    Some(cap) => {
                        let _ = writeln!(
                            out,
                            "{}: panic-budget exceeded: {} sites > cap {} \
                             (unwrap {}, expect {}, panic {}, index {})",
                            b.krate,
                            b.counts.total(),
                            cap,
                            b.counts.unwrap,
                            b.counts.expect,
                            b.counts.panics,
                            b.counts.index,
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{}: panic-budget missing: {} sites but no cap in lint-budget.toml \
                             (run --write-budget)",
                            b.krate,
                            b.counts.total(),
                        );
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "maya-lint: {} files, {} lines, {} finding(s), {} suppressed, {} budget crate(s)",
            self.files,
            self.lines,
            self.findings.len(),
            self.suppressed.len(),
            self.budgets.len(),
        );
        for b in &self.budgets {
            if !b.violation() && b.slack() > 0 {
                let _ = writeln!(
                    out,
                    "note: {} has budget slack: {} used of cap {} — ratchet it down",
                    b.krate,
                    b.counts.total(),
                    b.cap.unwrap_or(0),
                );
            }
        }
        out
    }

    /// Machine-readable rendering.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message),
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&s.file),
                s.line,
                json_str(s.rule),
                json_str(&s.reason),
            );
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed_by_rule\": {");
        let mut by_rule: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.suppressed {
            *by_rule.entry(s.rule).or_insert(0) += 1;
        }
        for (i, (rule, n)) in by_rule.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}: {n}", json_str(rule));
        }
        out.push_str("},\n  \"budgets\": [");
        for (i, b) in self.budgets.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"crate\": {}, \"total\": {}, \"cap\": {}, \"unwrap\": {}, \
                 \"expect\": {}, \"panic\": {}, \"index\": {}}}",
                json_str(&b.krate),
                b.counts.total(),
                b.cap
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "null".to_string()),
                b.counts.unwrap,
                b.counts.expect,
                b.counts.panics,
                b.counts.index,
            );
        }
        if !self.budgets.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files\": {},\n  \"lines\": {},\n  \"failed\": {}\n}}\n",
            self.files,
            self.lines,
            self.failed(),
        );
        out
    }

    /// SARIF 2.1.0 rendering (one run, every rule declared, budget
    /// violations reported against `lint-budget.toml`).
    pub fn render_sarif(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"runs\": [{\n");
        out.push_str("    \"tool\": {\"driver\": {\"name\": \"maya-lint\", \"rules\": [");
        for (i, rule) in ALL_RULES.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{{\"id\": {}}}", json_str(rule));
        }
        out.push_str("]}},\n");
        out.push_str("    \"results\": [");
        let mut first = true;
        for f in &self.findings {
            let sep = if first { "\n" } else { ",\n" };
            first = false;
            let _ = write!(
                out,
                "{sep}      {}",
                sarif_result(f.rule, &f.message, &f.file, f.line),
            );
        }
        for b in &self.budgets {
            if !b.violation() {
                continue;
            }
            let sep = if first { "\n" } else { ",\n" };
            first = false;
            let message = match b.cap {
                Some(cap) => format!(
                    "{}: panic-budget exceeded: {} sites > cap {}",
                    b.krate,
                    b.counts.total(),
                    cap,
                ),
                None => format!(
                    "{}: panic-budget missing: {} sites but no cap",
                    b.krate,
                    b.counts.total(),
                ),
            };
            let _ = write!(
                out,
                "{sep}      {}",
                sarif_result(crate::rules::PANIC_RULE, &message, "lint-budget.toml", 1),
            );
        }
        if !first {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }]\n}\n");
        out
    }
}

/// One SARIF `result` object.
fn sarif_result(rule: &str, message: &str, file: &str, line: u32) -> String {
    format!(
        "{{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
         \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
         {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
        json_str(rule),
        json_str(message),
        json_str(file),
        line,
    )
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_conditions() {
        let mut r = Report::default();
        assert!(!r.failed());
        r.budgets.push(BudgetLine {
            krate: "maya-x".to_string(),
            counts: PanicCounts {
                unwrap: 3,
                ..PanicCounts::default()
            },
            cap: Some(3),
        });
        assert!(!r.failed(), "at cap is fine");
        r.budgets[0].cap = Some(2);
        assert!(r.failed(), "over cap fails");
        r.budgets[0].cap = None;
        assert!(r.failed(), "missing cap fails");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut r = Report::default();
        r.findings.push(Finding {
            file: "a.rs".to_string(),
            line: 3,
            rule: crate::rules::GUARD_RULE,
            message: "held \"across\"\nblocking".to_string(),
        });
        r.suppressed.push(Suppressed {
            file: "b.rs".to_string(),
            line: 9,
            rule: crate::rules::WALL_CLOCK_RULE,
            reason: "telemetry".to_string(),
        });
        let json = r.render_json();
        assert!(json.contains("\\\"across\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"failed\": true"));
        assert!(json.contains("\"suppressed_by_rule\": {\"wall-clock-in-output\": 1}"));
    }

    #[test]
    fn sarif_lists_rules_findings_and_budget_violations() {
        let mut r = Report::default();
        r.findings.push(Finding {
            file: "crates/maya-x/src/lib.rs".to_string(),
            line: 12,
            rule: crate::rules::LOCK_ORDER_RULE,
            message: "cycle".to_string(),
        });
        r.budgets.push(BudgetLine {
            krate: "maya-x".to_string(),
            counts: PanicCounts {
                unwrap: 5,
                ..PanicCounts::default()
            },
            cap: Some(2),
        });
        let sarif = r.render_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        // Every rule is declared in the driver, even rules with no hits.
        for rule in ALL_RULES {
            assert!(sarif.contains(&format!("{{\"id\": \"{rule}\"}}")), "{rule}");
        }
        assert!(sarif.contains("\"ruleId\": \"lock-order-cycle\""));
        assert!(sarif.contains("\"startLine\": 12"));
        // The budget overflow is a result anchored at the budget file.
        assert!(sarif.contains("\"uri\": \"lint-budget.toml\""));
        assert!(sarif.contains("exceeded: 5 sites > cap 2"));
    }

    #[test]
    fn sarif_with_no_results_is_still_a_run() {
        let sarif = Report::default().render_sarif();
        assert!(sarif.contains("\"results\": []"));
        assert!(sarif.contains("\"name\": \"maya-lint\""));
    }
}
