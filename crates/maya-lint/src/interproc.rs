//! Phase-2 interprocedural rules over the call graph.
//!
//! Two analyses share one bottom-up facts pass:
//!
//! - **blocks\*** — a function blocks if its body contains a direct
//!   blocking call (same list as the per-file guard rule) or it calls
//!   a function that blocks, at any depth. Guard-across-blocking-call
//!   v2 then flags a call made while a guard is live whenever any
//!   resolved target blocks, closing the per-file rule's blind spot
//!   around helper functions.
//! - **acquires\*** — the set of lock keys (`Struct.field` for lock
//!   fields, `param.<name>` for lock-typed parameters) a function may
//!   acquire during execution, directly or through callees. Holding
//!   key `A` while reaching an acquisition of key `B` adds the edge
//!   `A → B` to the workspace lock-order graph; any strongly
//!   connected component (including self-loops — std mutexes are not
//!   reentrant) is a deadlock-capable cycle and becomes a
//!   **lock-order-cycle** finding with one witness per edge.
//!
//! Both traversals are cycle-safe (in-progress functions contribute
//! nothing) and depth-capped; unresolvable calls are opaque. As with
//! the per-file rules, every approximation leans toward false
//! negatives — the tree stays green unless a provable chain exists.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, CallSite};
use crate::items::{FnItem, ItemIndex, LockKind, SourceUnit};
use crate::lexer::{TokKind, Token};
use crate::rules::{
    self, blocking_call_at, lock_method_at, parse_guard_for, parse_guard_let, Finding,
};

/// Maximum call-chain depth either traversal follows.
const DEPTH_CAP: usize = 32;

/// Entry point: all interprocedural findings for the workspace.
pub fn check(units: &[SourceUnit], index: &ItemIndex, graph: &CallGraph) -> Vec<Finding> {
    let facts = Facts::compute(units, index, graph);
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for (fi, f) in index.fns.iter().enumerate() {
        if f.is_test || f.body.1 <= f.body.0 {
            continue;
        }
        scan_fn(
            units,
            index,
            graph,
            &facts,
            fi,
            f,
            &mut findings,
            &mut edges,
        );
    }
    findings.extend(cycle_findings(&edges));
    findings
}

/// One lock-order edge's evidence.
#[derive(Clone, Debug)]
struct Witness {
    file: String,
    line: u32,
    text: String,
}

/// Bottom-up per-function facts.
struct Facts {
    /// `blocks[f]`: a chain description if `f` can block.
    blocks: Vec<Option<String>>,
    /// `acquires[f]`: lock key → witness text for every key `f` may
    /// acquire during execution (directly or via callees).
    acquires: Vec<BTreeMap<String, String>>,
}

impl Facts {
    fn compute(units: &[SourceUnit], index: &ItemIndex, graph: &CallGraph) -> Facts {
        let n = index.fns.len();
        let mut facts = Facts {
            blocks: vec![None; n],
            acquires: vec![BTreeMap::new(); n],
        };
        let mut block_state = vec![State::Todo; n];
        let mut acq_state = vec![State::Todo; n];
        for fi in 0..n {
            blocks_dfs(
                fi,
                0,
                units,
                index,
                graph,
                &mut block_state,
                &mut facts.blocks,
            );
            acquires_dfs(
                fi,
                0,
                units,
                index,
                graph,
                &mut acq_state,
                &mut facts.acquires,
            );
        }
        facts
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Todo,
    InProgress,
    Done,
}

/// Whether `f` contains a direct blocking call, with a description.
fn direct_blocking(units: &[SourceUnit], f: &FnItem) -> Option<String> {
    let unit = units.get(f.file)?;
    let (open, end) = f.body;
    let mut i = open + 1;
    while i + 1 < end {
        if let Some((name, _)) = blocking_call_at(&unit.tokens, i) {
            let line = unit.tokens.get(i).map(|t| t.line).unwrap_or(0);
            return Some(format!("`.{name}()` ({}:{line})", unit.path));
        }
        i += 1;
    }
    None
}

fn blocks_dfs(
    fi: usize,
    depth: usize,
    units: &[SourceUnit],
    index: &ItemIndex,
    graph: &CallGraph,
    state: &mut Vec<State>,
    blocks: &mut Vec<Option<String>>,
) -> Option<String> {
    match state.get(fi).copied() {
        Some(State::Done) => return blocks.get(fi).cloned().flatten(),
        Some(State::Todo) if depth <= DEPTH_CAP => {}
        // In-progress (cycle) or too deep: contribute nothing.
        _ => return None,
    }
    if let Some(s) = state.get_mut(fi) {
        *s = State::InProgress;
    }
    let mut result = index.fns.get(fi).and_then(|f| direct_blocking(units, f));
    if result.is_none() {
        'sites: for site in graph.calls.get(fi).into_iter().flatten() {
            for &target in &site.targets {
                if let Some(chain) =
                    blocks_dfs(target, depth + 1, units, index, graph, state, blocks)
                {
                    let file = index
                        .fns
                        .get(fi)
                        .and_then(|f| units.get(f.file))
                        .map(|u| u.path.as_str())
                        .unwrap_or("?");
                    result = Some(format!("`{}` ({file}:{}) → {chain}", site.name, site.line));
                    break 'sites;
                }
            }
        }
    }
    if let Some(slot) = blocks.get_mut(fi) {
        *slot = result.clone();
    }
    if let Some(s) = state.get_mut(fi) {
        *s = State::Done;
    }
    result
}

fn acquires_dfs(
    fi: usize,
    depth: usize,
    units: &[SourceUnit],
    index: &ItemIndex,
    graph: &CallGraph,
    state: &mut Vec<State>,
    acquires: &mut Vec<BTreeMap<String, String>>,
) -> BTreeMap<String, String> {
    match state.get(fi).copied() {
        Some(State::Done) => return acquires.get(fi).cloned().unwrap_or_default(),
        Some(State::Todo) if depth <= DEPTH_CAP => {}
        _ => return BTreeMap::new(),
    }
    if let Some(s) = state.get_mut(fi) {
        *s = State::InProgress;
    }
    let mut keys: BTreeMap<String, String> = BTreeMap::new();
    if let Some(f) = index.fns.get(fi) {
        if let Some(unit) = units.get(f.file) {
            let (open, end) = f.body;
            let mut i = open.saturating_add(1);
            while i + 1 < end {
                if lock_method_at(&unit.tokens, i).is_some() {
                    if let Some(key) = key_for_chain(index, f, &unit.tokens, i) {
                        let line = unit.tokens.get(i).map(|t| t.line).unwrap_or(0);
                        keys.entry(key)
                            .or_insert_with(|| format!("{}:{line}", unit.path));
                    }
                }
                i += 1;
            }
        }
        let path = units
            .get(f.file)
            .map(|u| u.path.clone())
            .unwrap_or_default();
        for site in graph.calls.get(fi).into_iter().flatten() {
            for &target in &site.targets {
                for (k, w) in acquires_dfs(target, depth + 1, units, index, graph, state, acquires)
                {
                    keys.entry(k).or_insert_with(|| {
                        format!("{path}:{} via `{}`: {w}", site.line, site.name)
                    });
                }
            }
        }
    }
    if let Some(slot) = acquires.get_mut(fi) {
        *slot = keys.clone();
    }
    if let Some(s) = state.get_mut(fi) {
        *s = State::Done;
    }
    keys
}

/// Attributes the lock acquisition whose `.` sits at `dot` to a lock
/// key: `Struct.field` for `self.field.lock()` / `x.field.lock()`
/// (field resolved on the enclosing impl, else unique across the
/// workspace), `param.<name>` for lock-typed parameters. `None` when
/// the receiver cannot be pinned down (including `self.lock()`
/// helpers — those resolve through the call graph instead).
fn key_for_chain(index: &ItemIndex, f: &FnItem, tokens: &[Token], dot: usize) -> Option<String> {
    let r_idx = dot.wrapping_sub(1);
    let r = tokens.get(r_idx).filter(|t| t.kind == TokKind::Ident)?;
    if r.text == "self" {
        return None;
    }
    let is_self_field = tokens
        .get(r_idx.wrapping_sub(1))
        .is_some_and(|p| p.is_punct('.'))
        && tokens
            .get(r_idx.wrapping_sub(2))
            .is_some_and(|p| p.is_ident("self"));
    if is_self_field {
        if let Some(ty) = f.impl_type.as_deref() {
            if let Some(fld) = index.field_of(ty, &r.text) {
                return match fld.lock {
                    Some(LockKind::Mutex | LockKind::RwLock) => {
                        Some(format!("{}.{}", fld.owner, fld.name))
                    }
                    _ => None,
                };
            }
        }
    }
    if f.lock_params.iter().any(|p| p == &r.text) {
        return Some(format!("param.{}", r.text));
    }
    index
        .unique_lock_field(&r.text)
        .map(|fld| format!("{}.{}", fld.owner, fld.name))
}

/// A live guard in the per-function scan.
struct IGuard {
    name: Option<String>,
    keys: Vec<String>,
    kind: &'static str,
    line: u32,
}

/// Index just past the statement starting at `i` (its depth-0 `;`),
/// clamped to `end`. Statements ended by a closing brace yield that
/// position.
fn stmt_end(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        let Some(t) = tokens.get(j) else { break };
        if depth == 0 && t.is_punct(';') {
            return j + 1;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
        j += 1;
    }
    end
}

#[allow(clippy::too_many_arguments)]
fn scan_fn(
    units: &[SourceUnit],
    index: &ItemIndex,
    graph: &CallGraph,
    facts: &Facts,
    fi: usize,
    f: &FnItem,
    findings: &mut Vec<Finding>,
    edges: &mut BTreeMap<(String, String), Witness>,
) {
    let Some(unit) = units.get(f.file) else {
        return;
    };
    let tokens = &unit.tokens;
    let (open, end) = f.body;
    let sites = graph.calls.get(fi).map(Vec::as_slice).unwrap_or(&[]);
    let mut site_cursor = 0usize;
    let mut scopes: Vec<Vec<IGuard>> = vec![Vec::new()];
    let mut i = open + 1;
    while i + 1 < end {
        let Some(t) = tokens.get(i) else { break };
        // Keep the call-site cursor in step with the walk.
        while sites.get(site_cursor).is_some_and(|s| s.tok < i) {
            site_cursor += 1;
        }
        if t.is_punct('{') {
            scopes.push(Vec::new());
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if scopes.len() > 1 {
                scopes.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("drop")
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct('('))
            && matches!(tokens.get(i + 3), Some(t) if t.is_punct(')'))
        {
            if let Some(arg) = tokens.get(i + 2).filter(|a| a.kind == TokKind::Ident) {
                for frame in scopes.iter_mut() {
                    frame.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                }
            }
            i += 4;
            continue;
        }
        if t.is_ident("let") {
            if let Some((guard, next)) = guard_binding(units, index, facts, f, sites, i, end) {
                // The binding's own acquisition orders after anything
                // already held.
                record_edges(unit, f, guard.line, &guard.keys, &scopes, edges);
                if let Some(frame) = scopes.last_mut() {
                    frame.push(guard);
                }
                i = next;
                continue;
            }
        }
        if t.is_ident("for") {
            if let Some((kind, line, body_open)) = parse_guard_for(tokens, i) {
                let keys = tokens
                    .get(i..body_open)
                    .unwrap_or(&[])
                    .iter()
                    .enumerate()
                    .find_map(|(off, _)| {
                        lock_method_at(tokens, i + off)
                            .and_then(|_| key_for_chain(index, f, tokens, i + off))
                    })
                    .into_iter()
                    .collect::<Vec<_>>();
                record_edges(unit, f, line, &keys, &scopes, edges);
                scopes.push(vec![IGuard {
                    name: None,
                    keys,
                    kind,
                    line,
                }]);
                i = body_open + 1;
                continue;
            }
        }
        // Direct acquisition in statement position (temporaries and
        // re-locks): edges from everything currently held.
        if lock_method_at(tokens, i).is_some() {
            if let Some(key) = key_for_chain(index, f, tokens, i) {
                let line = tokens.get(i).map(|t| t.line).unwrap_or(0);
                record_edges(unit, f, line, &[key], &scopes, edges);
            }
        }
        // A resolved call while guards are live: transitive blocking
        // and transitive acquisitions.
        if let Some(site) = sites.get(site_cursor).filter(|s| s.tok == i) {
            let live: Vec<&IGuard> = scopes.iter().flatten().collect();
            if !live.is_empty() {
                process_call_site(facts, f, unit, site, &live, findings, edges);
            }
            i += 1;
            continue;
        }
        i += 1;
    }
}

/// Recognizes a guard-producing `let` at `i`: either the per-file
/// rule's `.lock()/.read()/.write()` tail, or a call to a function
/// whose return type is a guard. Returns the guard and the index past
/// the statement.
#[allow(clippy::too_many_arguments)]
fn guard_binding(
    units: &[SourceUnit],
    index: &ItemIndex,
    facts: &Facts,
    f: &FnItem,
    sites: &[CallSite],
    i: usize,
    end: usize,
) -> Option<(IGuard, usize)> {
    let unit = units.get(f.file)?;
    let tokens = &unit.tokens;
    if let Some(g) = parse_guard_let(tokens, i) {
        // Attribute the key: receiver chain first, then (for
        // `self.lock()`-style helpers) the resolved call target.
        let mut keys: Vec<String> = key_for_chain(index, f, tokens, g.dot).into_iter().collect();
        if keys.is_empty() {
            let lock_ident = g.dot + 1;
            if let Some(site) = sites.iter().find(|s| s.tok == lock_ident) {
                keys = helper_guard_keys(index, facts, site);
            }
        }
        return Some((
            IGuard {
                name: Some(g.name),
                keys,
                kind: g.kind,
                line: g.line,
            },
            g.next,
        ));
    }
    // `let g = self.helper();` where helper returns a guard type.
    let send = stmt_end(tokens, i, end);
    let mut name_idx = i + 1;
    if tokens.get(name_idx).is_some_and(|t| t.is_ident("mut")) {
        name_idx += 1;
    }
    let name = tokens
        .get(name_idx)
        .filter(|t| t.kind == TokKind::Ident)?
        .text
        .clone();
    let line = tokens.get(name_idx).map(|t| t.line).unwrap_or(0);
    let in_stmt: Vec<&CallSite> = sites.iter().filter(|s| s.tok > i && s.tok < send).collect();
    let last_resolved = in_stmt.iter().rposition(|s| !s.targets.is_empty())?;
    let trailing_ok = in_stmt
        .get(last_resolved + 1..)
        .unwrap_or(&[])
        .iter()
        .all(|s| matches!(s.name.as_str(), "unwrap" | "expect" | "unwrap_or_else"));
    let site = in_stmt.get(last_resolved)?;
    let returns_guard = site
        .targets
        .iter()
        .any(|&t| index.fns.get(t).is_some_and(|f| f.returns_guard));
    if !trailing_ok || !returns_guard {
        return None;
    }
    let keys = helper_guard_keys(index, facts, site);
    Some((
        IGuard {
            name: Some(name),
            keys,
            kind: "lock",
            line,
        },
        send,
    ))
}

/// Lock keys held by the caller after a guard-returning call: the
/// union of the guard-returning targets' transitive acquisitions.
fn helper_guard_keys(index: &ItemIndex, facts: &Facts, site: &CallSite) -> Vec<String> {
    let mut keys = BTreeSet::new();
    for &t in &site.targets {
        if index.fns.get(t).is_some_and(|f| f.returns_guard) {
            keys.extend(
                facts
                    .acquires
                    .get(t)
                    .into_iter()
                    .flatten()
                    .map(|(k, _)| k.clone()),
            );
        }
    }
    keys.into_iter().collect()
}

/// Adds `held → acquired` edges for every key currently held.
fn record_edges(
    unit: &SourceUnit,
    f: &FnItem,
    line: u32,
    acquired: &[String],
    scopes: &[Vec<IGuard>],
    edges: &mut BTreeMap<(String, String), Witness>,
) {
    for held in scopes.iter().flatten().flat_map(|g| g.keys.iter()) {
        for key in acquired {
            edges
                .entry((held.clone(), key.clone()))
                .or_insert_with(|| Witness {
                    file: unit.path.clone(),
                    line,
                    text: format!("{}:{line} in `{}`", unit.path, f.name),
                });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn process_call_site(
    facts: &Facts,
    f: &FnItem,
    unit: &SourceUnit,
    site: &CallSite,
    live: &[&IGuard],
    findings: &mut Vec<Finding>,
    edges: &mut BTreeMap<(String, String), Witness>,
) {
    let tokens = &unit.tokens;
    // Direct blocking calls are the per-file rule's territory; the
    // interprocedural rule only adds calls that block further down.
    let directly_blocking = blocking_call_at(tokens, site.tok.wrapping_sub(1)).is_some()
        || blocking_call_at(tokens, site.tok).is_some();
    // Transitive acquisitions: order edges regardless of the condvar
    // arg idiom (passing a guard into a callee does not stop the
    // callee from acquiring more locks underneath it).
    let mut acquired: BTreeSet<&str> = BTreeSet::new();
    for &target in &site.targets {
        acquired.extend(
            facts
                .acquires
                .get(target)
                .into_iter()
                .flatten()
                .map(|(k, _)| k.as_str()),
        );
    }
    for g in live {
        // A call on the guard itself targets the guarded data.
        if g.name.is_some() && site.receiver.as_deref() == g.name.as_deref() {
            continue;
        }
        let acquired_vec: Vec<String> = acquired.iter().map(|k| k.to_string()).collect();
        for held in &g.keys {
            for key in &acquired_vec {
                edges
                    .entry((held.clone(), key.clone()))
                    .or_insert_with(|| Witness {
                        file: unit.path.clone(),
                        line: site.line,
                        text: format!(
                            "{}:{} in `{}` via `{}`",
                            unit.path, site.line, f.name, site.name
                        ),
                    });
            }
        }
        if directly_blocking {
            continue;
        }
        // Guard consumed/passed by the call (condvar idiom and
        // helpers that take the guard) — the callee owns it now.
        let in_args = g.name.as_deref().is_some_and(|n| {
            tokens
                .get(site.args.0..site.args.1)
                .unwrap_or(&[])
                .iter()
                .any(|t| t.is_ident(n))
        });
        if in_args {
            continue;
        }
        let chain = site
            .targets
            .iter()
            .find_map(|&t| facts.blocks.get(t).cloned().flatten());
        if let Some(chain) = chain {
            let held = match g.name.as_deref() {
                Some(n) => format!("guard `{n}`"),
                None => "a temporary guard".to_string(),
            };
            findings.push(Finding {
                file: unit.path.clone(),
                line: site.line,
                rule: rules::GUARD_RULE,
                message: format!(
                    "{held} (.{}() at line {}) is held across `{}()`, which blocks: {chain}",
                    g.kind, g.line, site.name
                ),
            });
        }
    }
}

/// Finds deadlock-capable cycles in the lock-order edge set: every
/// strongly connected component with more than one node, plus
/// self-loops (a re-acquisition of a held, non-reentrant lock).
fn cycle_findings(edges: &BTreeMap<(String, String), Witness>) -> Vec<Finding> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a.as_str());
        nodes.insert(b.as_str());
    }
    let reach = |from: &str, fwd: bool| -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            for ((a, b), _) in edges.iter() {
                let (src, dst) = if fwd { (a, b) } else { (b, a) };
                if src == u && seen.insert(dst.as_str()) {
                    stack.push(dst.as_str());
                }
            }
        }
        seen
    };
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    let mut findings = Vec::new();
    for &u in &nodes {
        if assigned.contains(u) {
            continue;
        }
        let fwd = reach(u, true);
        let bwd = reach(u, false);
        let mut scc: BTreeSet<&str> = fwd.intersection(&bwd).copied().collect();
        scc.insert(u);
        let self_loop = edges.contains_key(&(u.to_string(), u.to_string()));
        let cyclic = scc.len() > 1 || (self_loop && fwd.contains(u));
        if scc.len() > 1 || self_loop {
            assigned.extend(scc.iter().copied());
        } else {
            assigned.insert(u);
        }
        if !cyclic && !self_loop {
            continue;
        }
        // Internal edges of the component, with witnesses.
        let internal: Vec<(&(String, String), &Witness)> = edges
            .iter()
            .filter(|((a, b), _)| scc.contains(a.as_str()) && scc.contains(b.as_str()))
            .collect();
        let Some((_, first)) = internal.first() else {
            continue;
        };
        let keys: Vec<&str> = scc.iter().copied().collect();
        let detail: Vec<String> = internal
            .iter()
            .map(|((a, b), w)| format!("{a} → {b} [{}]", w.text))
            .collect();
        findings.push(Finding {
            file: first.file.clone(),
            line: first.line,
            rule: rules::LOCK_ORDER_RULE,
            message: format!(
                "deadlock-capable lock-order cycle over {{{}}}: {}",
                keys.join(", "),
                detail.join("; ")
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::ItemIndex;

    fn check_src(files: &[(&str, &str)]) -> Vec<Finding> {
        let units: Vec<SourceUnit> = files.iter().map(|(p, s)| SourceUnit::parse(p, s)).collect();
        let index = ItemIndex::build(&units);
        let graph = CallGraph::build(&units, &index);
        check(&units, &index, &graph)
    }

    #[test]
    fn two_function_lock_cycle_is_flagged() {
        let findings = check_src(&[(
            "crates/demo/src/lib.rs",
            "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn ab(&self) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                }
                fn ba(&self) {
                    let gb = self.b.lock().unwrap();
                    let ga = self.a.lock().unwrap();
                }
            }
            ",
        )]);
        let cycles: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == rules::LOCK_ORDER_RULE)
            .collect();
        assert_eq!(cycles.len(), 1, "{findings:?}");
        assert!(cycles
            .first()
            .is_some_and(|f| f.message.contains("S.a") && f.message.contains("S.b")));
    }

    #[test]
    fn one_directional_order_is_clean() {
        let findings = check_src(&[(
            "crates/demo/src/lib.rs",
            "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn ab(&self) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                }
                fn also_ab(&self) {
                    let ga = self.a.lock().unwrap();
                    self.grab_b();
                }
                fn grab_b(&self) {
                    let gb = self.b.lock().unwrap();
                }
            }
            ",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn transitive_blocking_through_a_helper_is_flagged() {
        let findings = check_src(&[(
            "crates/demo/src/lib.rs",
            "
            struct S { m: Mutex<u32>, rx: Receiver<u32> }
            impl S {
                fn outer(&self) {
                    let g = self.m.lock().unwrap();
                    self.helper();
                }
                fn helper(&self) {
                    let v = self.rx.recv();
                }
            }
            ",
        )]);
        let guards: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == rules::GUARD_RULE)
            .collect();
        assert_eq!(guards.len(), 1, "{findings:?}");
        assert!(guards.first().is_some_and(|f| f.message.contains("helper")));
    }

    #[test]
    fn guard_passed_into_the_callee_is_exempt() {
        // The condvar-consuming idiom, one level out: the helper gets
        // the guard, so holding it across the call is the point.
        let findings = check_src(&[(
            "crates/demo/src/lib.rs",
            "
            struct S { m: Mutex<u32>, c: Condvar }
            impl S {
                fn outer(&self) {
                    let mut g = self.m.lock().unwrap();
                    g = self.wait_ready(g);
                }
                fn wait_ready(&self, g: MutexGuard<u32>) -> MutexGuard<u32> {
                    self.c.wait(g).unwrap()
                }
            }
            ",
        )]);
        assert!(
            findings.iter().all(|f| f.rule != rules::GUARD_RULE),
            "{findings:?}"
        );
    }

    #[test]
    fn helper_returning_guard_carries_its_key() {
        // `self.lock()` helper: the caller holds `state`; a second
        // helper acquiring `aux` the other way closes the cycle.
        let findings = check_src(&[(
            "crates/demo/src/lib.rs",
            "
            struct Q { state: Mutex<u32>, aux: Mutex<u32> }
            impl Q {
                fn lock(&self) -> MutexGuard<u32> {
                    self.state.lock().unwrap()
                }
                fn forward(&self) {
                    let s = self.lock();
                    let a = self.aux.lock().unwrap();
                }
                fn backward(&self) {
                    let a = self.aux.lock().unwrap();
                    let s = self.lock();
                }
            }
            ",
        )]);
        let cycles: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == rules::LOCK_ORDER_RULE)
            .collect();
        assert_eq!(cycles.len(), 1, "{findings:?}");
        assert!(cycles
            .first()
            .is_some_and(|f| f.message.contains("Q.state") && f.message.contains("Q.aux")));
    }

    #[test]
    fn reacquiring_a_held_lock_is_a_self_loop() {
        let findings = check_src(&[(
            "crates/demo/src/lib.rs",
            "
            struct S { m: Mutex<u32> }
            impl S {
                fn outer(&self) {
                    let g = self.m.lock().unwrap();
                    self.inner();
                }
                fn inner(&self) {
                    let g = self.m.lock().unwrap();
                }
            }
            ",
        )]);
        let cycles: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == rules::LOCK_ORDER_RULE)
            .collect();
        assert_eq!(cycles.len(), 1, "{findings:?}");
    }

    #[test]
    fn cross_file_cycle_resolves_through_the_call_graph() {
        let findings = check_src(&[
            (
                "crates/alpha/src/lib.rs",
                "
                pub struct Alpha { a: Mutex<u32> }
                impl Alpha {
                    pub fn with_a_then_b(&self, beta: &Beta) {
                        let g = self.a.lock().unwrap();
                        grab_beta(beta);
                    }
                }
                pub fn grab_beta(beta: &Beta) { beta.take_b(); }
                ",
            ),
            (
                "crates/beta/src/lib.rs",
                "
                pub struct Beta { b: Mutex<u32> }
                impl Beta {
                    pub fn take_b(&self) {
                        let g = self.b.lock().unwrap();
                    }
                    pub fn with_b_then_a(&self, alpha: &Alpha) {
                        let g = self.b.lock().unwrap();
                        alpha.reach_a();
                    }
                }
                impl Alpha {
                    pub fn reach_a(&self) {
                        let g = self.a.lock().unwrap();
                    }
                }
                ",
            ),
        ]);
        let cycles: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == rules::LOCK_ORDER_RULE)
            .collect();
        assert_eq!(cycles.len(), 1, "{findings:?}");
        assert!(cycles
            .first()
            .is_some_and(|f| f.message.contains("Alpha.a") && f.message.contains("Beta.b")));
    }
}
