//! A small comment- and string-aware Rust token scanner.
//!
//! This is deliberately *not* a parser: the rules in [`crate::rules`]
//! work on flat token sequences plus brace depth, which is enough to
//! express every invariant the workspace enforces (guard scopes,
//! iteration sites, call patterns) without a grammar. The scanner's
//! job is the part naive `grep` gets wrong: skipping the inside of
//! string/char literals and comments, handling raw strings and nested
//! block comments, telling lifetimes from char literals, and keeping
//! accurate line numbers for every token.
//!
//! Suppression comments are recognized here (they live in trivia the
//! rules never see): `// lint:allow(<rule>): <reason>` — the reason is
//! mandatory, and a suppression without one is reported as a finding
//! by the engine rather than silently honored.

/// What a token is. The scanner keeps literal *content* for strings
/// and numbers (the codec-drift rule compares wire tags and version
/// literals) but drops it for chars and lifetimes — no rule looks
/// inside those.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `fn`, `lock`, ...).
    Ident,
    /// One punctuation character (`.`, `(`, `{`, `!`, ...). Multi-char
    /// operators arrive as consecutive single-char tokens.
    Punct,
    /// String literal (regular, raw, byte or byte-raw); `text` holds
    /// the raw content between the quotes, escapes unprocessed.
    Str,
    /// Char or byte literal, content dropped.
    Char,
    /// Numeric literal; `text` holds the raw digits/suffix.
    Num,
    /// A lifetime (`'a`), name dropped.
    Lifetime,
}

/// One scanned token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token's kind.
    pub kind: TokKind,
    /// The token text: the identifier itself, the punctuation
    /// character, string/number content, or empty for chars and
    /// lifetimes.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One parsed `lint:allow` suppression comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line the comment sits on. The suppression covers this
    /// line and the next (so both trailing and preceding-line comment
    /// styles work).
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The mandatory human reason after the colon.
    pub reason: String,
}

/// The scanner's output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, trivia removed.
    pub tokens: Vec<Token>,
    /// Well-formed suppression comments.
    pub allows: Vec<Allow>,
    /// Lines carrying a `lint:allow` marker that failed to parse
    /// (missing rule or missing reason), with a description.
    pub bad_allows: Vec<(u32, String)>,
    /// Total lines in the file.
    pub lines: u32,
}

/// Scans `source` into tokens and suppression comments.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run(source)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text: text.to_string(),
            line,
        });
    }

    fn run(mut self, source: &str) -> Lexed {
        while self.pos < self.src.len() {
            let line = self.line;
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => {
                    if let Some(text) = self.raw_string_at(1) {
                        self.push(TokKind::Str, &text, line);
                    } else {
                        self.ident();
                    }
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.string();
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump();
                    self.char_lit();
                }
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                    if let Some(text) = self.raw_string_at(2) {
                        self.push(TokKind::Str, &text, line);
                    } else {
                        self.ident();
                    }
                }
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(),
                _ => {
                    self.bump();
                    // Multi-byte UTF-8 only occurs inside comments,
                    // strings and doc text in this workspace; stray
                    // non-ASCII is skipped, ASCII punctuation kept.
                    if b.is_ascii() {
                        let c = b as char;
                        self.push(TokKind::Punct, c.encode_utf8(&mut [0u8; 4]), line);
                    }
                }
            }
        }
        self.out.lines = self.line;
        let _ = source;
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        // Suppressions live in plain `//` comments only. Doc comments
        // (`///`, `//!`) are prose — they may *mention* the allow
        // syntax (this file does) without invoking it.
        let is_doc = text.starts_with("///") || text.starts_with("//!");
        if !is_doc {
            if let Some(at) = text.find("lint:allow") {
                self.parse_allow(&text[at..], line);
            }
        }
    }

    /// Parses `lint:allow(<rule>): <reason>` starting at the marker.
    fn parse_allow(&mut self, text: &str, line: u32) {
        let rest = &text["lint:allow".len()..];
        let Some(open) = rest.find('(') else {
            self.out
                .bad_allows
                .push((line, "lint:allow needs a (rule) argument".to_string()));
            return;
        };
        let Some(close) = rest.find(')') else {
            self.out
                .bad_allows
                .push((line, "unclosed lint:allow(rule)".to_string()));
            return;
        };
        if close < open {
            self.out
                .bad_allows
                .push((line, "malformed lint:allow(rule)".to_string()));
            return;
        }
        let rule = rest[open + 1..close].trim().to_string();
        if rule.is_empty() {
            self.out
                .bad_allows
                .push((line, "empty rule in lint:allow()".to_string()));
            return;
        }
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            self.out.bad_allows.push((
                line,
                format!("lint:allow({rule}) without a reason — append `: <why>`"),
            ));
            return;
        }
        self.out.allows.push(Allow {
            line,
            rule,
            reason: reason.to_string(),
        });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        let mut end = self.src.len();
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => {
                    end = self.pos - 1;
                    break;
                }
                _ => {}
            }
        }
        let text = self.text_between(start, end);
        self.push(TokKind::Str, &text, line);
    }

    /// Source text in `start..end` as a string, empty when the range
    /// is out of bounds or not UTF-8.
    fn text_between(&self, start: usize, end: usize) -> String {
        self.src
            .get(start..end)
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .unwrap_or_default()
    }

    /// Tries to consume a raw string whose `r` sits at `self.pos` and
    /// whose hashes/quote start `offset` bytes later. Returns the
    /// content (consuming nothing on `None`) — `None` means it is not
    /// actually a raw string, e.g. the identifier `r#loop` (a raw
    /// identifier) or plain `r#` usage.
    fn raw_string_at(&mut self, offset: usize) -> Option<String> {
        let mut hashes = 0usize;
        while self.peek(offset + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(offset + hashes) != b'"' {
            return None;
        }
        for _ in 0..offset + hashes + 1 {
            self.bump();
        }
        let start = self.pos;
        // Scan for `"` followed by `hashes` hashes. An unterminated
        // raw string ends at EOF.
        let mut end = self.src.len();
        while self.pos < self.src.len() {
            if self.bump() == b'"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == b'#' {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    end = self.pos - 1 - hashes;
                    break;
                }
            }
        }
        Some(self.text_between(start, end))
    }

    fn char_lit(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, "", line);
    }

    /// A `'` is a lifetime when followed by an identifier that is not
    /// itself closed by another `'` (`'a` vs `'a'`).
    fn quote(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let ident_start = next == b'_' || next.is_ascii_alphabetic();
        if ident_start {
            // Find the end of the would-be lifetime name.
            let mut n = 2usize;
            while {
                let b = self.peek(n);
                b == b'_' || b.is_ascii_alphanumeric()
            } {
                n += 1;
            }
            if self.peek(n) != b'\'' {
                // A lifetime (or a label): consume quote + name.
                for _ in 0..n {
                    self.bump();
                }
                self.push(TokKind::Lifetime, "", line);
                return;
            }
        }
        self.char_lit();
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump();
        loop {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                // Decimal point, not a method call on a literal.
                self.bump();
            } else {
                break;
            }
        }
        let text = self.text_between(start, self.pos);
        self.push(TokKind::Num, &text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while {
            let b = self.peek(0);
            b == b'_' || b.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.out.tokens.push(Token {
            kind: TokKind::Ident,
            text,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap in /* a nested */ block */
            let s = "Instant::now() .lock() .recv()";
            let r = r#"thread_rng() "quoted" inside"#;
            let c = '\'';
            let real = lock;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"lock".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"recv".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> MutexGuard<'q, T> { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 3, "'a twice plus 'q");
        assert_eq!(chars, 1, "'x' once");
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc").tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_comments_parse() {
        let lexed = lex(
            "x(); // lint:allow(wall-clock-in-output): telemetry timestamps\n\
             y(); // lint:allow(panic-budget)\n\
             z(); // lint:allow(): no rule\n",
        );
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "wall-clock-in-output");
        assert_eq!(lexed.allows[0].reason, "telemetry timestamps");
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.bad_allows.len(), 2, "missing reason + empty rule");
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = lex("1.0f64; x.lock(); 2.min(3)").tokens;
        let ids: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["x", "lock", "min"]);
    }
}
