//! Conservative name-resolved call graph over the phase-1 item index.
//!
//! Resolution is deliberately narrow — an edge only exists when the
//! token shape pins the target down:
//!
//! - `self.m(...)` inside `impl T` → methods `m` of `T`;
//! - `self.field.m(...)` → methods `m` of any type named in `field`'s
//!   declared type (so `self.queue.pop()` resolves through an
//!   `Arc<AdmissionQueue>` field);
//! - `Type::m(...)` → methods `m` of `Type`, falling back to free
//!   functions `m` for `module::m(...)` paths;
//! - bare `m(...)` → free functions named `m`;
//! - `other.m(...)` with an unknown receiver → the single workspace
//!   method named `m` when exactly one exists, *unless* `m` is a
//!   well-known std method name (the [`STD_METHODS`] deny list);
//!   ambiguous names and std names resolve to nothing.
//!
//! Unresolvable calls get an empty target list: the interprocedural
//! rules then treat them as opaque, trading false negatives for the
//! absence of made-up edges.

use crate::items::{FnItem, ItemIndex, SourceUnit};
use crate::lexer::{TokKind, Token};
use crate::rules::match_delim;

/// Method names assumed to belong to std types when the receiver is
/// unknown. Without this, `vec.pop()` would resolve to any workspace
/// method named `pop` and manufacture call edges that do not exist.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_sub",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "field",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "pow",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "remove",
    "replace",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "splitn",
    "sqrt",
    "starts_with",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_lock",
    "try_recv",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "wait",
    "windows",
    "wrapping_add",
    "write",
    "write_all",
    "zip",
];

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Token index of the callee name in the declaring file's stream.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Receiver identifier for `recv.m(...)` calls.
    pub receiver: Option<String>,
    /// Argument token range: index of the `(` to just past the `)`.
    pub args: (usize, usize),
    /// Resolved targets, as indices into [`ItemIndex::fns`].
    pub targets: Vec<usize>,
}

/// Call sites per function, indexed like [`ItemIndex::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[f]` lists fn `f`'s call sites in token order.
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph for every indexed function.
    pub fn build(units: &[SourceUnit], index: &ItemIndex) -> CallGraph {
        let mut calls = Vec::with_capacity(index.fns.len());
        for f in &index.fns {
            calls.push(collect_calls(units, index, f));
        }
        CallGraph { calls }
    }
}

fn collect_calls(units: &[SourceUnit], index: &ItemIndex, f: &FnItem) -> Vec<CallSite> {
    let Some(unit) = units.get(f.file) else {
        return Vec::new();
    };
    let tokens = &unit.tokens;
    let (open, end) = f.body;
    if end <= open {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut j = open + 1;
    while j + 1 < end {
        let (Some(t), Some(n)) = (tokens.get(j), tokens.get(j + 1)) else {
            break;
        };
        let is_call = t.kind == TokKind::Ident
            && n.is_punct('(')
            && !matches!(
                t.text.as_str(),
                "if" | "while" | "for" | "match" | "loop" | "return" | "fn" | "move"
            )
            && !matches!(tokens.get(j.wrapping_sub(1)), Some(p) if p.is_ident("fn"));
        if !is_call {
            j += 1;
            continue;
        }
        let args_end = match_delim(tokens, j + 1, '(', ')');
        let prev = tokens.get(j.wrapping_sub(1));
        let mut receiver = None;
        let targets = if prev.is_some_and(|p| p.is_punct('.')) {
            // Method call: inspect the receiver chain.
            let recv = tokens
                .get(j.wrapping_sub(2))
                .filter(|r| r.kind == TokKind::Ident);
            receiver = recv.map(|r| r.text.clone());
            resolve_method(index, f, tokens, j, recv.map(|r| r.text.as_str()), &t.text)
        } else if prev.is_some_and(|p| p.is_punct(':'))
            && tokens
                .get(j.wrapping_sub(2))
                .is_some_and(|p| p.is_punct(':'))
        {
            // `Qual::name(...)`.
            let qual = tokens
                .get(j.wrapping_sub(3))
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.as_str());
            resolve_qualified(index, qual, &t.text)
        } else {
            index.free_fns(&t.text)
        };
        out.push(CallSite {
            tok: j,
            line: t.line,
            name: t.text.clone(),
            receiver,
            args: (j + 1, args_end),
            targets,
        });
        j += 1;
    }
    out
}

/// Resolves `recv.name(...)` at token `name_idx`.
fn resolve_method(
    index: &ItemIndex,
    f: &FnItem,
    tokens: &[Token],
    name_idx: usize,
    recv: Option<&str>,
    name: &str,
) -> Vec<usize> {
    let impl_type = f.impl_type.as_deref();
    if recv == Some("self") {
        return impl_type
            .map(|ty| index.methods_of(ty, name))
            .unwrap_or_default();
    }
    // `self.field.name(...)`: resolve through the field's declared
    // type. A known field whose type has no workspace impls means the
    // call hits std (Vec, HashMap, Mutex, ...) — resolve to nothing
    // rather than falling through to the by-name net.
    if let (Some(field), Some(ty)) = (recv, impl_type) {
        let is_self_field = tokens
            .get(name_idx.wrapping_sub(3))
            .is_some_and(|p| p.is_punct('.'))
            && tokens
                .get(name_idx.wrapping_sub(4))
                .is_some_and(|p| p.is_ident("self"));
        if is_self_field {
            if let Some(fld) = index.field_of(ty, field) {
                return fld
                    .type_idents
                    .iter()
                    .flat_map(|t| index.methods_of(t, name))
                    .collect();
            }
        }
    }
    if STD_METHODS.contains(&name) {
        return Vec::new();
    }
    // Unknown receiver: only resolve when the workspace has exactly
    // one method with this name. Multiple candidates would manufacture
    // edges to types the receiver cannot be (`h.snapshot()` on a
    // histogram must not resolve to every `snapshot` in the tree).
    let candidates = index.any_methods(name);
    if candidates.len() == 1 {
        candidates
    } else {
        Vec::new()
    }
}

/// Resolves `Qual::name(...)`.
fn resolve_qualified(index: &ItemIndex, qual: Option<&str>, name: &str) -> Vec<usize> {
    if let Some(q) = qual {
        let methods = index.methods_of(q, name);
        if !methods.is_empty() {
            return methods;
        }
    }
    // `module::name(...)` or an unmatched type: free functions only.
    index.free_fns(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::ItemIndex;

    fn graph_for(src: &str) -> (ItemIndex, CallGraph) {
        let units = vec![SourceUnit::parse("crates/demo/src/lib.rs", src)];
        let index = ItemIndex::build(&units);
        let graph = CallGraph::build(&units, &index);
        (index, graph)
    }

    fn targets_of(index: &ItemIndex, graph: &CallGraph, caller: &str, callee: &str) -> Vec<String> {
        let Some(ci) = index.fns.iter().position(|f| f.name == caller) else {
            return Vec::new();
        };
        graph
            .calls
            .get(ci)
            .into_iter()
            .flatten()
            .filter(|c| c.name == callee)
            .flat_map(|c| c.targets.iter())
            .filter_map(|&t| index.fns.get(t).map(|f| f.name.clone()))
            .collect()
    }

    #[test]
    fn self_calls_resolve_within_the_impl() {
        let (index, graph) = graph_for(
            "
            struct A;
            struct B;
            impl A { fn go(&self) { self.step(); } fn step(&self) {} }
            impl B { fn step(&self) {} }
            ",
        );
        assert_eq!(targets_of(&index, &graph, "go", "step").len(), 1);
    }

    #[test]
    fn field_typed_receivers_resolve_through_the_field() {
        let (index, graph) = graph_for(
            "
            struct Queue;
            impl Queue { fn pop(&self) {} }
            struct Server { queue: Arc<Queue>, items: Vec<u32> }
            impl Server {
                fn run(&self) { self.queue.pop(); self.items.pop(); }
            }
            ",
        );
        // `self.queue.pop()` reaches Queue::pop; `self.items.pop()` is
        // Vec::pop and resolves to nothing.
        assert_eq!(targets_of(&index, &graph, "run", "pop").len(), 1);
    }

    #[test]
    fn std_method_names_do_not_resolve_blind() {
        let (index, graph) = graph_for(
            "
            struct Q;
            impl Q { fn pop(&self) {} }
            fn elsewhere(v: &mut Vec<u32>) { v.pop(); }
            ",
        );
        assert!(targets_of(&index, &graph, "elsewhere", "pop").is_empty());
    }

    #[test]
    fn qualified_and_free_calls_resolve() {
        let (index, graph) = graph_for(
            "
            struct T;
            impl T { fn make() {} }
            fn helper() {}
            fn caller() { T::make(); helper(); crate::helper(); }
            ",
        );
        assert_eq!(targets_of(&index, &graph, "caller", "make").len(), 1);
        assert_eq!(targets_of(&index, &graph, "caller", "helper").len(), 2);
    }
}
