//! Phase-1 workspace item index: functions (with their enclosing
//! `impl`/`trait` type), struct fields (lock-typed ones specially
//! marked), lock-typed function parameters, and `VERSION`-family
//! constants. This is the symbol layer the interprocedural rules in
//! [`crate::callgraph`], [`crate::interproc`] and
//! [`crate::codec_check`] resolve names against.
//!
//! Built on the same flat token streams as the per-file rules — the
//! workspace is registry-free, so there is no `syn`. Parsing is
//! shape-matching over tokens: anything the indexer cannot confidently
//! recognize it leaves out, which degrades the interprocedural rules
//! toward false negatives, never panics or spurious findings.

use std::collections::BTreeMap;

use crate::lexer::{lex, TokKind, Token};
use crate::rules::{match_delim, test_ranges};

/// One scanned source file, kept around for phase-2 analysis.
#[derive(Debug)]
pub struct SourceUnit {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// The file's token stream.
    pub tokens: Vec<Token>,
    /// Sorted token ranges of test code (exempt from all rules).
    pub exempt: Vec<(usize, usize)>,
}

impl SourceUnit {
    /// Lexes `source` into a unit (test ranges precomputed).
    pub fn parse(path: &str, source: &str) -> SourceUnit {
        let lexed = lex(source);
        let exempt = test_ranges(&lexed.tokens);
        SourceUnit {
            path: path.to_string(),
            tokens: lexed.tokens,
            exempt,
        }
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// Whether token `i` falls inside test code.
    pub fn is_exempt(&self, i: usize) -> bool {
        self.exempt.iter().any(|&(a, b)| i >= a && i < b)
    }
}

/// Which lock-ish type a struct field or parameter carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<T>` — exclusive; participates in lock ordering.
    Mutex,
    /// `RwLock<T>` — shared/exclusive; participates in lock ordering.
    RwLock,
    /// `Condvar` — indexed for completeness; waits are blocking calls,
    /// not ordered acquisitions.
    Condvar,
}

/// One struct field, with every identifier appearing in its type.
#[derive(Clone, Debug)]
pub struct Field {
    /// Declaring struct.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Identifiers in the type position (`Arc<Mutex<Foo>>` yields
    /// `[Arc, Mutex, Foo]`) — used to resolve `self.field.method()`.
    pub type_idents: Vec<String>,
    /// Set when the type mentions a lock.
    pub lock: Option<LockKind>,
}

/// One function or method.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Index of the declaring file in the unit list.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the parameter list (inside the parens).
    pub params: (usize, usize),
    /// Token range of the body including both braces; `(0, 0)` for
    /// body-less trait signatures.
    pub body: (usize, usize),
    /// Declared inside `#[cfg(test)]`/`#[test]` code.
    pub is_test: bool,
    /// The return type mentions a guard type (`MutexGuard`,
    /// `RwLockReadGuard`, ...) — a lock acquired inside stays held by
    /// the caller.
    pub returns_guard: bool,
    /// Parameters whose type mentions `Mutex`/`RwLock`: a shared lock
    /// passed by reference, keyed `param.<name>` in the lock graph.
    pub lock_params: Vec<String>,
}

impl FnItem {
    /// Whether the function has a parameter with this exact name.
    pub fn has_param(&self, unit: &SourceUnit, name: &str) -> bool {
        unit.tokens
            .get(self.params.0..self.params.1)
            .unwrap_or(&[])
            .iter()
            .any(|t| t.is_ident(name))
    }
}

/// `const <NAME containing VERSION>: u16 = <N>;` — wire/codec version
/// constants cross-checked by the codec-drift rule.
#[derive(Clone, Debug)]
pub struct VersionConst {
    /// Index of the declaring file.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Constant name.
    pub name: String,
    /// Literal value.
    pub value: u64,
}

/// The workspace-wide symbol index (phase-1 output).
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// Every function, in file-then-token order.
    pub fns: Vec<FnItem>,
    /// Every struct field.
    pub fields: Vec<Field>,
    /// Version constants (u16-typed, name contains `VERSION`).
    pub version_consts: Vec<VersionConst>,
    /// Function name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl ItemIndex {
    /// Builds the index over every unit.
    pub fn build(units: &[SourceUnit]) -> ItemIndex {
        let mut index = ItemIndex::default();
        for (file, unit) in units.iter().enumerate() {
            index_unit(file, unit, &mut index);
        }
        for (i, f) in index.fns.iter().enumerate() {
            index.by_name.entry(f.name.clone()).or_default().push(i);
        }
        index
    }

    /// Functions named `name` whose impl type is `ty`.
    pub fn methods_of(&self, ty: &str, name: &str) -> Vec<usize> {
        self.named(name, |f| f.impl_type.as_deref() == Some(ty))
    }

    /// Free functions named `name`.
    pub fn free_fns(&self, name: &str) -> Vec<usize> {
        self.named(name, |f| f.impl_type.is_none())
    }

    /// Methods named `name` on any type.
    pub fn any_methods(&self, name: &str) -> Vec<usize> {
        self.named(name, |f| f.impl_type.is_some())
    }

    fn named(&self, name: &str, keep: impl Fn(&FnItem) -> bool) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| self.fns.get(i).is_some_and(|f| !f.is_test && keep(f)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The field `name` declared on struct `owner`.
    pub fn field_of(&self, owner: &str, name: &str) -> Option<&Field> {
        self.fields
            .iter()
            .find(|f| f.owner == owner && f.name == name)
    }

    /// If exactly one struct declares a *lock-typed* field `name`,
    /// returns it — used to attribute `foo.conns.lock()` when the
    /// receiver's type is unknown.
    pub fn unique_lock_field(&self, name: &str) -> Option<&Field> {
        let mut hits = self.fields.iter().filter(|f| {
            f.name == name && matches!(f.lock, Some(LockKind::Mutex | LockKind::RwLock))
        });
        let first = hits.next()?;
        if hits.next().is_some() {
            return None;
        }
        Some(first)
    }
}

/// Lock kind for a type-token run, if any.
fn lock_kind(type_idents: &[String]) -> Option<LockKind> {
    for id in type_idents {
        match id.as_str() {
            "Mutex" => return Some(LockKind::Mutex),
            "RwLock" => return Some(LockKind::RwLock),
            "Condvar" => return Some(LockKind::Condvar),
            _ => {}
        }
    }
    None
}

/// Skips a `<...>` generic list starting at `i` (pointing at `<`),
/// returning the index past the matching `>`. `->` arrows never occur
/// at this position. Unbalanced input ends at `tokens.len()`.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        } else if t.is_punct('{') || t.is_punct(';') {
            return j; // malformed; stop before the body
        }
        j += 1;
    }
    tokens.len()
}

fn index_unit(file: usize, unit: &SourceUnit, index: &mut ItemIndex) {
    let tokens = &unit.tokens;
    // Stack of enclosing `impl`/`trait` contexts: (type, body end).
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while impls.last().is_some_and(|&(_, end)| i >= end) {
            impls.pop();
        }
        let Some(t) = tokens.get(i) else { break };
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" | "trait" => {
                if let Some((ty, open)) = parse_impl_header(tokens, i) {
                    let end = match_delim(tokens, open, '{', '}');
                    impls.push((ty, end));
                    i = open + 1;
                    continue;
                }
                i += 1;
            }
            "struct" => {
                i = parse_struct(tokens, i, index);
            }
            "fn" => {
                if let Some((item, next)) = parse_fn(file, unit, i, impls.last()) {
                    index.fns.push(item);
                    i = next;
                    continue;
                }
                i += 1;
            }
            "const" => {
                if let Some(c) = parse_version_const(file, tokens, i) {
                    index.version_consts.push(c);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Parses `impl<...> [Trait for] Type<...> [where ...] {`, returning
/// the implemented type name and the index of the body `{`. For
/// `trait Name {` the trait name is the type.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_generics(tokens, j);
    }
    // Scan to the body `{` (or bail at `;`), tracking the last
    // angle-depth-0 ident before any `where` clause; if a `for`
    // appears, restart tracking (the type follows it).
    let mut depth = 0i32;
    let mut last: Option<&str> = None;
    let mut in_where = false;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') && depth <= 0 {
            return last.map(|ty| (ty.to_string(), j));
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_punct('<') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct('>') || t.is_punct(')') {
            depth -= 1;
        } else if depth <= 0 && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "for" => {
                    last = None;
                    in_where = false;
                }
                "where" => in_where = true,
                name if !in_where => last = Some(name),
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Parses `struct Name<...> { fields }`, pushing each field into the
/// index. Returns the index to resume scanning from (just inside the
/// body so nothing is skipped).
fn parse_struct(tokens: &[Token], i: usize, index: &mut ItemIndex) -> usize {
    let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
        return i + 1;
    };
    let owner = name.text.clone();
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_generics(tokens, j);
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('{')) {
        return i + 1; // tuple/unit struct: nothing lockable to key on
    }
    let end = match_delim(tokens, j, '{', '}');
    // Split the body into fields at depth-0 commas; within each
    // segment, `name :` starts the type run.
    let mut depth = 0i32;
    let mut field: Option<String> = None;
    let mut type_idents: Vec<String> = Vec::new();
    let mut k = j + 1;
    let mut flush = |field: &mut Option<String>, type_idents: &mut Vec<String>| {
        if let Some(name) = field.take() {
            let lock = lock_kind(type_idents);
            index.fields.push(Field {
                owner: owner.clone(),
                name,
                type_idents: std::mem::take(type_idents),
                lock,
            });
        } else {
            type_idents.clear();
        }
    };
    while k + 1 < end {
        let Some(t) = tokens.get(k) else { break };
        if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct(',') {
            flush(&mut field, &mut type_idents);
        } else if t.kind == TokKind::Ident {
            let is_field_name = depth <= 0
                && field.is_none()
                && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
                && !tokens
                    .get(k.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct(':'));
            if is_field_name {
                field = Some(t.text.clone());
            } else if field.is_some() {
                type_idents.push(t.text.clone());
            }
        }
        k += 1;
    }
    flush(&mut field, &mut type_idents);
    j + 1
}

/// Parses `fn name<...>(params) [-> Ret] [where ...] { body }`,
/// returning the item and the index to resume from (inside the body).
fn parse_fn(
    file: usize,
    unit: &SourceUnit,
    i: usize,
    ctx: Option<&(String, usize)>,
) -> Option<(FnItem, usize)> {
    let tokens = &unit.tokens;
    let name = unit.tok(i + 1).filter(|t| t.kind == TokKind::Ident)?;
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_generics(tokens, j);
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let params_end = match_delim(tokens, j, '(', ')');
    let params = (j + 1, params_end.saturating_sub(1));
    // Return type / where clause run: everything to the body `{` or a
    // `;` (trait signature). A `{` can only open the body here.
    let mut k = params_end;
    let (body, ret_end) = loop {
        match tokens.get(k) {
            None => break ((0, 0), k),
            Some(t) if t.is_punct('{') => {
                break ((k, match_delim(tokens, k, '{', '}')), k);
            }
            Some(t) if t.is_punct(';') => break ((0, 0), k),
            Some(_) => k += 1,
        }
    };
    let returns_guard = tokens
        .get(params_end..ret_end)
        .unwrap_or(&[])
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.ends_with("Guard"));
    let item = FnItem {
        file,
        name: name.text.clone(),
        impl_type: ctx.map(|(ty, _)| ty.clone()),
        line: unit.tok(i).map(|t| t.line).unwrap_or(0),
        params,
        body,
        is_test: unit.is_exempt(i),
        returns_guard,
        lock_params: lock_params(tokens, params),
    };
    // Resume just inside the body (or past the `;`) so nested items
    // are still indexed.
    let next = if body == (0, 0) {
        ret_end + 1
    } else {
        body.0 + 1
    };
    Some((item, next))
}

/// Names of parameters in `params` whose type mentions `Mutex` or
/// `RwLock` (depth-0 comma-separated `name: Type` segments).
fn lock_params(tokens: &[Token], params: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut name: Option<String> = None;
    let mut lockish = false;
    let mut k = params.0;
    while k < params.1 {
        let Some(t) = tokens.get(k) else { break };
        if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct(',') {
            if lockish {
                out.extend(name.take());
            }
            name = None;
            lockish = false;
        } else if t.kind == TokKind::Ident {
            if name.is_none()
                && depth <= 0
                && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
            {
                name = Some(t.text.clone());
            } else if matches!(t.text.as_str(), "Mutex" | "RwLock") {
                lockish = true;
            }
        }
        k += 1;
    }
    if lockish {
        out.extend(name.take());
    }
    out
}

/// Parses `const NAME: u16 = N;` where `NAME` contains `VERSION`.
/// Restricting to `u16` keeps unrelated constants (perf schema
/// versions and the like) out of the wire cross-check.
fn parse_version_const(file: usize, tokens: &[Token], i: usize) -> Option<VersionConst> {
    let name = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident)?;
    if !name.text.contains("VERSION") {
        return None;
    }
    if !tokens.get(i + 2).is_some_and(|t| t.is_punct(':')) {
        return None;
    }
    if !tokens.get(i + 3).is_some_and(|t| t.is_ident("u16")) {
        return None;
    }
    if !tokens.get(i + 4).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    let num = tokens.get(i + 5).filter(|t| t.kind == TokKind::Num)?;
    let digits: String = num
        .text
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    let value = digits.parse::<u64>().ok()?;
    Some(VersionConst {
        file,
        line: name.line,
        name: name.text.clone(),
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str) -> ItemIndex {
        ItemIndex::build(&[SourceUnit::parse("crates/demo/src/lib.rs", src)])
    }

    #[test]
    fn structs_locks_and_impls_are_indexed() {
        let idx = index_of(
            "
            struct Q { state: Mutex<Inner>, ready: Condvar, tag: u32 }
            struct Shared { conns: Mutex<HashMap<u64, TcpStream>> }
            impl Q {
                fn push(&self) {}
                fn lock(&self) -> MutexGuard<Inner> { self.state.lock().unwrap() }
            }
            fn free_helper(jobs: &Mutex<Vec<u8>>) {}
            ",
        );
        let state = idx.field_of("Q", "state").expect("state field");
        assert_eq!(state.lock, Some(LockKind::Mutex));
        assert_eq!(
            idx.field_of("Q", "ready").and_then(|f| f.lock),
            Some(LockKind::Condvar)
        );
        assert!(idx.field_of("Q", "tag").is_some_and(|f| f.lock.is_none()));
        assert!(idx.unique_lock_field("conns").is_some());
        assert_eq!(idx.methods_of("Q", "push").len(), 1);
        let lock_fn = idx.methods_of("Q", "lock");
        assert!(idx
            .fns
            .get(lock_fn.first().copied().unwrap_or(usize::MAX))
            .is_some_and(|f| f.returns_guard));
        let free = idx.free_fns("free_helper");
        let item = idx
            .fns
            .get(free.first().copied().unwrap_or(usize::MAX))
            .expect("free fn");
        assert_eq!(item.lock_params, vec!["jobs".to_string()]);
    }

    #[test]
    fn trait_impls_resolve_to_the_for_type() {
        let idx = index_of(
            "
            impl<'de> Deserialize<'de> for Spec {
                fn deserialize(r: &mut Reader) -> Result<Self, Error> { body() }
            }
            ",
        );
        assert_eq!(idx.methods_of("Spec", "deserialize").len(), 1);
    }

    #[test]
    fn test_code_fns_are_marked() {
        let idx = index_of(
            "
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
            fn prod() {}
            ",
        );
        assert!(idx.free_fns("helper").is_empty(), "test fns filtered");
        assert_eq!(idx.free_fns("prod").len(), 1);
    }

    #[test]
    fn version_consts_are_u16_only() {
        let idx = index_of(
            "
            pub const VERSION: u16 = 5;
            pub const MIN_VERSION: u16 = 2;
            pub const SCHEMA_VERSION: u32 = 9;
            ",
        );
        let names: Vec<&str> = idx.version_consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["VERSION", "MIN_VERSION"]);
        assert_eq!(idx.version_consts.first().map(|c| c.value), Some(5));
    }
}
