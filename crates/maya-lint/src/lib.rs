//! maya-lint: in-tree static analysis for the maya workspace.
//!
//! Machine-checks the hand-maintained discipline every correctness
//! claim in this repo rests on: no guard held across a blocking call
//! (the PR-5 bug class), no hash-ordered iteration in serialization
//! paths, no wall-clock or ambient entropy in deterministic outputs,
//! and a panic budget per crate that only ratchets down. See
//! [`rules`] for the rule list, [`config`] for `lint-budget.toml`,
//! and the README "Static analysis" section for the allow syntax.
//!
//! The analyzer runs in two phases:
//!
//! 1. **per-file** — the hand-rolled comment/string-aware lexer
//!    ([`lexer`]) feeds the original token-local rules;
//! 2. **workspace** — the same token streams are parsed into an item
//!    index ([`items`]) and a conservative name-resolved call graph
//!    ([`callgraph`]), over which the interprocedural rules run:
//!    lock-order cycle detection and transitive
//!    guard-across-blocking-call ([`interproc`]), and wire-codec
//!    drift checking ([`codec_check`]). Vendored code is scanned in
//!    phase 1 but excluded from phase 2.
//!
//! The workspace is registry-free, so no `syn`. The trade is
//! precision for zero dependencies: rules are heuristic, tuned to the
//! idioms this codebase actually uses, with
//! `// lint:allow(<rule>): <reason>` as the escape hatch (reason
//! mandatory, every use counted in the JSON report).
//!
//! Entry point: [`run_workspace`]; CLI in `src/main.rs`
//! (`cargo run -p maya-lint -- --check`).

pub mod callgraph;
pub mod codec_check;
pub mod config;
pub mod interproc;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use config::Config;
use items::{ItemIndex, SourceUnit};
use lexer::{lex, Allow, Lexed};
use report::{BudgetLine, Report, Suppressed};
use rules::{FileCtx, Finding, PanicCounts};

/// Directory names never scanned, wherever they appear under a `src/`
/// tree (test scaffolding and lint fixtures are not shipped code).
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures"];

/// Maps a workspace-relative path to the crate name used in
/// `lint-budget.toml`. Returns `None` for paths outside any scanned
/// crate.
pub fn crate_name_for(rel: &str) -> Option<String> {
    let mut parts = rel.split('/');
    match parts.next()? {
        "src" => Some("maya-repro".to_string()),
        "crates" => Some(parts.next()?.to_string()),
        "vendor" => Some(format!("vendor-{}", parts.next()?)),
        _ => None,
    }
}

/// Collects every scannable `.rs` file, as sorted workspace-relative
/// `/`-separated paths. Scans `src/`, `crates/*/src/`, and
/// `vendor/*/src/`; the sort makes scan order (and therefore output
/// order) deterministic across platforms.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    for parent in ["crates", "vendor"] {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        entries.sort();
        for entry in entries {
            let src = entry.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            walk(&r, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
                out.push(rel.join("/"));
            }
        }
    }
    Ok(())
}

/// Result of scanning one file.
pub struct FileScan {
    /// Live findings (suppressions already applied).
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned allow.
    pub suppressed: Vec<Suppressed>,
    /// Panic sites (allow-exempted lines excluded).
    pub counts: PanicCounts,
    /// Source lines in the file.
    pub lines: u64,
}

/// Scans one file's source against the per-file rules.
pub fn scan_file(rel: &str, source: &str, cfg: &Config) -> FileScan {
    scan_lexed(rel, &lex(source), cfg)
}

/// Phase-1 core: runs the per-file rules over an already-lexed file.
fn scan_lexed(rel: &str, lexed: &Lexed, cfg: &Config) -> FileScan {
    let mut exempt = rules::test_ranges(&lexed.tokens);

    // Lines covered by a panic-budget allow are exempt from counting;
    // extend the exempt ranges with their token spans.
    let panic_allow_lines: Vec<&Allow> = lexed
        .allows
        .iter()
        .filter(|a| a.rule == rules::PANIC_RULE)
        .collect();
    let mut suppressed = Vec::new();
    for a in &panic_allow_lines {
        // An allow on line N covers N and N+1 (trailing comment, or a
        // comment line above the code).
        let covered = |l: u32| l == a.line || l == a.line + 1;
        let mut span: Option<(usize, usize)> = None;
        for (i, t) in lexed.tokens.iter().enumerate() {
            if covered(t.line) {
                span = Some(match span {
                    None => (i, i + 1),
                    Some((s, _)) => (s, i + 1),
                });
            }
        }
        if let Some((s, e)) = span {
            // Only record the suppression if the covered span actually
            // contains panic sites (unused allows are noise, not debt).
            let sub_ctx = FileCtx {
                path: rel,
                tokens: &lexed.tokens[s..e],
                exempt: &[],
            };
            if rules::panic_counts(&sub_ctx).total() > 0 {
                suppressed.push(Suppressed {
                    file: rel.to_string(),
                    line: a.line,
                    rule: rules::PANIC_RULE,
                    reason: a.reason.clone(),
                });
            }
            exempt.push((s, e));
        }
    }
    exempt.sort_unstable();

    let ctx = FileCtx {
        path: rel,
        tokens: &lexed.tokens,
        exempt: &exempt,
    };

    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rules::guard_across_blocking(&ctx));
    raw.extend(rules::nondeterministic_iteration(&ctx));
    raw.extend(rules::wall_clock(&ctx, &cfg.wall_clock_allow));
    raw.extend(rules::unseeded_randomness(&ctx));

    // Malformed allow comments are findings themselves (a suppression
    // without a reason is exactly the debt this tool exists to track).
    for (line, msg) in &lexed.bad_allows {
        raw.push(Finding {
            file: rel.to_string(),
            line: *line,
            rule: rules::SUPPRESSION_RULE,
            message: msg.clone(),
        });
    }
    for a in &lexed.allows {
        if !rules::ALL_RULES.contains(&a.rule.as_str()) {
            raw.push(Finding {
                file: rel.to_string(),
                line: a.line,
                rule: rules::SUPPRESSION_RULE,
                message: format!("lint:allow names unknown rule `{}`", a.rule),
            });
        }
    }

    // Apply suppressions: an allow matches a finding on its own line
    // (trailing comment) or the next line (comment above the code).
    let mut findings = Vec::new();
    for f in raw {
        let allow = lexed.allows.iter().find(|a| {
            a.rule == f.rule
                && f.rule != rules::SUPPRESSION_RULE
                && (a.line == f.line || a.line + 1 == f.line)
        });
        match allow {
            Some(a) => suppressed.push(Suppressed {
                file: f.file,
                line: f.line,
                rule: f.rule,
                reason: a.reason.clone(),
            }),
            None => findings.push(f),
        }
    }

    FileScan {
        findings,
        suppressed,
        counts: rules::panic_counts(&ctx),
        lines: u64::from(lexed.lines),
    }
}

/// Scans a set of in-memory sources (`(workspace-relative path,
/// content)` pairs). Phase 1 runs the per-file rules on every file;
/// when `interproc` is set, phase 2 builds the workspace item index
/// and call graph over the non-vendored files and runs the
/// interprocedural rules. Phase-2 findings honor the same
/// `lint:allow` comments as phase 1.
pub fn run_sources(sources: &[(String, String)], cfg: &Config, interproc: bool) -> Report {
    let mut report = Report::default();
    let mut per_crate: BTreeMap<String, PanicCounts> = BTreeMap::new();
    let mut units: Vec<SourceUnit> = Vec::new();
    let mut unit_allows: Vec<Vec<Allow>> = Vec::new();
    for (rel, source) in sources {
        let krate = match crate_name_for(rel) {
            Some(k) => k,
            None => continue,
        };
        let lexed = lex(source);
        let scan = scan_lexed(rel, &lexed, cfg);
        report.findings.extend(scan.findings);
        report.suppressed.extend(scan.suppressed);
        report.lines += scan.lines;
        report.files += 1;
        per_crate.entry(krate).or_default().add(&scan.counts);
        if interproc && !rel.starts_with("vendor/") {
            let exempt = rules::test_ranges(&lexed.tokens);
            units.push(SourceUnit {
                path: rel.clone(),
                tokens: lexed.tokens,
                exempt,
            });
            unit_allows.push(lexed.allows);
        }
    }

    if interproc {
        let index = ItemIndex::build(&units);
        let graph = CallGraph::build(&units, &index);
        let mut phase2 = interproc::check(&units, &index, &graph);
        phase2.extend(codec_check::check(&units, &index));
        let by_path: BTreeMap<&str, usize> = units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.path.as_str(), i))
            .collect();
        for f in phase2 {
            let allow = by_path
                .get(f.file.as_str())
                .and_then(|&i| unit_allows.get(i))
                .into_iter()
                .flatten()
                .find(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
            match allow {
                Some(a) => report.suppressed.push(Suppressed {
                    file: f.file,
                    line: f.line,
                    rule: f.rule,
                    reason: a.reason.clone(),
                }),
                None => report.findings.push(f),
            }
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    for (krate, counts) in per_crate {
        let cap = cfg.budgets.get(&krate).copied();
        // A crate absent from the budget file only fails once it has
        // something to budget; `--write-budget` lists every crate.
        if cap.is_none() && counts.total() == 0 {
            continue;
        }
        report.budgets.push(BudgetLine { krate, counts, cap });
    }
    report
}

/// Reads every scannable file under `root` into memory.
fn read_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let files = collect_files(root)?;
    let mut out = Vec::with_capacity(files.len());
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Scans the whole workspace rooted at `root` against `cfg`: both the
/// per-file rules and the interprocedural phase.
pub fn run_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    Ok(run_sources(&read_sources(root)?, cfg, true))
}

/// Phase 1 only: the per-file rules, without the workspace item
/// index or call graph. The perf harness benchmarks this separately
/// from the full [`run_workspace`] scan.
pub fn run_workspace_phase1(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    Ok(run_sources(&read_sources(root)?, cfg, false))
}

/// Recomputes the budget table from actual counts (the ratchet write
/// path). Keeps the existing wall-clock allowlist.
pub fn write_budget(root: &Path, cfg: &Config) -> std::io::Result<Config> {
    let files = collect_files(root)?;
    let mut per_crate: BTreeMap<String, PanicCounts> = BTreeMap::new();
    for rel in &files {
        let krate = match crate_name_for(rel) {
            Some(k) => k,
            None => continue,
        };
        let source = std::fs::read_to_string(root.join(rel))?;
        let scan = scan_file(rel, &source, cfg);
        per_crate.entry(krate).or_default().add(&scan.counts);
    }
    let mut next = cfg.clone();
    next.budgets = per_crate.into_iter().map(|(k, c)| (k, c.total())).collect();
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_names() {
        assert_eq!(
            crate_name_for("crates/maya-sim/src/engine.rs").as_deref(),
            Some("maya-sim")
        );
        assert_eq!(
            crate_name_for("vendor/serde/src/lib.rs").as_deref(),
            Some("vendor-serde")
        );
        assert_eq!(crate_name_for("src/lib.rs").as_deref(), Some("maya-repro"));
        assert_eq!(crate_name_for("target/debug/x.rs"), None);
    }

    #[test]
    fn trailing_allow_suppresses_and_is_counted() {
        let cfg = Config::default();
        let src = "
fn f() {
    let t = Instant::now(); // lint:allow(wall-clock-in-output): demo timing
}
";
        let scan = scan_file("x.rs", src, &cfg);
        assert!(scan.findings.is_empty());
        assert_eq!(scan.suppressed.len(), 1);
        assert_eq!(scan.suppressed[0].reason, "demo timing");
    }

    #[test]
    fn preceding_line_allow_suppresses() {
        let cfg = Config::default();
        let src = "
fn f() {
    // lint:allow(unseeded-randomness): fixture generator
    let r = thread_rng();
}
";
        let scan = scan_file("x.rs", src, &cfg);
        assert!(scan.findings.is_empty());
        assert_eq!(scan.suppressed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let cfg = Config::default();
        let src = "fn f() {} // lint:allow(panic-budget)\n";
        let scan = scan_file("x.rs", src, &cfg);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].rule, rules::SUPPRESSION_RULE);
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let cfg = Config::default();
        let src = "fn f() {} // lint:allow(no-such-rule): because\n";
        let scan = scan_file("x.rs", src, &cfg);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].rule, rules::SUPPRESSION_RULE);
    }

    #[test]
    fn panic_allow_excludes_the_line_from_counts() {
        let cfg = Config::default();
        let src = "
fn f(v: &[u8]) -> u8 {
    let a = v[0];
    // lint:allow(panic-budget): bounds checked by caller contract
    let b = v[1];
    a + b
}
";
        let scan = scan_file("x.rs", src, &cfg);
        assert_eq!(scan.counts.index, 1, "only the unallowed v[0] counts");
        assert_eq!(scan.suppressed.len(), 1);
    }

    #[test]
    fn wrong_rule_allow_does_not_suppress() {
        let cfg = Config::default();
        let src = "
fn f() {
    let r = thread_rng(); // lint:allow(wall-clock-in-output): mismatched
}
";
        let scan = scan_file("x.rs", src, &cfg);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].rule, rules::RNG_RULE);
    }
}
