//! Phase-2 wire-codec drift checking.
//!
//! The workspace's codecs are hand-written twins: a `Serialize` impl
//! (or `encode_x`/`write_x` free function) emits fields in declaration
//! order, and the matching `Deserialize` impl (or `decode_x`/`read_x`)
//! reads them back. Nothing ties the two halves together at compile
//! time, so a field added on one side silently corrupts every later
//! field on the wire. This module cross-checks the halves:
//!
//! - **tag symmetry** — string tags written via `w.tag(...)` must
//!   equal the set matched by the reader (`"x" => ...` arms);
//! - **field sequences** — for straight-line bodies (no branching on
//!   either side), the `.serialize(w)` sequence must match the
//!   `T::deserialize(r)?` sequence in count and (where attributable)
//!   field name, positionally;
//! - **version-gate tail position** — a *presence* gate (an
//!   `if <version test>` where exactly one branch performs codec ops)
//!   makes fields optional on the wire, which only works when nothing
//!   unconditional follows it; *format* gates (both branches read) are
//!   exempt;
//! - **version-const coherence** — every `u16` `*VERSION*` const must
//!   sit inside `MIN_VERSION..=VERSION`, and literal `version >= N`
//!   style gates must be neither vacuous (always true for supported
//!   peers) nor unreachable.
//!
//! All checks are scoped to "codec files": files that mention the
//! vendored serde machinery (`serde`, `Serialize`, `Deserialize`,
//! `Reader`, `Writer`) at token level. Benchmarks and other code that
//! happen to have a `version` variable stay out of scope.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{FnItem, ItemIndex, SourceUnit};
use crate::lexer::{TokKind, Token};
use crate::rules::{self, match_delim, Finding};

/// Entry point: all codec-drift findings for the workspace.
pub fn check(units: &[SourceUnit], index: &ItemIndex) -> Vec<Finding> {
    let codec = codec_files(units);
    let mut findings = Vec::new();
    for (ser, de, label) in pairs(index, &codec) {
        check_pair(units, index, ser, de, &label, &mut findings);
    }
    for (fi, f) in index.fns.iter().enumerate() {
        let _ = fi;
        if f.is_test || !codec.contains(&f.file) {
            continue;
        }
        check_gate_tail(units, f, &mut findings);
    }
    check_version_consts(units, index, &codec, &mut findings);
    findings
}

/// Files that touch the codec machinery at all.
fn codec_files(units: &[SourceUnit]) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for (i, unit) in units.iter().enumerate() {
        let hit = unit.tokens.iter().any(|t| {
            t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "serde" | "Serialize" | "Deserialize" | "Reader" | "Writer"
                )
        });
        if hit {
            out.insert(i);
        }
    }
    out
}

/// Encoder/decoder pairs: `serialize`/`deserialize` methods of the
/// same type, and `encode_x`/`decode_x` (or `write_x`/`read_x`) free
/// functions. Only unambiguous one-to-one pairs are checked.
fn pairs(index: &ItemIndex, codec: &BTreeSet<usize>) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut seen_types = BTreeSet::new();
    for f in &index.fns {
        if f.name != "serialize" || f.is_test {
            continue;
        }
        let Some(ty) = f.impl_type.clone() else {
            continue;
        };
        if !seen_types.insert(ty.clone()) {
            continue;
        }
        let ser = index.methods_of(&ty, "serialize");
        let de = index.methods_of(&ty, "deserialize");
        if let (&[s], &[d]) = (ser.as_slice(), de.as_slice()) {
            if codec.contains(&index.fns.get(s).map(|f| f.file).unwrap_or(usize::MAX)) {
                out.push((s, d, ty));
            }
        }
    }
    let prefixes = [("encode_", "decode_"), ("write_", "read_")];
    for (enc_prefix, dec_prefix) in prefixes {
        for f in &index.fns {
            if f.is_test || f.impl_type.is_some() {
                continue;
            }
            let Some(suffix) = f.name.strip_prefix(enc_prefix) else {
                continue;
            };
            let enc = index.free_fns(&f.name);
            let dec = index.free_fns(&format!("{dec_prefix}{suffix}"));
            if let (&[e], &[d]) = (enc.as_slice(), dec.as_slice()) {
                if codec.contains(&index.fns.get(e).map(|f| f.file).unwrap_or(usize::MAX)) {
                    out.push((e, d, f.name.clone()));
                }
            }
        }
    }
    out
}

/// Body token range of `f`, or `None` when it has no body.
fn body_range(f: &FnItem) -> Option<(usize, usize)> {
    let (open, end) = f.body;
    (end > open + 1).then_some((open + 1, end))
}

fn check_pair(
    units: &[SourceUnit],
    index: &ItemIndex,
    ser: usize,
    de: usize,
    label: &str,
    findings: &mut Vec<Finding>,
) {
    let _ = index;
    let (Some(sf), Some(df)) = (index.fns.get(ser), index.fns.get(de)) else {
        return;
    };
    let (Some(su), Some(du)) = (units.get(sf.file), units.get(df.file)) else {
        return;
    };
    // Tag symmetry.
    let ser_tags = written_tags(&su.tokens, sf);
    let de_tags = matched_tags(&du.tokens, df);
    if !ser_tags.is_empty() && !de_tags.is_empty() && ser_tags != de_tags {
        let only_ser: Vec<&str> = ser_tags.difference(&de_tags).map(String::as_str).collect();
        let only_de: Vec<&str> = de_tags.difference(&ser_tags).map(String::as_str).collect();
        let mut parts = Vec::new();
        if !only_ser.is_empty() {
            parts.push(format!(
                "written but never matched: {}",
                only_ser.join(", ")
            ));
        }
        if !only_de.is_empty() {
            parts.push(format!("matched but never written: {}", only_de.join(", ")));
        }
        findings.push(Finding {
            file: su.path.clone(),
            line: sf.line,
            rule: rules::CODEC_RULE,
            message: format!("codec tag drift for `{label}`: {}", parts.join("; ")),
        });
    }
    // Straight-line field sequences.
    if branchy(&su.tokens, sf) || branchy(&du.tokens, df) {
        return;
    }
    let writes = serialize_sequence(&su.tokens, sf);
    let reads = deserialize_sequence(&du.tokens, df);
    if writes.is_empty() || reads.is_empty() {
        return;
    }
    if writes.len() != reads.len() {
        findings.push(Finding {
            file: su.path.clone(),
            line: sf.line,
            rule: rules::CODEC_RULE,
            message: format!(
                "codec field drift for `{label}`: serializer writes {} fields but \
                 deserializer reads {}",
                writes.len(),
                reads.len()
            ),
        });
        return;
    }
    for (pos, (w, r)) in writes.iter().zip(reads.iter()).enumerate() {
        let (Some(w), Some(r)) = (w, r) else { continue };
        if w != r {
            findings.push(Finding {
                file: su.path.clone(),
                line: sf.line,
                rule: rules::CODEC_RULE,
                message: format!(
                    "codec field drift for `{label}`: position {} writes `{w}` but reads `{r}`",
                    pos + 1
                ),
            });
            return;
        }
    }
}

/// Whether `f`'s body contains any control flow (gate, loop, match).
fn branchy(tokens: &[Token], f: &FnItem) -> bool {
    let Some((start, end)) = body_range(f) else {
        return false;
    };
    tokens
        .get(start..end)
        .unwrap_or(&[])
        .iter()
        .any(|t| matches!(t.kind, TokKind::Ident if matches!(t.text.as_str(), "if" | "match" | "while" | "loop" | "for")))
}

/// String tags written via `.tag("...")` calls.
fn written_tags(tokens: &[Token], f: &FnItem) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Some((start, end)) = body_range(f) else {
        return out;
    };
    let mut i = start;
    while i + 1 < end {
        let is_tag_call = tokens.get(i).is_some_and(|t| t.is_ident("tag"))
            && tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_tag_call {
            let span_end = match_delim(tokens, i + 1, '(', ')').min(end);
            for t in tokens.get(i + 2..span_end).unwrap_or(&[]) {
                if t.kind == TokKind::Str {
                    out.insert(t.text.clone());
                }
            }
            i = span_end;
            continue;
        }
        i += 1;
    }
    out
}

/// String tags matched by the reader: `"x" =>` arms and `"x" | "y"`
/// alternations.
fn matched_tags(tokens: &[Token], f: &FnItem) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Some((start, end)) = body_range(f) else {
        return out;
    };
    for i in start..end {
        let Some(t) = tokens.get(i).filter(|t| t.kind == TokKind::Str) else {
            continue;
        };
        let arm = (tokens.get(i + 1).is_some_and(|p| p.is_punct('='))
            && tokens.get(i + 2).is_some_and(|p| p.is_punct('>')))
            || tokens.get(i + 1).is_some_and(|p| p.is_punct('|'))
            || tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('|'));
        if arm {
            out.insert(t.text.clone());
        }
    }
    out
}

/// Field names fed to `.serialize(w)` in body order; `None` for
/// receivers that are not a plain identifier.
fn serialize_sequence(tokens: &[Token], f: &FnItem) -> Vec<Option<String>> {
    let mut out = Vec::new();
    let Some((start, end)) = body_range(f) else {
        return out;
    };
    for i in start..end {
        let is_call = tokens.get(i).is_some_and(|t| t.is_ident("serialize"))
            && tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_call {
            out.push(
                tokens
                    .get(i.wrapping_sub(2))
                    .filter(|t| t.kind == TokKind::Ident && t.text != "self")
                    .map(|t| t.text.clone()),
            );
        }
    }
    out
}

/// Field names receiving `T::deserialize(r)?` results in body order:
/// the nearest preceding struct-literal key (`name:`) or `let` binding
/// within the same statement; `None` when unattributable.
fn deserialize_sequence(tokens: &[Token], f: &FnItem) -> Vec<Option<String>> {
    let mut out = Vec::new();
    let Some((start, end)) = body_range(f) else {
        return out;
    };
    for i in start..end {
        let is_call = tokens.get(i).is_some_and(|t| t.is_ident("deserialize"))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_call {
            continue;
        }
        let mut name = None;
        let floor = start.max(i.saturating_sub(24));
        let mut j = i;
        while j > floor {
            j -= 1;
            let Some(t) = tokens.get(j) else { break };
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let") {
                let mut n = j + 1;
                if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                name = tokens
                    .get(n)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                break;
            }
            let literal_key = t.kind == TokKind::Ident
                && tokens.get(j + 1).is_some_and(|p| p.is_punct(':'))
                && !tokens.get(j + 2).is_some_and(|p| p.is_punct(':'))
                && !tokens
                    .get(j.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct(':'));
            if literal_key {
                name = Some(t.text.clone());
                break;
            }
        }
        out.push(name);
    }
    out
}

/// Codec-op token indices: serialize/deserialize/raw-token calls.
fn codec_ops(tokens: &[Token], start: usize, end: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for i in start..end {
        let is_op = tokens.get(i).is_some_and(|t| {
            t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "serialize" | "deserialize" | "raw_token" | "str_token"
                )
        }) && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_op {
            out.push(i);
        }
    }
    out
}

/// Whether an identifier smells like a protocol-version value.
fn version_ish(text: &str) -> bool {
    text == "version" || text.contains("VERSION")
}

/// A version gate: the `if`-chain token range plus branch op counts.
struct Gate {
    start: usize,
    end: usize,
    line: u32,
    /// One branch performs codec ops and the other does not.
    presence: bool,
}

/// Finds `if <version test>` chains in `f`'s body. `flags` seeds the
/// version-ish identifier set with locals like
/// `let with_spans = version >= 5;`.
fn version_gates(tokens: &[Token], f: &FnItem) -> Vec<Gate> {
    let Some((start, end)) = body_range(f) else {
        return Vec::new();
    };
    let mut flags: BTreeSet<String> = BTreeSet::new();
    let mut i = start;
    while i + 1 < end {
        if tokens.get(i).is_some_and(|t| t.is_ident("let")) {
            let mut n = i + 1;
            if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            let name = tokens.get(n).filter(|t| t.kind == TokKind::Ident);
            let eq = tokens.get(n + 1).is_some_and(|p| p.is_punct('='));
            if let (Some(name), true) = (name, eq) {
                let mut j = n + 2;
                let mut versionish = false;
                while j < end && !tokens.get(j).is_some_and(|t| t.is_punct(';')) {
                    if tokens
                        .get(j)
                        .is_some_and(|t| t.kind == TokKind::Ident && version_ish(&t.text))
                    {
                        versionish = true;
                    }
                    j += 1;
                }
                if versionish {
                    flags.insert(name.text.clone());
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    let mut gates = Vec::new();
    let mut i = start;
    while i + 1 < end {
        if !tokens.get(i).is_some_and(|t| t.is_ident("if")) {
            i += 1;
            continue;
        }
        // Condition runs to the first depth-0 `{`.
        let mut depth = 0i32;
        let mut open = None;
        let mut gated = false;
        let mut j = i + 1;
        while j < end {
            let Some(t) = tokens.get(j) else { break };
            if depth == 0 && t.is_punct('{') {
                open = Some(j);
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            }
            if t.kind == TokKind::Ident && (version_ish(&t.text) || flags.contains(&t.text)) {
                gated = true;
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        if !gated {
            i = open + 1;
            continue;
        }
        let if_end = match_delim(tokens, open, '{', '}').min(end);
        let if_ops = codec_ops(tokens, open, if_end).len();
        // Walk the else-chain.
        let mut chain_end = if_end;
        let mut else_ops = 0usize;
        while tokens.get(chain_end).is_some_and(|t| t.is_ident("else")) {
            let mut k = chain_end + 1;
            if tokens.get(k).is_some_and(|t| t.is_ident("if")) {
                // `else if <cond> {` — find its block.
                while k < end && !tokens.get(k).is_some_and(|t| t.is_punct('{')) {
                    k += 1;
                }
            }
            if !tokens.get(k).is_some_and(|t| t.is_punct('{')) {
                break;
            }
            let blk_end = match_delim(tokens, k, '{', '}').min(end);
            else_ops += codec_ops(tokens, k, blk_end).len();
            chain_end = blk_end;
        }
        gates.push(Gate {
            start: i,
            end: chain_end,
            line: tokens.get(i).map(|t| t.line).unwrap_or(0),
            presence: (if_ops > 0) != (else_ops > 0),
        });
        i = open + 1;
    }
    gates
}

/// Presence gates make trailing fields optional — nothing
/// unconditional may follow them.
fn check_gate_tail(units: &[SourceUnit], f: &FnItem, findings: &mut Vec<Finding>) {
    let Some(unit) = units.get(f.file) else {
        return;
    };
    let Some((start, end)) = body_range(f) else {
        return;
    };
    let gates = version_gates(&unit.tokens, f);
    let Some(first) = gates.iter().filter(|g| g.presence).min_by_key(|g| g.end) else {
        return;
    };
    for op in codec_ops(&unit.tokens, start, end) {
        if op <= first.end {
            continue;
        }
        if gates.iter().any(|g| op > g.start && op < g.end) {
            continue;
        }
        let line = unit.tokens.get(op).map(|t| t.line).unwrap_or(0);
        findings.push(Finding {
            file: unit.path.clone(),
            line,
            rule: rules::CODEC_RULE,
            message: format!(
                "version-gated field in `{}` is not in tail position: unconditional \
                 codec op at line {line} follows the presence gate at line {}",
                f.name, first.line
            ),
        });
        return;
    }
}

/// Cross-crate `VERSION`/`MIN_VERSION` coherence plus literal-gate
/// range checks.
fn check_version_consts(
    units: &[SourceUnit],
    index: &ItemIndex,
    codec: &BTreeSet<usize>,
    findings: &mut Vec<Finding>,
) {
    let by_name: BTreeMap<&str, Vec<&crate::items::VersionConst>> = index
        .version_consts
        .iter()
        .fold(BTreeMap::new(), |mut m, c| {
            m.entry(c.name.as_str()).or_default().push(c);
            m
        });
    let unique = |name: &str| -> Option<&crate::items::VersionConst> {
        match by_name.get(name).map(Vec::as_slice) {
            Some(&[c]) => Some(c),
            _ => None,
        }
    };
    let (Some(vmax), Some(vmin)) = (unique("VERSION"), unique("MIN_VERSION")) else {
        return;
    };
    let (lo, hi) = (vmin.value, vmax.value);
    if lo > hi {
        findings.push(Finding {
            file: units
                .get(vmin.file)
                .map(|u| u.path.clone())
                .unwrap_or_default(),
            line: vmin.line,
            rule: rules::CODEC_RULE,
            message: format!("MIN_VERSION ({lo}) exceeds VERSION ({hi})"),
        });
    }
    for c in &index.version_consts {
        if c.name == "VERSION" || c.name == "MIN_VERSION" {
            continue;
        }
        if c.value < lo || c.value > hi {
            findings.push(Finding {
                file: units
                    .get(c.file)
                    .map(|u| u.path.clone())
                    .unwrap_or_default(),
                line: c.line,
                rule: rules::CODEC_RULE,
                message: format!(
                    "version const `{}` (= {}) is outside MIN_VERSION..=VERSION ({lo}..={hi})",
                    c.name, c.value
                ),
            });
        }
    }
    // Literal gates: `version >= N` and friends in codec files.
    for &fi in codec {
        let Some(unit) = units.get(fi) else { continue };
        let tokens = &unit.tokens;
        for i in 0..tokens.len() {
            if unit.is_exempt(i) {
                continue;
            }
            if !tokens.get(i).is_some_and(|t| t.is_ident("version")) {
                continue;
            }
            let (op, operand_idx) = match (tokens.get(i + 1), tokens.get(i + 2)) {
                (Some(a), Some(b)) if a.is_punct('>') && b.is_punct('=') => (">=", i + 3),
                (Some(a), Some(b)) if a.is_punct('<') && b.is_punct('=') => ("<=", i + 3),
                (Some(a), _) if a.is_punct('>') => (">", i + 2),
                (Some(a), _) if a.is_punct('<') => ("<", i + 2),
                _ => continue,
            };
            let n = match tokens.get(operand_idx) {
                Some(t) if t.kind == TokKind::Num => {
                    // Integer literals only; floats are not protocol
                    // versions.
                    if t.text.bytes().all(|b| b.is_ascii_digit()) && !t.text.is_empty() {
                        t.text.parse::<u64>().ok()
                    } else {
                        None
                    }
                }
                Some(t) if t.kind == TokKind::Ident && version_ish(&t.text) => {
                    unique(&t.text).map(|c| c.value)
                }
                _ => None,
            };
            let Some(n) = n else { continue };
            let ok = match op {
                ">=" | "<" => lo < n && n <= hi,
                _ => lo <= n && n < hi,
            };
            if !ok {
                let line = tokens.get(i).map(|t| t.line).unwrap_or(0);
                findings.push(Finding {
                    file: unit.path.clone(),
                    line,
                    rule: rules::CODEC_RULE,
                    message: format!(
                        "version gate `version {op} {n}` is vacuous or unreachable for \
                         the supported range {lo}..={hi}"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::ItemIndex;

    fn check_src(files: &[(&str, &str)]) -> Vec<Finding> {
        let units: Vec<SourceUnit> = files.iter().map(|(p, s)| SourceUnit::parse(p, s)).collect();
        let index = ItemIndex::build(&units);
        check(&units, &index)
    }

    #[test]
    fn symmetric_codec_is_clean() {
        let findings = check_src(&[(
            "crates/demo/src/serdes.rs",
            r#"
            use serde::{Deserialize, Reader, Serialize, Writer};
            impl Serialize for Spec {
                fn serialize(&self, w: &mut Writer) {
                    let Self { alpha, beta } = self;
                    alpha.serialize(w);
                    beta.serialize(w);
                }
            }
            impl<'de> Deserialize<'de> for Spec {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
                    Ok(Spec {
                        alpha: f64::deserialize(r)?,
                        beta: u32::deserialize(r)?,
                    })
                }
            }
            "#,
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn missing_read_is_field_count_drift() {
        let findings = check_src(&[(
            "crates/demo/src/serdes.rs",
            r#"
            use serde::{Deserialize, Reader, Serialize, Writer};
            impl Serialize for Spec {
                fn serialize(&self, w: &mut Writer) {
                    let Self { alpha, beta } = self;
                    alpha.serialize(w);
                    beta.serialize(w);
                }
            }
            impl<'de> Deserialize<'de> for Spec {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
                    Ok(Spec {
                        alpha: f64::deserialize(r)?,
                        beta: 0,
                    })
                }
            }
            "#,
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings.first().is_some_and(
            |f| f.message.contains("writes 2 fields") && f.message.contains("reads 1")
        ));
    }

    #[test]
    fn reordered_fields_are_drift() {
        let findings = check_src(&[(
            "crates/demo/src/serdes.rs",
            r#"
            use serde::{Deserialize, Reader, Serialize, Writer};
            impl Serialize for Spec {
                fn serialize(&self, w: &mut Writer) {
                    let Self { alpha, beta } = self;
                    alpha.serialize(w);
                    beta.serialize(w);
                }
            }
            impl<'de> Deserialize<'de> for Spec {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
                    let beta = u32::deserialize(r)?;
                    let alpha = f64::deserialize(r)?;
                    Ok(Spec { alpha, beta })
                }
            }
            "#,
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings
            .first()
            .is_some_and(|f| f.message.contains("writes `alpha` but reads `beta`")));
    }

    #[test]
    fn tag_drift_is_flagged_both_ways() {
        let findings = check_src(&[(
            "crates/demo/src/serdes.rs",
            r#"
            use serde::{Deserialize, Reader, Serialize, Writer};
            impl Serialize for Mode {
                fn serialize(&self, w: &mut Writer) {
                    match self {
                        Mode::Fast => w.tag("fast"),
                        Mode::Slow => w.tag("slow"),
                    }
                }
            }
            impl<'de> Deserialize<'de> for Mode {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, Error> {
                    match r.raw_token()? {
                        "fast" => Ok(Mode::Fast),
                        "careful" => Ok(Mode::Slow),
                        t => Err(Error::parse(t, "mode (fast|careful)")),
                    }
                }
            }
            "#,
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let msg = findings.first().map(|f| f.message.as_str()).unwrap_or("");
        assert!(msg.contains("never matched: slow") && msg.contains("never written: careful"));
    }

    #[test]
    fn non_tail_version_gate_is_flagged() {
        let findings = check_src(&[(
            "crates/demo/src/serdes.rs",
            r#"
            use serde::{Deserialize, Reader};
            pub fn decode_spec(r: &mut Reader<'_>, version: u16) -> Result<Spec, Error> {
                let alpha = f64::deserialize(r)?;
                let extra = if version >= 4 { Some(u32::deserialize(r)?) } else { None };
                let beta = u32::deserialize(r)?;
                Ok(Spec { alpha, extra, beta })
            }
            "#,
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings
            .first()
            .is_some_and(|f| f.message.contains("not in tail position")));
    }

    #[test]
    fn tail_gate_and_format_gate_are_clean() {
        let findings = check_src(&[(
            "crates/demo/src/serdes.rs",
            r#"
            use serde::{Deserialize, Reader};
            pub fn decode_spec(r: &mut Reader<'_>, version: u16) -> Result<Spec, Error> {
                let opts = if version <= 2 {
                    Opts { deadline: f64::deserialize(r)?, ..Opts::default() }
                } else {
                    Opts::deserialize(r)?
                };
                let beta = u32::deserialize(r)?;
                let extra = if version >= 4 { Some(u32::deserialize(r)?) } else { None };
                Ok(Spec { opts, beta, extra })
            }
            "#,
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn version_consts_and_literal_gates_are_range_checked() {
        let findings = check_src(&[
            (
                "crates/demo/src/frame.rs",
                "
                use serde::Reader;
                pub const VERSION: u16 = 5;
                pub const MIN_VERSION: u16 = 2;
                ",
            ),
            (
                "crates/other/src/serdes.rs",
                r#"
                use serde::{Deserialize, Reader};
                pub const TAIL_VERSION: u16 = 7;
                pub fn decode(r: &mut Reader<'_>, version: u16) -> Result<u32, Error> {
                    if version >= 2 {
                        u32::deserialize(r)
                    } else {
                        u32::deserialize(r)
                    }
                }
                "#,
            ),
        ]);
        // TAIL_VERSION=7 is outside 2..=5, and `version >= 2` is
        // vacuously true for every supported peer.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("outside")));
        assert!(findings.iter().any(|f| f.message.contains("vacuous")));
    }
}
