// Fixture: unseeded-randomness, known-clean.
// Explicitly seeded construction (the only kind this workspace
// permits) must not fire.

fn search_rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

fn derived_streams(base: u64) -> (Rng, Rng) {
    (
        Rng::seed_from_u64(base),
        Rng::seed_from_u64(base.wrapping_add(1)),
    )
}
