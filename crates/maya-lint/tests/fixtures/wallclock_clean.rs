// Fixture: wall-clock-in-output, known-clean.
// Virtual time from the simulator and a reasoned allow must not fire.

fn advance(clock: &mut SimClock, dt: Ticks) {
    clock.now = clock.now + dt;
}

fn trace_span(report: &mut Report) {
    // lint:allow(wall-clock-in-output): span telemetry anchor — never part of the deterministic payload
    let t0 = Instant::now();
    run();
    report.telemetry.span = t0.elapsed();
}
