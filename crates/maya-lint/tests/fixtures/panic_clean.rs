// Fixture: panic-budget, known-clean: 0 countable sites. Typed errors
// on the non-test path; test code and reasoned allows are exempt.

fn hot_path(frames: &[Frame]) -> Result<Header, FrameError> {
    let first = frames.first().ok_or(FrameError::Empty)?;
    Ok(first.header())
}

fn checked_pair(v: &[u8]) -> Option<(u8, u8)> {
    // lint:allow(panic-budget): fixture exercising the allow path — indexes guarded by the len check above
    if v.len() >= 2 { Some((v[0], v[1])) } else { None }
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_freely() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        v.first().unwrap();
    }
}
