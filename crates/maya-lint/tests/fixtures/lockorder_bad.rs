//! Seeded lock-order deadlocks: two functions acquiring the same pair
//! of mutexes in opposite orders, and a transitive re-acquisition of a
//! non-reentrant lock (a self-loop in the order graph).

use std::sync::Mutex;

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.second.lock().unwrap();
        let a = self.first.lock().unwrap();
        *a - *b
    }
}

pub struct Recur {
    state: Mutex<u32>,
}

impl Recur {
    pub fn outer(&self) {
        let g = self.state.lock().unwrap();
        self.inner();
        drop(g);
    }

    fn inner(&self) {
        let g = self.state.lock().unwrap();
        drop(g);
    }
}
