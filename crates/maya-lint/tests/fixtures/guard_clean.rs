// Fixture: guard-across-blocking-call, known-clean.
// Condvar-idiomatic waits, blocking calls on the guarded resource
// itself, early drops, and scope-narrowed guards must not fire.

fn condvar_consumes_guard(m: &std::sync::Mutex<u32>, cond: &std::sync::Condvar) {
    let mut state = m.lock().unwrap_or_else(|p| p.into_inner());
    while *state == 0 {
        state = cond.wait(state).unwrap_or_else(|p| p.into_inner());
    }
}

fn blocking_on_the_guarded_resource(writer: &std::sync::Mutex<TcpStream>, payload: &[u8]) {
    let mut w = writer.lock().unwrap();
    w.write_all(payload).unwrap();
}

fn guard_dropped_before_blocking(m: &std::sync::Mutex<u32>, rx: &Receiver) {
    let snapshot = *m.lock().unwrap();
    let guard = m.lock().unwrap();
    drop(guard);
    let _ = (snapshot, rx.recv());
}

fn guard_scoped_before_blocking(threads: &std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>) {
    let drained = {
        let mut held = threads.lock().unwrap();
        std::mem::take(&mut *held)
    };
    for handle in drained {
        let _ = handle.join();
    }
}

fn path_join_is_not_blocking(m: &std::sync::Mutex<u32>, dir: &std::path::Path) {
    let _guard = m.lock().unwrap();
    let _p = dir.join("snapshots");
}
