//! A symmetric codec: tags match, field sequences agree, the
//! version-gated field sits in tail position, and every version
//! constant and literal gate is inside the supported range.

use serde::{compact, Deserialize, Reader, Serialize, Writer};

pub const VERSION: u16 = 3;
pub const MIN_VERSION: u16 = 1;

pub enum Mode {
    Fast,
    Careful,
}

impl Serialize for Mode {
    fn serialize(&self, w: &mut Writer) {
        match self {
            Mode::Fast => w.tag("fast"),
            Mode::Careful => w.tag("careful"),
        }
    }
}

impl<'de> Deserialize<'de> for Mode {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "fast" => Mode::Fast,
            "careful" => Mode::Careful,
            t => return Err(compact::Error::parse(t, "mode (fast|careful)")),
        })
    }
}

pub struct Packet {
    seq: u64,
    len: u32,
}

impl Serialize for Packet {
    fn serialize(&self, w: &mut Writer) {
        let Self { seq, len } = self;
        seq.serialize(w);
        len.serialize(w);
    }
}

impl<'de> Deserialize<'de> for Packet {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(Packet {
            seq: u64::deserialize(r)?,
            len: u32::deserialize(r)?,
        })
    }
}

pub fn decode_tail(
    r: &mut Reader<'_>,
    version: u16,
) -> Result<(u64, Option<u32>), compact::Error> {
    let base = u64::deserialize(r)?;
    let extra = if version >= 2 {
        Some(u32::deserialize(r)?)
    } else {
        None
    };
    Ok((base, extra))
}
