// Fixture: nondeterministic-iteration, known-clean.
// Sorted-after-collect, BTreeMap rebuilds, and hash iteration outside
// serialization contexts must not fire.

struct Metrics {
    counters: HashMap<String, u64>,
    ordered: BTreeMap<String, u64>,
}

impl Metrics {
    fn snapshot(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> =
            self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rows.sort_unstable();
        rows
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.ordered {
            out.push_str(&format!("{k}={v},"));
        }
        out
    }

    fn total(&self) -> u64 {
        // Not a serialization context: order-independent fold.
        self.counters.values().sum()
    }
}
