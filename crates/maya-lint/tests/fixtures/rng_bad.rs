// Fixture: unseeded-randomness, known-bad.
// Expected findings: 3 (thread_rng, from_entropy, OsRng).

fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

fn init_population() -> Population {
    let rng = SmallRng::from_entropy();
    Population::sample(rng)
}

fn token() -> [u8; 16] {
    let mut buf = [0u8; 16];
    OsRng.fill_bytes(&mut buf);
    buf
}
