//! Half of the cross-crate lock-order fixture: `Alpha.a` is acquired
//! before `Beta.b` on this side, via a free-function hop so the cycle
//! only appears once calls resolve across files.

use std::sync::Mutex;

pub struct Alpha {
    pub a: Mutex<u32>,
}

impl Alpha {
    pub fn lock_a_then_b(&self, beta: &Beta) {
        let g = self.a.lock().unwrap();
        cross_grab(beta);
        drop(g);
    }

    pub fn reach(&self) {
        let g = self.a.lock().unwrap();
        drop(g);
    }
}

pub fn cross_grab(beta: &Beta) {
    beta.grab();
}
