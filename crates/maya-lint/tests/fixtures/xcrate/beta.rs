//! The other half of the cross-crate lock-order fixture: `Beta.b`
//! before `Alpha.a`, closing the cycle through a method on the other
//! crate's type.

use std::sync::Mutex;

pub struct Beta {
    pub b: Mutex<u32>,
}

impl Beta {
    pub fn grab(&self) {
        let g = self.b.lock().unwrap();
        drop(g);
    }

    pub fn lock_b_then_a(&self, alpha: &Alpha) {
        let g = self.b.lock().unwrap();
        alpha.reach();
        drop(g);
    }
}
