// Fixture: guard-across-blocking-call, known-bad.
// Expected findings: 3 (recv under lock, join under lock, accept under
// a write guard).

fn recv_under_lock(rx_slot: &std::sync::Mutex<Receiver>, other: &Receiver) {
    let _slot = rx_slot.lock().unwrap();
    let _msg = other.recv();
}

fn join_under_lock(threads: &std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>) {
    let mut held = threads.lock().unwrap();
    for handle in held.drain(..) {
        let _ = handle.join();
    }
}

fn accept_under_write_guard(conns: &std::sync::RwLock<Vec<Conn>>, listener: &TcpListener) {
    let mut table = conns.write().unwrap();
    let (stream, _addr) = listener.accept().unwrap();
    table.push(Conn::from(stream));
}
