// Fixture: nondeterministic-iteration, known-bad.
// Expected findings: 2 (method-chain iteration and for-loop iteration
// of hash collections inside serialization-shaped functions).

struct Metrics {
    counters: HashMap<String, u64>,
    seen: HashSet<String>,
}

impl Metrics {
    fn snapshot(&self) -> Vec<u64> {
        self.counters.values().copied().collect()
    }

    fn emit(&self, out: &mut String) {
        for name in &self.seen {
            out.push_str(name);
        }
    }
}
