//! Seeded wire-codec drift: a tag written that the reader never
//! matches (and vice versa), a field the reader drops, and a
//! version-gated field that is not in tail position.

use serde::{compact, Deserialize, Reader, Serialize, Writer};

pub enum Mode {
    Fast,
    Careful,
}

impl Serialize for Mode {
    fn serialize(&self, w: &mut Writer) {
        match self {
            Mode::Fast => w.tag("fast"),
            Mode::Careful => w.tag("careful"),
        }
    }
}

impl<'de> Deserialize<'de> for Mode {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "fast" => Mode::Fast,
            "slow" => Mode::Careful,
            t => return Err(compact::Error::parse(t, "mode (fast|slow)")),
        })
    }
}

pub struct Packet {
    seq: u64,
    len: u32,
}

impl Serialize for Packet {
    fn serialize(&self, w: &mut Writer) {
        let Self { seq, len } = self;
        seq.serialize(w);
        len.serialize(w);
    }
}

impl<'de> Deserialize<'de> for Packet {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(Packet {
            seq: u64::deserialize(r)?,
            len: 0,
        })
    }
}

pub fn decode_tail(
    r: &mut Reader<'_>,
    version: u16,
) -> Result<(u64, Option<u32>, u32), compact::Error> {
    let base = u64::deserialize(r)?;
    let extra = if version >= 4 {
        Some(u32::deserialize(r)?)
    } else {
        None
    };
    let trailing = u32::deserialize(r)?;
    Ok((base, extra, trailing))
}
