//! One-directional lock order: every path acquires `first` before
//! `second`, including the path that goes through a helper, so the
//! order graph is acyclic.

use std::sync::Mutex;

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn both_inline(&self) -> u32 {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        *a + *b
    }

    pub fn both_via_helper(&self) -> u32 {
        let a = self.first.lock().unwrap();
        let b = self.grab_second();
        *a + b
    }

    fn grab_second(&self) -> u32 {
        let b = self.second.lock().unwrap();
        *b
    }

    pub fn second_alone(&self) -> u32 {
        let b = self.second.lock().unwrap();
        *b
    }
}
