// Fixture: wall-clock-in-output, known-bad.
// Expected findings: 2 (Instant::now and SystemTime in a module that
// is not on the telemetry allowlist).

fn stamp_report(report: &mut Report) {
    report.generated_at = SystemTime::now();
}

fn measure_and_embed(report: &mut Report) {
    let t0 = Instant::now();
    run();
    report.elapsed = t0.elapsed();
}
