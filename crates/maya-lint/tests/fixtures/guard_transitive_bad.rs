//! Guards held across calls that block one and two levels down the
//! call graph — invisible to the per-file rule, caught by the
//! interprocedural phase.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Pump {
    state: Mutex<u32>,
    rx: Receiver<u32>,
}

impl Pump {
    pub fn depth_one(&self) {
        let g = self.state.lock().unwrap();
        self.pull();
        drop(g);
    }

    pub fn depth_two(&self) {
        let g = self.state.lock().unwrap();
        self.relay();
        drop(g);
    }

    fn relay(&self) {
        self.pull();
    }

    fn pull(&self) {
        let _ = self.rx.recv();
    }
}
