// Fixture: panic-budget, known-bad (for counting): 6 non-test panic
// sites — 2 unwrap, 1 expect, 1 panic-family macro, 2 slice indexes.

fn hot_path(frames: &[Frame], lookup: &HashMap<u64, Frame>) -> Frame {
    let first = frames.first().unwrap();
    let by_id = lookup.get(&first.id).unwrap();
    let header = frames[0].header();
    let tail = &frames[1..];
    if tail.is_empty() {
        panic!("no tail");
    }
    by_id.merge(header).expect("compatible frames")
}
