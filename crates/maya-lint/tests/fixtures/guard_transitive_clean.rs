//! Transitive-guard situations that are fine: the guard is dropped
//! before the blocking helper runs, or moves into the helper (the
//! condvar idiom, one call level out).

use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex, MutexGuard};

pub struct Gate {
    state: Mutex<u32>,
    ready: Condvar,
    rx: Receiver<u32>,
}

impl Gate {
    pub fn drop_then_pull(&self) {
        let g = self.state.lock().unwrap();
        drop(g);
        self.pull();
    }

    pub fn wait_ready(&self) {
        let mut g = self.state.lock().unwrap();
        g = self.block_on(g);
        drop(g);
    }

    fn block_on<'a>(&self, g: MutexGuard<'a, u32>) -> MutexGuard<'a, u32> {
        self.ready.wait(g).unwrap()
    }

    fn pull(&self) {
        let _ = self.rx.recv();
    }
}
