//! Property-based robustness proofs for the analyzer front end.
//!
//! The lexer, item indexer, call-graph builder, and both phase-2
//! checkers run over every file in the workspace on every CI build, so
//! they must never panic — not on truncated source, not on garbage
//! bytes, not on token streams no rustc would accept. Three
//! generators probe that:
//!
//! 1. arbitrary unicode (anything a file could contain),
//! 2. "rust-ish" token soup biased toward the shapes the parsers
//!    dispatch on (`fn`, `impl`, `struct`, delimiters, `lock()`...),
//!    which reaches far deeper into the item/call-graph code paths
//!    than uniform noise,
//! 3. truncations of a valid file (mid-item EOF handling).

use maya_lint::config::Config;
use maya_lint::run_sources;
use proptest::collection::vec;
use proptest::prelude::*;

/// Full two-phase scan; the property is simply "returns".
fn scan(src: &str) {
    let sources = vec![("crates/fuzz/src/lib.rs".to_string(), src.to_string())];
    let report = run_sources(&sources, &Config::default(), true);
    // Touch the outputs so the scan cannot be optimized away.
    let _ = (report.findings.len(), report.suppressed.len());
}

/// Arbitrary unicode text: raw codepoints with the surrogate gap
/// filtered out by `char::from_u32`.
fn unicode() -> impl Strategy<Value = String> {
    vec(0u32..0x11_0000, 0..600)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

/// Fragments the rust-ish generator stitches together. Heavy on the
/// tokens the item indexer and guard automaton dispatch on, including
/// deliberately unbalanced delimiters.
const FRAGMENTS: &[&str] = &[
    "fn",
    "impl",
    "struct",
    "trait",
    "for",
    "let",
    "mut",
    "const",
    "if",
    "else",
    "match",
    "drop",
    "self",
    "Self",
    "where",
    "move",
    "loop",
    "while",
    "return",
    "u16",
    "u32",
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "Vec",
    "VERSION",
    "MIN_VERSION",
    "version",
    "serialize",
    "deserialize",
    "raw_token",
    "tag",
    "serde",
    "Serialize",
    "Deserialize",
    "Reader",
    "Writer",
    "lock",
    "read",
    "write",
    "recv",
    "wait",
    "join",
    "unwrap",
    "expect",
    "encode_x",
    "decode_x",
    "a",
    "b",
    "g",
    "x",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    "::",
    ":",
    ";",
    ",",
    ".",
    "&",
    "=",
    "=>",
    "->",
    "|",
    "#",
    "'a",
    "'",
    "\"",
    "\"str\"",
    "r#\"raw\"#",
    "// c\n",
    "// lint:allow(panic-budget): p\n",
    "/* b */",
    "0",
    "17",
    "1.5",
    "_",
];

fn rustish() -> impl Strategy<Value = String> {
    vec(0usize..FRAGMENTS.len(), 0..256).prop_map(|picks| {
        picks
            .into_iter()
            .filter_map(|i| FRAGMENTS.get(i).copied())
            .collect::<Vec<_>>()
            .join(" ")
    })
}

/// A valid-looking file exercising every item shape, used for the
/// truncation property.
const WHOLE: &str = r#"
use std::sync::{Condvar, Mutex, MutexGuard};
use serde::{compact, Deserialize, Reader, Serialize, Writer};

pub const VERSION: u16 = 3;
pub const MIN_VERSION: u16 = 1;

pub struct Queue {
    state: Mutex<u32>,
    aux: Mutex<u32>,
    ready: Condvar,
}

impl Queue {
    pub fn lock(&self) -> MutexGuard<'_, u32> {
        self.state.lock().unwrap()
    }

    pub fn pump(&self) {
        let mut g = self.lock();
        g = self.ready.wait(g).unwrap();
        let a = self.aux.lock().unwrap();
        drop(a);
        drop(g);
    }
}

impl Serialize for Queue {
    fn serialize(&self, w: &mut Writer) {
        w.tag("queue");
    }
}

impl<'de> Deserialize<'de> for Queue {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        match r.raw_token()? {
            "queue" => Ok(Queue::default()),
            t => Err(compact::Error::parse(t, "queue")),
        }
    }
}

pub fn decode_extra(r: &mut Reader<'_>, version: u16) -> Result<Option<u32>, compact::Error> {
    if version >= 2 {
        Ok(Some(u32::deserialize(r)?))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1];
        assert_eq!(v[0], 1);
    }
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_unicode_never_panics(src in unicode()) {
        scan(&src);
    }

    #[test]
    fn rustish_token_soup_never_panics(src in rustish()) {
        scan(&src);
    }

    #[test]
    fn truncated_valid_source_never_panics(cut in 0usize..WHOLE.len()) {
        // Cut at the nearest char boundary at-or-below `cut`.
        let mut at = cut;
        while !WHOLE.is_char_boundary(at) {
            at -= 1;
        }
        scan(WHOLE.get(..at).unwrap_or(""));
    }
}
