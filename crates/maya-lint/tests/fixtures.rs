//! Fixture corpus: every rule has one known-bad and one known-clean
//! file under `tests/fixtures/`. Bad fixtures must produce exactly the
//! expected findings; clean fixtures must produce none.

use maya_lint::config::Config;
use maya_lint::rules;
use maya_lint::{run_sources, scan_file};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Runs the full two-phase analyzer over a set of fixtures, each
/// mounted at a synthetic crate path so the workspace phase treats
/// them as first-party code, and returns the finding lines for
/// `rule`.
fn phase2_findings(fixtures: &[&str], rule: &str) -> Vec<(String, u32)> {
    let sources: Vec<(String, String)> = fixtures
        .iter()
        .enumerate()
        .map(|(i, name)| (format!("crates/fix{i}/src/lib.rs"), fixture(name)))
        .collect();
    let report = run_sources(&sources, &Config::default(), true);
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

fn findings_for(name: &str, rule: &str) -> Vec<u32> {
    let scan = scan_file(name, &fixture(name), &Config::default());
    scan.findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn guard_bad_fires_three_times() {
    let lines = findings_for("guard_bad.rs", rules::GUARD_RULE);
    assert_eq!(lines.len(), 3, "recv, join, accept: {lines:?}");
}

#[test]
fn guard_clean_is_silent() {
    let scan = scan_file(
        "guard_clean.rs",
        &fixture("guard_clean.rs"),
        &Config::default(),
    );
    assert!(scan.findings.is_empty(), "{:?}", scan.findings);
}

#[test]
fn iter_bad_fires_twice() {
    let lines = findings_for("iter_bad.rs", rules::ITER_RULE);
    assert_eq!(lines.len(), 2, "snapshot chain + emit for-loop: {lines:?}");
}

#[test]
fn iter_clean_is_silent() {
    let scan = scan_file(
        "iter_clean.rs",
        &fixture("iter_clean.rs"),
        &Config::default(),
    );
    assert!(scan.findings.is_empty(), "{:?}", scan.findings);
}

#[test]
fn wallclock_bad_fires_twice() {
    let lines = findings_for("wallclock_bad.rs", rules::WALL_CLOCK_RULE);
    assert_eq!(lines.len(), 2, "SystemTime + Instant::now: {lines:?}");
}

#[test]
fn wallclock_clean_is_silent_and_counts_its_allow() {
    let scan = scan_file(
        "wallclock_clean.rs",
        &fixture("wallclock_clean.rs"),
        &Config::default(),
    );
    assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    assert_eq!(scan.suppressed.len(), 1, "the reasoned allow is reported");
    assert_eq!(scan.suppressed[0].rule, rules::WALL_CLOCK_RULE);
    assert!(!scan.suppressed[0].reason.is_empty());
}

#[test]
fn rng_bad_fires_three_times() {
    let lines = findings_for("rng_bad.rs", rules::RNG_RULE);
    assert_eq!(lines.len(), 3, "thread_rng, from_entropy, OsRng: {lines:?}");
}

#[test]
fn rng_clean_is_silent() {
    let scan = scan_file("rng_clean.rs", &fixture("rng_clean.rs"), &Config::default());
    assert!(scan.findings.is_empty(), "{:?}", scan.findings);
}

#[test]
fn panic_bad_counts_every_category() {
    let scan = scan_file("panic_bad.rs", &fixture("panic_bad.rs"), &Config::default());
    assert_eq!(scan.counts.unwrap, 2);
    assert_eq!(scan.counts.expect, 1);
    assert_eq!(scan.counts.panics, 1);
    assert_eq!(scan.counts.index, 2);
    assert_eq!(scan.counts.total(), 6);
}

#[test]
fn panic_clean_counts_nothing() {
    let scan = scan_file(
        "panic_clean.rs",
        &fixture("panic_clean.rs"),
        &Config::default(),
    );
    assert_eq!(scan.counts.total(), 0, "{:?}", scan.counts);
    assert_eq!(scan.suppressed.len(), 1, "the index allow is reported");
    assert_eq!(scan.suppressed[0].rule, rules::PANIC_RULE);
}

#[test]
fn lockorder_bad_finds_the_cycle_and_the_self_loop() {
    let hits = phase2_findings(&["lockorder_bad.rs"], rules::LOCK_ORDER_RULE);
    assert_eq!(hits.len(), 2, "opposite-order pair + re-lock: {hits:?}");
}

#[test]
fn lockorder_clean_is_silent() {
    let hits = phase2_findings(&["lockorder_clean.rs"], rules::LOCK_ORDER_RULE);
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn guard_transitive_bad_fires_at_both_depths() {
    let hits = phase2_findings(&["guard_transitive_bad.rs"], rules::GUARD_RULE);
    assert_eq!(hits.len(), 2, "depth-1 and depth-2 chains: {hits:?}");
}

#[test]
fn guard_transitive_clean_is_silent() {
    let hits = phase2_findings(&["guard_transitive_clean.rs"], rules::GUARD_RULE);
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn codec_bad_finds_tag_field_and_gate_drift() {
    let hits = phase2_findings(&["codec_bad.rs"], rules::CODEC_RULE);
    assert_eq!(
        hits.len(),
        3,
        "tag drift + dropped field + non-tail gate: {hits:?}"
    );
}

#[test]
fn codec_clean_is_silent() {
    let hits = phase2_findings(&["codec_clean.rs"], rules::CODEC_RULE);
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn cross_crate_cycle_resolves_across_fixture_files() {
    // The two halves are clean in isolation; the cycle only exists
    // once the call graph links them.
    for half in ["xcrate/alpha.rs", "xcrate/beta.rs"] {
        let hits = phase2_findings(&[half], rules::LOCK_ORDER_RULE);
        assert!(hits.is_empty(), "{half} alone must be clean: {hits:?}");
    }
    let hits = phase2_findings(
        &["xcrate/alpha.rs", "xcrate/beta.rs"],
        rules::LOCK_ORDER_RULE,
    );
    assert_eq!(hits.len(), 1, "one cycle across the two crates: {hits:?}");
}

#[test]
fn bad_fixtures_fail_a_check_and_clean_ones_pass() {
    // End-to-end shape check: the bad corpus as a whole has findings,
    // the clean corpus none.
    for name in [
        "guard_bad.rs",
        "iter_bad.rs",
        "wallclock_bad.rs",
        "rng_bad.rs",
    ] {
        let scan = scan_file(name, &fixture(name), &Config::default());
        assert!(!scan.findings.is_empty(), "{name} must produce findings");
    }
    for name in [
        "guard_clean.rs",
        "iter_clean.rs",
        "wallclock_clean.rs",
        "rng_clean.rs",
        "panic_clean.rs",
    ] {
        let scan = scan_file(name, &fixture(name), &Config::default());
        assert!(scan.findings.is_empty(), "{name} must be clean");
    }
}
