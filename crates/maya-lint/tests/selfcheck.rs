//! Self-check: the committed workspace must be lint-clean under the
//! committed `lint-budget.toml`. This is the same gate CI runs via
//! `cargo run -p maya-lint -- --check`, embedded as a test so a plain
//! `cargo test` catches regressions too.

use std::path::PathBuf;

use maya_lint::config::Config;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/maya-lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn committed_workspace_is_lint_clean() {
    let root = workspace_root();
    let budget = std::fs::read_to_string(root.join("lint-budget.toml"))
        .expect("lint-budget.toml is committed at the workspace root");
    let cfg = Config::parse(&budget).expect("committed budget parses");
    let report = maya_lint::run_workspace(&root, &cfg).expect("workspace scans");
    assert!(
        !report.failed(),
        "workspace has lint findings or budget violations:\n{}",
        report.render_text()
    );
    assert!(report.files > 100, "walker found the workspace sources");
    // Every suppression in the committed tree carries a reason; the
    // scanner enforces this at parse time, so just assert none slipped
    // through empty.
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn budget_has_no_unexplained_slack() {
    // The ratchet only bites if committed caps track reality: a cap
    // more than 0 above the measured count means someone deleted panic
    // sites without ratcheting. Fail so the budget gets rewritten.
    let root = workspace_root();
    let budget = std::fs::read_to_string(root.join("lint-budget.toml"))
        .expect("lint-budget.toml is committed at the workspace root");
    let cfg = Config::parse(&budget).expect("committed budget parses");
    let report = maya_lint::run_workspace(&root, &cfg).expect("workspace scans");
    let slack: Vec<String> = report
        .budgets
        .iter()
        .filter(|b| b.slack() > 0)
        .map(|b| {
            format!(
                "{} (cap {}, used {})",
                b.krate,
                b.cap.unwrap_or(0),
                b.counts.total()
            )
        })
        .collect();
    assert!(
        slack.is_empty(),
        "budget slack — run `cargo run -p maya-lint -- --write-budget`: {slack:?}"
    );
}
