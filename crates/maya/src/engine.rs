//! The concurrent, cache-sharing prediction engine.
//!
//! [`PredictionEngine`] owns everything one emulation spec needs to turn
//! [`TrainingJob`]s into [`Prediction`]s, re-usably and concurrently:
//!
//! - the caller's estimator, wrapped in a [`CachingEstimator`] so kernel
//!   / memcpy / collective answers are memoized **across** predictions —
//!   config search replays the same shapes thousands of times (Fig. 15,
//!   Table 6), and repeated trials should not re-derive them;
//! - the emulate → collate/dedup → estimate → simulate pipeline of
//!   Figure 5, previously rebuilt per call by `Maya::predict_job`;
//! - a scoped worker pool ([`PredictionEngine::predict_batch`]) that
//!   fans independent predictions across `emulation_threads` OS threads.
//!
//! Every stage is deterministic, so batched predictions are
//! byte-identical to sequential ones — the search layer relies on this
//! to keep speculative batched trials faithful to serial order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

use maya_collate::{collate, dedup_classes, reduce_job, unique_megatron_ranks};
use maya_cuda::{CudaContext, CudaError};
use maya_estimator::{CacheStats, CachingEstimator, RuntimeEstimator};
use maya_hw::{GroundTruthExecutor, Measurement};
use maya_sim::{SimError, SimObs, SimScratch, Simulator};
use maya_torchlet::{FrameworkFlavor, RankTopology, TrainingJob};
use maya_trace::{JobTrace, WorkerTrace};

use crate::cancel::CancelToken;
use crate::error::MayaError;
use crate::pipeline::{EmulationSpec, PredictOutcome, Prediction, StageTimings};

/// Internal OOM verdict from emulation.
pub(crate) struct OomInfo {
    pub(crate) rank: u32,
    pub(crate) peak_attempted: u64,
    pub(crate) workers: usize,
    pub(crate) events: usize,
}

/// Reusable, thread-safe prediction pipeline (see module docs).
pub struct PredictionEngine {
    spec: EmulationSpec,
    base: Arc<dyn RuntimeEstimator>,
    cache: Arc<CachingEstimator>,
    /// Pool of reusable simulator arenas. Every simulate call checks
    /// one out (or starts fresh) and returns it afterwards, so repeated
    /// predictions — a search loop, a serving worker, each thread of a
    /// `predict_batch` fan-out — amortize the sim's allocations. The
    /// pool never exceeds the engine's peak simulate concurrency.
    scratch_pool: Mutex<Vec<SimScratch>>,
    /// Simulator observability sinks, installed at most once (the
    /// serving layer wires them to its metrics registry). Unset — the
    /// default — leaves every simulate call on the uninstrumented
    /// path, which is byte-identical to the instrumented one.
    sim_obs: OnceLock<SimObs>,
}

impl PredictionEngine {
    /// Builds an engine over a spec and estimator. The estimator is
    /// wrapped in a [`CachingEstimator`] shared by every prediction this
    /// engine ever runs.
    pub fn new(spec: EmulationSpec, estimator: Arc<dyn RuntimeEstimator>) -> Self {
        let cache = Arc::new(CachingEstimator::new(estimator));
        PredictionEngine::with_shared_cache(spec, cache)
    }

    /// Builds an engine over an *existing* memo cache (and the
    /// estimator inside it). Estimator answers are pure functions of
    /// the query key and the cluster, so engines whose specs differ
    /// only in pipeline knobs (dedup, selective launch, thread count)
    /// can share one memo — `maya-serve`'s registry uses this to give
    /// every engine on the same cluster the same warm cache.
    pub fn with_shared_cache(spec: EmulationSpec, cache: Arc<CachingEstimator>) -> Self {
        PredictionEngine {
            spec,
            base: Arc::clone(cache.inner()),
            cache,
            scratch_pool: Mutex::new(Vec::new()),
            sim_obs: OnceLock::new(),
        }
    }

    /// Installs simulator observability sinks (event counters, heap
    /// high-water gauge, flow-solver counter, flight recorder). First
    /// install wins; later calls return the rejected sinks back so the
    /// caller can tell nothing happened. All simulate calls from then
    /// on publish their per-run tallies into the installed sinks.
    pub fn install_sim_obs(&self, obs: SimObs) -> Result<(), SimObs> {
        self.sim_obs.set(obs)
    }

    /// The installed simulator observability sinks, if any.
    pub fn sim_obs(&self) -> Option<&SimObs> {
        self.sim_obs.get()
    }

    /// Runs `f` with a pooled simulator arena checked out for the call.
    fn with_sim_scratch<R>(&self, f: impl FnOnce(&mut SimScratch) -> R) -> R {
        let mut scratch = self
            .scratch_pool
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default();
        let out = f(&mut scratch);
        self.scratch_pool
            .lock()
            .expect("scratch pool lock")
            .push(scratch);
        out
    }

    /// The emulation spec in use.
    pub fn spec(&self) -> &EmulationSpec {
        &self.spec
    }

    /// The estimator the engine was built with (unwrapped).
    pub fn base_estimator(&self) -> &Arc<dyn RuntimeEstimator> {
        &self.base
    }

    /// The shared memo cache sitting in front of the estimator.
    pub fn cache(&self) -> &Arc<CachingEstimator> {
        &self.cache
    }

    /// Cumulative estimator-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Transparently traces an arbitrary per-rank workload using the
    /// spec's emulation thread count.
    pub fn trace_workload<F>(
        &self,
        ranks: &[u32],
        script: F,
    ) -> Vec<(WorkerTrace, Result<(), CudaError>)>
    where
        F: Fn(u32, &mut CudaContext) -> Result<(), CudaError> + Sync,
    {
        self.trace_workload_with(ranks, script, self.spec.emulation_threads)
    }

    /// Traces a workload with an explicit thread count (batch mode runs
    /// each member job with sequential emulation and parallelizes across
    /// jobs instead, to avoid nested oversubscription).
    fn trace_workload_with<F>(
        &self,
        ranks: &[u32],
        script: F,
        threads: usize,
    ) -> Vec<(WorkerTrace, Result<(), CudaError>)>
    where
        F: Fn(u32, &mut CudaContext) -> Result<(), CudaError> + Sync,
    {
        let gpu = self.spec.cluster.gpu;
        let threads = threads.max(1);
        if threads <= 1 || ranks.len() <= 1 {
            ranks
                .iter()
                .map(|&r| {
                    let mut ctx = CudaContext::new(r, gpu);
                    let res = script(r, &mut ctx);
                    (ctx.into_trace(), res)
                })
                .collect()
        } else {
            let mut out: Vec<Option<(WorkerTrace, Result<(), CudaError>)>> =
                (0..ranks.len()).map(|_| None).collect();
            let chunk = ranks.len().div_ceil(threads);
            std::thread::scope(|s| {
                for (slot_chunk, rank_chunk) in out.chunks_mut(chunk).zip(ranks.chunks(chunk)) {
                    let script = &script;
                    s.spawn(move || {
                        for (slot, &r) in slot_chunk.iter_mut().zip(rank_chunk) {
                            let mut ctx = CudaContext::new(r, gpu);
                            let res = script(r, &mut ctx);
                            *slot = Some((ctx.into_trace(), res));
                        }
                    });
                }
            });
            out.into_iter()
                .map(|o| o.expect("all slots filled"))
                .collect()
        }
    }

    /// Which ranks to emulate for a job under the current spec.
    fn ranks_to_emulate(&self, job: &TrainingJob) -> Vec<u32> {
        if self.spec.selective_launch && matches!(job.flavor, FrameworkFlavor::Megatron) {
            let topo = RankTopology::new(&job.parallel, job.world);
            unique_megatron_ranks(topo.tp, topo.dp, topo.pp)
        } else {
            (0..job.world).collect()
        }
    }

    /// Emulates a training job. On OOM, collation is skipped — a
    /// partially-OOMed job has incomplete communicator traces — and the
    /// OOM verdict (first rank + attempted peak) is returned instead.
    fn emulate_with(
        &self,
        job: &TrainingJob,
        threads: usize,
    ) -> Result<Result<JobTrace, OomInfo>, MayaError> {
        job.validate()?;
        if job.world != self.spec.cluster.num_gpus() {
            return Err(MayaError::WorldMismatch {
                job: job.world,
                cluster: self.spec.cluster.num_gpus(),
            });
        }
        let ranks = self.ranks_to_emulate(job);
        let traced =
            self.trace_workload_with(&ranks, |rank, ctx| job.run_worker(rank, ctx), threads);
        let mut oom: Option<(u32, u64)> = None;
        let mut workers = Vec::with_capacity(traced.len());
        let mut events = 0usize;
        for (trace, res) in traced {
            match res {
                Ok(()) => {}
                Err(CudaError::MemoryAllocation { requested, .. }) => {
                    if oom.is_none() {
                        oom = Some((
                            trace.rank,
                            trace.summary.peak_mem_bytes.saturating_add(requested),
                        ));
                    }
                }
                Err(e) => return Err(MayaError::Device(e)),
            }
            events += trace.events.len();
            workers.push(trace);
        }
        if let Some((rank, peak_attempted)) = oom {
            return Ok(Err(OomInfo {
                rank,
                peak_attempted,
                workers: workers.len(),
                events,
            }));
        }
        // Selective launch leaves most communicator slots unobserved;
        // supply the authoritative group map from workload knowledge
        // (§7.4's "explicit knowledge of the workload").
        let job_trace =
            if self.spec.selective_launch && matches!(job.flavor, FrameworkFlavor::Megatron) {
                let known = maya_torchlet::engine::megatron_comm_groups(job);
                maya_collate::collate_with_known_groups(workers, job.world, &known)?
            } else {
                collate(workers, job.world)?
            };
        Ok(Ok(job_trace))
    }

    /// Predicts the performance of a training job end-to-end.
    pub fn predict_job(&self, job: &TrainingJob) -> Result<Prediction, MayaError> {
        self.predict_job_with(job, self.spec.emulation_threads)
    }

    fn predict_job_with(
        &self,
        job: &TrainingJob,
        emulation_threads: usize,
    ) -> Result<Prediction, MayaError> {
        // lint:allow(wall-clock-in-output): stage timing telemetry — predicted runtimes come from the simulator, not this clock
        let t0 = Instant::now();
        let emulated = self.emulate_with(job, emulation_threads)?;
        let emulation = t0.elapsed();
        match emulated {
            Err(info) => Ok(Prediction {
                outcome: PredictOutcome::OutOfMemory {
                    rank: info.rank,
                    peak_attempted: info.peak_attempted,
                },
                timings: StageTimings {
                    emulation,
                    ..Default::default()
                },
                workers_emulated: info.workers,
                workers_simulated: 0,
                trace_events: info.events,
            }),
            Ok(job_trace) => self.predict_trace_inner(job_trace, emulation),
        }
    }

    /// Predicts from an already-collated job trace.
    ///
    /// The trace is validated exactly once, here at the boundary; the
    /// rest of the pipeline (dedup, estimation warm pass, simulation)
    /// runs on the prevalidated fast path, so an invalid trace fails
    /// fast before any stage spends time on it.
    pub fn predict_trace(&self, job_trace: JobTrace) -> Result<Prediction, MayaError> {
        job_trace
            .validate()
            .map_err(|m| MayaError::from(SimError::InvalidTrace(m)))?;
        self.predict_trace_inner(job_trace, std::time::Duration::ZERO)
    }

    fn predict_trace_inner(
        &self,
        job_trace: JobTrace,
        emulation: std::time::Duration,
    ) -> Result<Prediction, MayaError> {
        let workers_emulated = job_trace.workers.len();
        // lint:allow(wall-clock-in-output): stage timing telemetry — collation output is trace-derived
        let t1 = Instant::now();
        // Dedup folds ranks with identical traces onto one
        // representative — unsound once per-rank state matters: a
        // hetero pool scales kernels by rank and a fault plan targets
        // specific ranks, so both disable the reduction.
        let rank_uniform = self.spec.cluster.hetero.is_none() && self.spec.faults.is_none();
        let reduced = if self.spec.dedup && rank_uniform {
            let classes = dedup_classes(&job_trace.workers);
            if classes.len() < job_trace.workers.len() {
                reduce_job(&job_trace, &classes)
            } else {
                job_trace
            }
        } else {
            job_trace
        };
        let collation = t1.elapsed();

        // Estimation pre-pass: warm the shared memo cache with every
        // kernel and memcpy duration the simulator is about to ask for.
        // The work is attributed to `StageTimings::estimation` (Table 6 /
        // Fig. 13); the simulator's kernel/memcpy queries then hit the
        // cache. Collective queries resolve during simulation (their
        // participant sets are only known during replay) but are
        // memoized there too. Across trials the cache persists — a warm
        // search loop pays estimation cost only for shapes it has never
        // seen.
        // lint:allow(wall-clock-in-output): stage timing telemetry — estimates come from the memoized estimator
        let t2 = Instant::now();
        let est: &dyn RuntimeEstimator = self.cache.as_ref();
        for w in &reduced.workers {
            for e in w.events.iter() {
                match e.op {
                    maya_trace::DeviceOp::KernelLaunch { kernel } => {
                        let _ = est.kernel_time(&kernel);
                    }
                    maya_trace::DeviceOp::MemcpyAsync { bytes, kind, .. } => {
                        let _ = est.memcpy_time(bytes, kind);
                    }
                    _ => {}
                }
            }
        }
        let estimation = t2.elapsed();

        // Every trace reaching this point is already valid: collate
        // validates its output, `predict_trace` validates caller input,
        // and `reduce_job` preserves validity (asserted by its tests).
        // Skipping re-validation here is what makes a search loop pay
        // the O(events) structural check once instead of per trial.
        // lint:allow(wall-clock-in-output): stage timing telemetry — the sim result is wall-clock-free
        let t3 = Instant::now();
        let report = self.with_sim_scratch(|scratch| {
            Simulator::new(est, &self.spec.cluster)
                .with_faults(self.spec.faults.as_ref())
                .with_obs(self.sim_obs.get())
                .run_prevalidated(&reduced, scratch)
        })?;
        let simulation = t3.elapsed();

        Ok(Prediction {
            outcome: PredictOutcome::Completed(report),
            timings: StageTimings {
                emulation,
                collation,
                estimation,
                simulation,
            },
            workers_emulated,
            workers_simulated: reduced.workers.len(),
            trace_events: reduced.total_events(),
        })
    }

    /// Runs the job on the ground-truth testbed (the stand-in for "actual
    /// deployment" measurements). Emulates *all* ranks — real hardware
    /// cannot deduplicate workers. The outer `Result` carries pipeline
    /// errors; the inner `Err(peak_bytes)` reports an actual OOM.
    pub fn measure_actual(&self, job: &TrainingJob) -> Result<Result<Measurement, u64>, MayaError> {
        job.validate()?;
        if job.world != self.spec.cluster.num_gpus() {
            return Err(MayaError::WorldMismatch {
                job: job.world,
                cluster: self.spec.cluster.num_gpus(),
            });
        }
        let ranks: Vec<u32> = (0..job.world).collect();
        let traced = self.trace_workload(&ranks, |rank, ctx| job.run_worker(rank, ctx));
        let mut workers = Vec::with_capacity(traced.len());
        for (trace, res) in traced {
            match res {
                Ok(()) => workers.push(trace),
                Err(CudaError::MemoryAllocation { .. }) => {
                    let peak = trace.summary.peak_mem_bytes;
                    return Ok(Err(peak));
                }
                Err(e) => return Err(MayaError::Device(e)),
            }
        }
        let job_trace = collate(workers, job.world)?;
        let executor = GroundTruthExecutor::default();
        let m = executor.run(&job_trace, &self.spec.cluster)?;
        Ok(Ok(m))
    }

    /// Predicts a batch of independent jobs, fanning across the spec's
    /// `emulation_threads`.
    ///
    /// Results are positionally aligned with `jobs` and byte-identical
    /// to calling [`PredictionEngine::predict_job`] per job (modulo
    /// wall-clock [`StageTimings`]): the pipeline is deterministic, and
    /// the shared estimator cache memoizes pure functions, so execution
    /// interleaving cannot change any outcome. Member jobs emulate
    /// sequentially; the parallelism is across jobs.
    pub fn predict_batch(&self, jobs: &[TrainingJob]) -> Vec<Result<Prediction, MayaError>> {
        self.predict_batch_with(jobs, None)
    }

    /// [`PredictionEngine::predict_batch`] with cooperative
    /// cancellation. The token is checked once per job, right after it
    /// is claimed by a pool worker: each slot independently either
    /// runs to completion — byte-identical to an uncancelled run — or
    /// resolves to [`MayaError::Cancelled`]. No stage is ever
    /// interrupted mid-flight. With concurrent workers the cancelled
    /// slots need not form a contiguous suffix (two threads can
    /// observe the token on opposite sides of the same instant);
    /// callers needing all-or-nothing semantics should discard the
    /// whole batch when any slot reports `Cancelled`, as the search
    /// scheduler does.
    pub fn predict_batch_with(
        &self,
        jobs: &[TrainingJob],
        cancel: Option<&CancelToken>,
    ) -> Vec<Result<Prediction, MayaError>> {
        let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
        let threads = self.spec.emulation_threads.max(1).min(jobs.len());
        if threads <= 1 || jobs.len() <= 1 {
            // Degenerate batch: hand each job the whole pool instead,
            // so a singleton batch emulates as fast as predict_job.
            return jobs
                .iter()
                .map(|j| {
                    if cancelled() {
                        Err(MayaError::Cancelled)
                    } else {
                        self.predict_job(j)
                    }
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let result = if cancelled() {
                        Err(MayaError::Cancelled)
                    } else {
                        self.predict_job_with(&jobs[i], 1)
                    };
                    // A send can only fail if the receiver was dropped,
                    // which cannot happen while this scope is alive.
                    let _ = tx.send((i, result));
                });
            }
        });
        drop(tx);
        let mut out: Vec<Option<Result<Prediction, MayaError>>> =
            (0..jobs.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("every job slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MayaBuilder;
    use maya_hw::ClusterSpec;
    use maya_torchlet::{ModelSpec, ParallelConfig};
    use maya_trace::Dtype;

    fn job(world: u32, parallel: ParallelConfig, batch: u32) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel,
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: batch * world,
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    #[test]
    fn batch_matches_per_job_predictions() {
        let batched = MayaBuilder::new(ClusterSpec::h100(1, 4))
            .emulation_threads(4)
            .build()
            .unwrap();
        let sequential = MayaBuilder::new(ClusterSpec::h100(1, 4)).build().unwrap();
        let jobs: Vec<TrainingJob> = [
            ParallelConfig::default(),
            ParallelConfig {
                tp: 2,
                ..Default::default()
            },
            ParallelConfig {
                pp: 2,
                ..Default::default()
            },
            ParallelConfig {
                tp: 2,
                pp: 2,
                ..Default::default()
            },
            ParallelConfig {
                microbatch_multiplier: 2,
                ..Default::default()
            },
        ]
        .into_iter()
        .map(|p| job(4, p, 8))
        .collect();
        let batch = batched.predict_batch(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for (j, b) in jobs.iter().zip(&batch) {
            let b = b.as_ref().expect("batch prediction succeeds");
            let s = sequential
                .predict_job(j)
                .expect("sequential prediction succeeds");
            assert_eq!(
                b.iteration_time(),
                s.iteration_time(),
                "config {:?}",
                j.parallel
            );
            assert_eq!(b.oom(), s.oom());
            assert_eq!(b.workers_simulated, s.workers_simulated);
            assert_eq!(b.trace_events, s.trace_events);
        }
    }

    #[test]
    fn batch_reports_errors_positionally() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 4))
            .emulation_threads(2)
            .build()
            .unwrap();
        let good = job(4, ParallelConfig::default(), 8);
        let bad = job(2, ParallelConfig::default(), 8); // world mismatch
        let out = maya.predict_batch(&[good, bad, good]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(MayaError::WorldMismatch { .. })));
        assert!(out[2].is_ok());
    }

    #[test]
    fn repeated_predictions_hit_the_shared_cache() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        let j = job(1, ParallelConfig::default(), 8);
        maya.predict_job(&j).unwrap();
        let after_first = maya.engine().cache_stats();
        maya.predict_job(&j).unwrap();
        let after_second = maya.engine().cache_stats();
        assert!(after_first.misses > 0, "first run must populate the cache");
        assert_eq!(
            after_second.misses, after_first.misses,
            "second identical run must not re-derive any kernel time"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn warm_pass_makes_simulation_queries_hits() {
        // After predict_job, every kernel the simulator asked for was
        // already in the memo: hits >= misses on the very first run
        // (each unique shape missed once in the warm pass, then hit at
        // least once when simulated).
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        maya.predict_job(&job(1, ParallelConfig::default(), 8))
            .unwrap();
        let st = maya.engine().cache_stats();
        assert!(
            st.hits >= st.misses,
            "warm pass should pre-answer the simulator: {st:?}"
        );
    }

    #[test]
    fn pre_cancelled_batch_runs_nothing() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 4))
            .emulation_threads(2)
            .build()
            .unwrap();
        let token = crate::CancelToken::new();
        token.cancel();
        let jobs = vec![job(4, ParallelConfig::default(), 8); 3];
        let out = maya.engine().predict_batch_with(&jobs, Some(&token));
        assert_eq!(out.len(), 3);
        for r in &out {
            assert!(matches!(r, Err(MayaError::Cancelled)), "{r:?}");
        }
        assert_eq!(
            maya.engine().cache_stats().misses,
            0,
            "a pre-cancelled batch must never touch the pipeline"
        );
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 4))
            .emulation_threads(2)
            .build()
            .unwrap();
        let token = crate::CancelToken::new();
        let jobs = vec![
            job(4, ParallelConfig::default(), 8),
            job(
                4,
                ParallelConfig {
                    tp: 2,
                    ..Default::default()
                },
                8,
            ),
        ];
        let with = maya.engine().predict_batch_with(&jobs, Some(&token));
        let without = maya.engine().predict_batch(&jobs);
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(
                a.as_ref().unwrap().iteration_time(),
                b.as_ref().unwrap().iteration_time()
            );
        }
    }

    #[test]
    fn invalid_trace_fails_fast_in_predict_trace() {
        // predict_trace is the one entry point taking a caller-built
        // JobTrace; it must validate exactly once at the boundary and
        // reject before any pipeline stage spends time.
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        let bad = JobTrace {
            nranks: 1,
            workers: vec![WorkerTrace::new(5)], // rank 5 out of range
            comm_groups: std::collections::BTreeMap::new(),
        };
        let err = maya.engine().predict_trace(bad).unwrap_err();
        assert!(
            matches!(err, MayaError::Sim(SimError::InvalidTrace(_))),
            "{err:?}"
        );
        assert_eq!(
            maya.engine().cache_stats().misses,
            0,
            "invalid trace must fail before the estimation warm pass"
        );
    }

    #[test]
    fn valid_trace_predicts_through_scratch_pool() {
        // Same collated trace predicted repeatedly: the pooled scratch
        // path must return identical reports every time.
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        let j = job(1, ParallelConfig::default(), 8);
        let baseline = maya.predict_job(&j).unwrap().iteration_time();
        for _ in 0..3 {
            let p = maya.predict_job(&j).unwrap();
            assert_eq!(p.iteration_time(), baseline);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        assert!(maya.predict_batch(&[]).is_empty());
    }
}
