//! Maya: transparent GPU-runtime-emulation performance modeling.
//!
//! This is the top-level crate of the reproduction of "Maya: Optimizing
//! Deep Learning Training Workloads using GPU Runtime Emulation"
//! (EuroSys '26). It wires the full pipeline of Figure 5:
//!
//! 1. **Emulation** — unmodified training code (anything that programs
//!    against [`maya_cuda::CudaContext`]) runs per rank on a virtual
//!    device; every API call is recorded.
//! 2. **Collation** — per-worker traces merge into a job trace;
//!    collectives are matched by communicator id + sequence number;
//!    dynamic worker deduplication drops redundant ranks.
//! 3. **Estimation** — a pluggable [`maya_estimator::RuntimeEstimator`]
//!    annotates operations with predicted durations.
//! 4. **Simulation** — the event-driven simulator replays the annotated
//!    trace over a cluster spec and produces a [`maya_sim::SimReport`].
//!
//! The pipeline is owned by a reusable [`engine::PredictionEngine`]:
//! it wraps the estimator in a cross-prediction memo cache and fans
//! independent predictions over a worker pool
//! ([`Maya::predict_batch`]), which is what makes large config searches
//! cheap — see `engine`'s module docs.
//!
//! The crate also exposes the *testbed* entry point
//! ([`Maya::measure_actual`]) backed by the independent ground-truth
//! executor, standing in for real-hardware measurements (DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use maya::MayaBuilder;
//! use maya_hw::ClusterSpec;
//! use maya_torchlet::TrainingJob;
//!
//! let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
//! let job = TrainingJob::smoke();
//! let prediction = maya.predict_job(&job).unwrap();
//! assert!(prediction.report().is_some());
//! ```
//!
//! Construction goes through [`MayaBuilder`] — estimator choice
//! ([`builder::EstimatorChoice`]), spec knobs, and an optional
//! warm-start snapshot path. The pre-0.2 constructors
//! (`Maya::with_oracle` / `with_estimator` / `train`) remain as
//! deprecated shims for one release.
//!
//! For serving many clients against many cluster targets from one
//! process, see the `maya-serve` crate: it multiplexes
//! [`PredictionEngine`]s per [`EmulationSpec`] behind a typed
//! request/response API.

pub mod builder;
pub mod cancel;
pub mod engine;
pub mod error;
pub mod pipeline;
pub mod serdes;

pub use builder::{EstimatorChoice, EstimatorFactory, MayaBuilder};
pub use cancel::CancelToken;
pub use engine::PredictionEngine;
pub use error::MayaError;
pub use maya_net::{FaultPlan, RankFailure, StragglerWindow};
pub use maya_sim::SimObs;
pub use pipeline::{EmulationSpec, Maya, PredictOutcome, Prediction, StageTimings};
