//! Cooperative cancellation for long-running pipeline work.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the party
//! that wants work stopped and the party doing it. Cancellation is
//! *cooperative*: the pipeline checks the token only at deterministic
//! boundaries (between batched predictions, between committed search
//! trials), never mid-stage — so everything produced before the stop is
//! byte-identical to the uncancelled run's prefix. Firing the token is
//! idempotent and can never un-fire.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag (see module docs).
///
/// Clones observe the same flag; `Default`/[`CancelToken::new`] start
/// un-cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; observers stop at their next
    /// check point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "cancel must be visible through clones");
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }
}
