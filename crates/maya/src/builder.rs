//! [`MayaBuilder`]: one front door for constructing the Maya runtime.
//!
//! The original API grew a constructor per estimator flavor
//! (`with_oracle`, `with_estimator`, `train`) while the spec knobs
//! lived in struct-literal updates on [`EmulationSpec`]; every caller
//! hand-assembled the same pieces slightly differently. The builder
//! replaces that zoo: pick an estimator ([`EstimatorChoice`]), flip
//! spec knobs, optionally point at a memo snapshot to warm-start from,
//! then [`build`](MayaBuilder::build).
//!
//! ```
//! use maya::MayaBuilder;
//! use maya_hw::ClusterSpec;
//!
//! let maya = MayaBuilder::new(ClusterSpec::h100(1, 4))
//!     .selective_launch(true)
//!     .emulation_threads(2)
//!     .build()
//!     .unwrap();
//! assert_eq!(maya.spec().emulation_threads, 2);
//! ```
//!
//! `maya-serve` uses the same [`EstimatorChoice`] to stamp out one
//! engine per registered cluster target.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use maya_estimator::{ForestEstimator, OracleEstimator, ProfileScale, RuntimeEstimator};
use maya_hw::ClusterSpec;

use crate::engine::PredictionEngine;
use crate::error::MayaError;
use crate::pipeline::{EmulationSpec, Maya};

/// Constructor signature of [`EstimatorChoice::Factory`].
pub type EstimatorFactory = Arc<dyn Fn(&ClusterSpec) -> Arc<dyn RuntimeEstimator> + Send + Sync>;

/// Which runtime estimator a builder (or an engine registry) installs.
///
/// A *choice* rather than an instance so it can be cloned and replayed
/// per cluster: the registry in `maya-serve` builds one estimator per
/// distinct cluster spec from a single configured choice.
#[derive(Clone)]
pub enum EstimatorChoice {
    /// True per-op runtimes (Table 3's "oracle"; fast tests).
    Oracle,
    /// Profile the cluster and train the default random-forest
    /// estimator (the paper's deployment path).
    Forest {
        /// Profiling sweep size.
        scale: ProfileScale,
        /// Training seed.
        seed: u64,
    },
    /// A caller-provided estimator instance, used **as-is for every
    /// cluster**. Estimator answers are cluster-specific, so this is
    /// only sound when all engines built from the choice target the
    /// one cluster the instance was made for — `maya-serve` rejects a
    /// `Custom` choice across multiple distinct clusters; use
    /// [`EstimatorChoice::Factory`] there instead.
    Custom(Arc<dyn RuntimeEstimator>),
    /// A caller-provided constructor invoked per distinct cluster —
    /// the multi-cluster-safe form of `Custom`. The label identifies
    /// the factory's configuration in memo-snapshot scopes; give
    /// different factories different labels.
    Factory {
        /// Stable configuration label (part of the snapshot scope).
        label: String,
        /// Builds the estimator for one cluster.
        make: EstimatorFactory,
    },
}

impl EstimatorChoice {
    /// Instantiates the estimator for a concrete cluster.
    pub fn build(&self, cluster: &ClusterSpec) -> Arc<dyn RuntimeEstimator> {
        match self {
            EstimatorChoice::Oracle => Arc::new(OracleEstimator::new(cluster)),
            EstimatorChoice::Forest { scale, seed } => {
                Arc::new(ForestEstimator::train(cluster, *scale, *seed).0)
            }
            EstimatorChoice::Custom(est) => Arc::clone(est),
            EstimatorChoice::Factory { make, .. } => make(cluster),
        }
    }

    /// Whether [`EstimatorChoice::build`] actually adapts to the
    /// cluster it is given. `Custom` does not — it returns one fixed
    /// instance — so it must not be spread across distinct clusters.
    pub fn is_cluster_aware(&self) -> bool {
        !matches!(self, EstimatorChoice::Custom(_))
    }

    /// Compatibility scope for memo snapshots of this choice on this
    /// cluster: everything the memoized answers depend on beyond the
    /// query keys. Kernel/memcpy memo keys carry no cluster identity —
    /// the same GEMM has different true runtimes on an H100 and an A40
    /// — so the cluster is rendered in full (Rust's float formatting is
    /// shortest-round-trip, so distinct specs always render
    /// distinctly), along with the estimator configuration (training
    /// scale and seed for the forest; only the name is available for
    /// custom estimators, so give those distinct names).
    pub fn memo_scope(&self, cluster: &ClusterSpec) -> String {
        let est = match self {
            EstimatorChoice::Oracle => "oracle".to_string(),
            EstimatorChoice::Forest { scale, seed } => format!("forest:{scale:?}:{seed}"),
            EstimatorChoice::Custom(est) => format!("custom:{}", est.name()),
            EstimatorChoice::Factory { label, .. } => format!("factory:{label}"),
        };
        format!("{est}|{cluster:?}")
    }
}

impl fmt::Debug for EstimatorChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorChoice::Oracle => write!(f, "Oracle"),
            EstimatorChoice::Forest { scale, seed } => f
                .debug_struct("Forest")
                .field("scale", scale)
                .field("seed", seed)
                .finish(),
            EstimatorChoice::Custom(est) => write!(f, "Custom({:?})", est.name()),
            EstimatorChoice::Factory { label, .. } => write!(f, "Factory({label:?})"),
        }
    }
}

/// Builder for [`Maya`] / [`PredictionEngine`] (see module docs).
#[derive(Clone, Debug)]
pub struct MayaBuilder {
    spec: EmulationSpec,
    estimator: EstimatorChoice,
    snapshot: Option<PathBuf>,
    memo_capacity: Option<usize>,
    memo_ttl: Option<std::time::Duration>,
}

impl MayaBuilder {
    /// Starts from [`EmulationSpec::new`] defaults (dedup on, selective
    /// launch off, sequential emulation) with the oracle estimator.
    pub fn new(cluster: ClusterSpec) -> Self {
        MayaBuilder {
            spec: EmulationSpec::new(cluster),
            estimator: EstimatorChoice::Oracle,
            snapshot: None,
            memo_capacity: None,
            memo_ttl: None,
        }
    }

    /// Replaces the whole emulation spec (cluster included).
    pub fn with_spec(mut self, spec: EmulationSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Enables/disables dynamic worker deduplication (§4.2).
    pub fn dedup(mut self, on: bool) -> Self {
        self.spec = self.spec.with_dedup(on);
        self
    }

    /// Enables/disables Megatron-aware selective launch (§7.4).
    pub fn selective_launch(mut self, on: bool) -> Self {
        self.spec = self.spec.with_selective_launch(on);
        self
    }

    /// Sets the emulation/batch worker-thread count.
    pub fn emulation_threads(mut self, threads: usize) -> Self {
        self.spec = self.spec.with_emulation_threads(threads);
        self
    }

    /// Installs a fault-injection plan (stragglers, rank failures);
    /// empty plans are normalized away.
    pub fn faults(mut self, plan: maya_net::FaultPlan) -> Self {
        self.spec = self.spec.with_faults(Some(plan));
        self
    }

    /// Turns every trace-reduction optimization off (the "No
    /// Optimization" columns of Table 6 / Figure 14): dedup and
    /// selective launch. The emulation thread count is not a
    /// trace-reduction knob and is left as configured.
    pub fn without_optimizations(mut self) -> Self {
        self.spec = self.spec.with_dedup(false).with_selective_launch(false);
        self
    }

    /// Uses the oracle estimator (the default).
    pub fn oracle(mut self) -> Self {
        self.estimator = EstimatorChoice::Oracle;
        self
    }

    /// Profiles and trains the random-forest estimator at build time.
    pub fn forest(mut self, scale: ProfileScale, seed: u64) -> Self {
        self.estimator = EstimatorChoice::Forest { scale, seed };
        self
    }

    /// Uses a caller-provided estimator.
    pub fn estimator(mut self, est: Arc<dyn RuntimeEstimator>) -> Self {
        self.estimator = EstimatorChoice::Custom(est);
        self
    }

    /// Sets the estimator by [`EstimatorChoice`].
    pub fn estimator_choice(mut self, choice: EstimatorChoice) -> Self {
        self.estimator = choice;
        self
    }

    /// Bounds the engine's estimator memo to roughly `entries` per
    /// query family (kernel / memcpy / collective) with
    /// least-recently-used eviction; see
    /// [`maya_estimator::CachingEstimator::with_capacity`]. Unbounded
    /// by default — set a cap for long-running engines (a network
    /// service, a days-long search) so a diverse workload cannot grow
    /// the memo without limit. Evictions are counted in
    /// [`maya_estimator::CacheStats::evictions`].
    pub fn memo_capacity(mut self, entries: usize) -> Self {
        self.memo_capacity = Some(entries);
        self
    }

    /// Ages memo entries out after `ttl` (measured from insertion; see
    /// [`maya_estimator::CachingEstimator::with_limits`]). Disabled by
    /// default. The complement of [`MayaBuilder::memo_capacity`] for
    /// long-lived engines: the cap bounds *how many* entries stay, the
    /// TTL bounds *how long* a stale one can linger after the workload
    /// stopped asking for it. Expiries count into
    /// [`maya_estimator::CacheStats::evictions`].
    pub fn memo_ttl(mut self, ttl: std::time::Duration) -> Self {
        self.memo_ttl = Some(ttl);
        self
    }

    /// Arms memo persistence: if a snapshot exists at `path` it is
    /// restored into the engine's cache at build (warm start), and
    /// [`Maya::persist_snapshot`] will write back to the same path. A
    /// missing file is a normal cold start; a corrupt or mismatched one
    /// fails [`build`](MayaBuilder::build).
    pub fn snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot = Some(path.into());
        self
    }

    /// The spec as currently configured.
    pub fn spec(&self) -> &EmulationSpec {
        &self.spec
    }

    /// Builds the bare engine (no facade, no snapshot handling) — what
    /// `maya-serve`'s registry stamps out per cluster spec.
    pub fn build_engine(&self) -> PredictionEngine {
        let cache = maya_estimator::CachingEstimator::with_limits(
            self.estimator.build(&self.spec.cluster),
            self.memo_capacity,
            self.memo_ttl,
        );
        PredictionEngine::with_shared_cache(self.spec.clone(), Arc::new(cache))
    }

    /// Builds the [`Maya`] runtime, restoring the snapshot if one is
    /// configured and present. A snapshot written under a different
    /// cluster or estimator configuration is rejected (its memoized
    /// runtimes would silently poison every prediction).
    pub fn build(self) -> Result<Maya, MayaError> {
        let engine = self.build_engine();
        let snapshot = self.snapshot.map(|path| {
            let scope = self.estimator.memo_scope(&self.spec.cluster);
            (path, scope)
        });
        if let Some((path, scope)) = &snapshot {
            if path.exists() {
                engine.cache().load_snapshot(path, scope)?;
            }
        }
        Ok(Maya::from_engine(engine, snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
    use maya_trace::Dtype;

    fn smoke_job(world: u32) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 8 * world,
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    #[test]
    fn builder_matches_deprecated_constructors() {
        let cluster = ClusterSpec::h100(1, 1);
        let built = MayaBuilder::new(cluster.clone()).build().unwrap();
        #[allow(deprecated)]
        let legacy = Maya::with_oracle(EmulationSpec::new(cluster));
        let job = smoke_job(1);
        assert_eq!(
            built.predict_job(&job).unwrap().iteration_time(),
            legacy.predict_job(&job).unwrap().iteration_time(),
        );
    }

    #[test]
    fn builder_knobs_land_in_the_spec() {
        let spec = MayaBuilder::new(ClusterSpec::h100(1, 8))
            .dedup(false)
            .selective_launch(true)
            .emulation_threads(3)
            .build()
            .unwrap()
            .spec()
            .to_owned();
        assert!(!spec.dedup);
        assert!(spec.selective_launch);
        assert_eq!(spec.emulation_threads, 3);
    }

    #[test]
    fn memo_capacity_bounds_the_engine_cache() {
        let capped = MayaBuilder::new(ClusterSpec::h100(1, 1))
            .memo_capacity(16)
            .build()
            .unwrap();
        // A real prediction derives far more than 16 distinct shapes.
        capped.predict_job(&smoke_job(1)).unwrap();
        let cache = capped.engine().cache();
        assert!(cache.len() <= 16, "len {} exceeds cap", cache.len());
        assert!(capped.engine().cache_stats().evictions > 0);
        // Capped answers still match an uncapped engine's exactly.
        let uncapped = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        assert_eq!(
            capped.predict_job(&smoke_job(1)).unwrap().iteration_time(),
            uncapped
                .predict_job(&smoke_job(1))
                .unwrap()
                .iteration_time()
        );
        assert_eq!(uncapped.engine().cache_stats().evictions, 0);
    }

    #[test]
    fn snapshot_path_round_trips_through_build() {
        let dir = std::env::temp_dir().join(format!("maya-builder-test-{}", std::process::id()));
        let path = dir.join("h100-1.memo");
        let _ = std::fs::remove_file(&path);

        let warm = MayaBuilder::new(ClusterSpec::h100(1, 1))
            .snapshot_path(&path)
            .build()
            .unwrap();
        let job = smoke_job(1);
        warm.predict_job(&job).unwrap();
        assert!(warm.persist_snapshot().unwrap(), "path configured");

        let restored = MayaBuilder::new(ClusterSpec::h100(1, 1))
            .snapshot_path(&path)
            .build()
            .unwrap();
        restored.predict_job(&job).unwrap();
        let st = restored.engine().cache_stats();
        assert_eq!(st.misses, 0, "warm start must answer the repeat workload");
        assert!(st.hits > 0);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn snapshot_for_another_cluster_is_rejected() {
        // Kernel/memcpy memo keys carry no cluster identity and every
        // oracle is named "oracle" — the scope check is the only thing
        // standing between an H100 memo and an A40 engine. Restoring it
        // silently would make the A40 engine serve H100 kernel times.
        let dir = std::env::temp_dir().join(format!("maya-builder-scope-{}", std::process::id()));
        let path = dir.join("cluster.memo");
        let _ = std::fs::remove_file(&path);

        let h100 = MayaBuilder::new(ClusterSpec::h100(1, 1))
            .snapshot_path(&path)
            .build()
            .unwrap();
        h100.predict_job(&smoke_job(1)).unwrap();
        h100.persist_snapshot().unwrap();

        let err = MayaBuilder::new(ClusterSpec::a40(1, 1))
            .snapshot_path(&path)
            .build()
            .err()
            .expect("cross-cluster snapshot must be rejected");
        assert!(
            matches!(
                &err,
                MayaError::Snapshot(maya_estimator::SnapshotError::ScopeMismatch { .. })
            ),
            "{err}"
        );

        // Same cluster but a different estimator configuration is
        // rejected too (a forest memo is not an oracle memo).
        let err = MayaBuilder::new(ClusterSpec::h100(1, 1))
            .forest(maya_estimator::ProfileScale::Test, 1)
            .snapshot_path(&path)
            .build()
            .err()
            .expect("cross-estimator snapshot must be rejected");
        assert!(matches!(err, MayaError::Snapshot(_)), "{err}");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn corrupt_snapshot_fails_build() {
        let dir = std::env::temp_dir().join(format!("maya-builder-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.memo");
        std::fs::write(&path, "definitely not a snapshot").unwrap();
        let err = MayaBuilder::new(ClusterSpec::h100(1, 1))
            .snapshot_path(&path)
            .build()
            .err()
            .expect("corrupt snapshot must fail the build");
        assert!(matches!(err, MayaError::Snapshot(_)), "{err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn missing_snapshot_is_a_cold_start() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1))
            .snapshot_path("/nonexistent/dir/never.memo")
            .build()
            .unwrap();
        assert!(maya.engine().cache().is_empty());
    }
}
