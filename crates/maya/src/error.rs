//! Unified error type for the Maya pipeline.

use std::fmt;

/// Any failure along the emulate-collate-estimate-simulate pipeline.
#[derive(Debug)]
pub enum MayaError {
    /// The job configuration is invalid (divisibility, topology rules).
    Config(maya_torchlet::ConfigError),
    /// A device API call failed for a reason other than OOM (OOM is a
    /// first-class prediction outcome, not an error).
    Device(maya_cuda::CudaError),
    /// Trace collation failed.
    Collate(maya_collate::CollateError),
    /// Simulation failed.
    Sim(maya_sim::SimError),
    /// Ground-truth execution failed.
    Exec(maya_hw::ExecError),
    /// The job's world size disagrees with the cluster.
    WorldMismatch {
        /// Ranks the job wants.
        job: u32,
        /// GPUs the cluster has.
        cluster: u32,
    },
    /// Reading or writing an estimator memo snapshot failed.
    Snapshot(maya_estimator::SnapshotError),
    /// The work was cancelled (via [`crate::CancelToken`]) before this
    /// piece of it ran. Only ever reported for work that never started:
    /// results produced before the cancellation are real and final.
    Cancelled,
}

impl fmt::Display for MayaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MayaError::Config(e) => write!(f, "invalid configuration: {e}"),
            MayaError::Device(e) => write!(f, "device API error: {e}"),
            MayaError::Collate(e) => write!(f, "collation error: {e}"),
            MayaError::Sim(e) => write!(f, "simulation error: {e}"),
            MayaError::Exec(e) => write!(f, "execution error: {e}"),
            MayaError::WorldMismatch { job, cluster } => {
                write!(f, "job wants {job} ranks but cluster has {cluster} GPUs")
            }
            MayaError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            MayaError::Cancelled => write!(f, "cancelled before execution"),
        }
    }
}

impl std::error::Error for MayaError {}

impl From<maya_torchlet::ConfigError> for MayaError {
    fn from(e: maya_torchlet::ConfigError) -> Self {
        MayaError::Config(e)
    }
}

impl From<maya_collate::CollateError> for MayaError {
    fn from(e: maya_collate::CollateError) -> Self {
        MayaError::Collate(e)
    }
}

impl From<maya_sim::SimError> for MayaError {
    fn from(e: maya_sim::SimError) -> Self {
        MayaError::Sim(e)
    }
}

impl From<maya_hw::ExecError> for MayaError {
    fn from(e: maya_hw::ExecError) -> Self {
        MayaError::Exec(e)
    }
}

impl From<maya_estimator::SnapshotError> for MayaError {
    fn from(e: maya_estimator::SnapshotError) -> Self {
        MayaError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = MayaError::WorldMismatch { job: 8, cluster: 4 };
        assert!(e.to_string().contains("8 ranks"));
        let c: MayaError = maya_torchlet::ConfigError::SeqParallelNeedsTp.into();
        assert!(c.to_string().contains("sequence parallelism"));
    }
}
