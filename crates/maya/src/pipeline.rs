//! The end-to-end Maya pipeline: spec and outcome types, plus the
//! [`Maya`] facade over the [`PredictionEngine`].

use std::sync::Arc;

use maya_cuda::{CudaContext, CudaError};
use maya_estimator::{ForestEstimator, OracleEstimator, ProfileScale, RuntimeEstimator};
use maya_hw::{ClusterSpec, Measurement};
use maya_sim::SimReport;
use maya_torchlet::TrainingJob;
use maya_trace::{JobTrace, SimTime, WorkerTrace};

use crate::engine::PredictionEngine;
use crate::error::MayaError;

/// How the virtual runtime is configured ("Emulation Spec" in Figure 5).
///
/// Derives `Eq`/`Hash` (cluster specs compare float bit patterns) so a
/// spec can key an engine registry: `maya-serve` multiplexes one
/// [`PredictionEngine`] per distinct spec, and two clients submitting
/// equal specs share one memo cache.
///
/// Prefer the `with_*` setters over struct-literal updates — they keep
/// working when new knobs are added (the struct is headed for
/// `#[non_exhaustive]` once the workspace stops constructing it
/// literally):
///
/// ```
/// use maya::EmulationSpec;
/// use maya_hw::ClusterSpec;
///
/// let spec = EmulationSpec::new(ClusterSpec::h100(1, 8))
///     .with_selective_launch(true)
///     .with_emulation_threads(4);
/// assert!(spec.dedup && spec.selective_launch);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EmulationSpec {
    /// Target cluster (device type, nodes, interconnects).
    pub cluster: ClusterSpec,
    /// Dynamic worker deduplication (§4.2): simulate one representative
    /// per equivalence class.
    pub dedup: bool,
    /// Megatron-aware selective launch (§7.4): emulate only ahead-of-time
    /// unique ranks. Requires workload knowledge; falls back to full
    /// emulation for non-Megatron flavors.
    pub selective_launch: bool,
    /// Number of OS threads used for concurrent worker emulation and for
    /// batched prediction (1 = sequential).
    pub emulation_threads: usize,
    /// Optional fault-injection plan (stragglers, rank failures).
    /// `None` — and an empty plan — leave predictions byte-identical
    /// to the fault-free core.
    pub faults: Option<maya_net::FaultPlan>,
}

impl EmulationSpec {
    /// Defaults: dedup on, selective launch off, sequential emulation.
    pub fn new(cluster: ClusterSpec) -> Self {
        EmulationSpec {
            cluster,
            dedup: true,
            selective_launch: false,
            emulation_threads: 1,
            faults: None,
        }
    }

    /// Disables all trace-reduction optimizations (the "No Optimization"
    /// columns of Table 6 / Figure 14).
    pub fn without_optimizations(cluster: ClusterSpec) -> Self {
        EmulationSpec {
            cluster,
            dedup: false,
            selective_launch: false,
            emulation_threads: 1,
            faults: None,
        }
    }

    /// Enables/disables dynamic worker deduplication (§4.2).
    pub fn with_dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Enables/disables Megatron-aware selective launch (§7.4).
    pub fn with_selective_launch(mut self, on: bool) -> Self {
        self.selective_launch = on;
        self
    }

    /// Sets the emulation/batch worker-thread count (min 1).
    pub fn with_emulation_threads(mut self, threads: usize) -> Self {
        self.emulation_threads = threads.max(1);
        self
    }

    /// Installs a fault-injection plan (empty plans are normalized to
    /// `None` so they cannot perturb results or cache keys).
    pub fn with_faults(mut self, faults: Option<maya_net::FaultPlan>) -> Self {
        self.faults = faults.filter(|p| !p.is_empty());
        self
    }
}

/// Wall-clock cost of each pipeline stage (Table 6, Figure 13).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Emulation (running workers on virtual devices).
    pub emulation: std::time::Duration,
    /// Collation + deduplication.
    pub collation: std::time::Duration,
    /// Runtime prediction: the pre-pass that warms the engine's shared
    /// estimator cache with every *kernel and memcpy* duration the
    /// simulator will ask for. On a cache-warm engine this approaches
    /// zero — the cost was paid by an earlier prediction.
    pub estimation: std::time::Duration,
    /// Discrete-event simulation. Collective durations resolve here
    /// (their participant sets are only known during replay), though
    /// they too are memoized across predictions.
    pub simulation: std::time::Duration,
}

impl StageTimings {
    /// Total pipeline wall time.
    pub fn total(&self) -> std::time::Duration {
        self.emulation + self.collation + self.estimation + self.simulation
    }
}

/// Outcome of a prediction: a report, or a (predicted!) out-of-memory.
#[derive(Clone, Debug)]
pub enum PredictOutcome {
    /// The workload fits; here is its simulated performance.
    Completed(SimReport),
    /// The emulator's allocator detected OOM on some rank — the paper's
    /// "detect errors such as out-of-memory conditions" (§4.1).
    OutOfMemory {
        /// First rank that over-allocated.
        rank: u32,
        /// Peak bytes it attempted to hold.
        peak_attempted: u64,
    },
}

/// A full prediction with pipeline telemetry.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Prediction outcome.
    pub outcome: PredictOutcome,
    /// Per-stage wall-clock cost.
    pub timings: StageTimings,
    /// Workers actually emulated.
    pub workers_emulated: usize,
    /// Workers simulated after deduplication.
    pub workers_simulated: usize,
    /// Total trace events fed to the simulator.
    pub trace_events: usize,
}

impl Prediction {
    /// The simulation report, if the workload fit in memory.
    pub fn report(&self) -> Option<&SimReport> {
        match &self.outcome {
            PredictOutcome::Completed(r) => Some(r),
            PredictOutcome::OutOfMemory { .. } => None,
        }
    }

    /// Predicted iteration time, if any.
    pub fn iteration_time(&self) -> Option<SimTime> {
        self.report().map(|r| r.total_time)
    }

    /// Whether the config was predicted to OOM.
    pub fn oom(&self) -> bool {
        matches!(self.outcome, PredictOutcome::OutOfMemory { .. })
    }

    /// Renders the prediction as a human-readable JSON object — the
    /// inspectable twin of the compact wire codec (`maya::serdes`).
    /// Wire clients and bench bins dump results with this; it is a
    /// *report* format, not a parse-back format (times in nanoseconds,
    /// stage costs in microseconds).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        out.push_str("{\"outcome\":");
        match &self.outcome {
            PredictOutcome::Completed(r) => {
                let _ = write!(
                    out,
                    "{{\"completed\":{{\"total_time_ns\":{},\"comm_time_ns\":{},\
                     \"compute_time_ns\":{},\"host_time_ns\":{},\"peak_mem_bytes\":{},\
                     \"events_processed\":{},\"rank_end_times_ns\":[",
                    r.total_time.as_ns(),
                    r.comm_time.as_ns(),
                    r.compute_time.as_ns(),
                    r.host_time.as_ns(),
                    r.peak_mem_bytes,
                    r.events_processed,
                );
                for (i, t) in r.rank_end_times.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", t.as_ns());
                }
                out.push_str("]}}");
            }
            PredictOutcome::OutOfMemory {
                rank,
                peak_attempted,
            } => {
                let _ = write!(
                    out,
                    "{{\"oom\":{{\"rank\":{rank},\"peak_attempted_bytes\":{peak_attempted}}}}}"
                );
            }
        }
        let _ = write!(
            out,
            ",\"timings_us\":{{\"emulation\":{},\"collation\":{},\"estimation\":{},\
             \"simulation\":{}}},\"workers_emulated\":{},\"workers_simulated\":{},\
             \"trace_events\":{}}}",
            self.timings.emulation.as_micros(),
            self.timings.collation.as_micros(),
            self.timings.estimation.as_micros(),
            self.timings.simulation.as_micros(),
            self.workers_emulated,
            self.workers_simulated,
            self.trace_events,
        );
        out
    }
}

/// The Maya virtual runtime: a thin facade over [`PredictionEngine`].
///
/// Construct it with [`MayaBuilder`](crate::MayaBuilder) — estimator
/// choice, spec knobs and an optional warm-start snapshot in one place:
///
/// ```
/// use maya::MayaBuilder;
/// use maya_hw::ClusterSpec;
///
/// let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
/// assert_eq!(maya.spec().cluster.num_gpus(), 1);
/// ```
///
/// The predict methods delegate to the engine; callers that want
/// engine-level controls (cache stats, the cache handle itself) reach
/// them through [`Maya::engine`].
pub struct Maya {
    engine: PredictionEngine,
    /// Where [`Maya::persist_snapshot`] writes the estimator memo and
    /// the compatibility scope it is stamped with, as configured by
    /// [`MayaBuilder::snapshot_path`](crate::MayaBuilder::snapshot_path).
    snapshot: Option<(std::path::PathBuf, String)>,
}

impl Maya {
    pub(crate) fn from_engine(
        engine: PredictionEngine,
        snapshot: Option<(std::path::PathBuf, String)>,
    ) -> Self {
        Maya { engine, snapshot }
    }

    /// Builds Maya with a caller-provided estimator.
    #[deprecated(since = "0.2.0", note = "use MayaBuilder::new(cluster).estimator(...)")]
    pub fn with_estimator(spec: EmulationSpec, estimator: Arc<dyn RuntimeEstimator>) -> Self {
        Maya::from_engine(PredictionEngine::new(spec, estimator), None)
    }

    /// Builds Maya with the oracle estimator (true per-op runtimes) —
    /// used for Table 3 and for fast tests.
    #[deprecated(
        since = "0.2.0",
        note = "use MayaBuilder::new(cluster).with_spec(spec)"
    )]
    pub fn with_oracle(spec: EmulationSpec) -> Self {
        let oracle = OracleEstimator::new(&spec.cluster);
        Maya::from_engine(PredictionEngine::new(spec, Arc::new(oracle)), None)
    }

    /// Profiles the cluster and trains the default random-forest
    /// estimator (the paper's deployment path).
    #[deprecated(
        since = "0.2.0",
        note = "use MayaBuilder::new(cluster).forest(scale, seed)"
    )]
    pub fn train(spec: EmulationSpec, scale: ProfileScale, seed: u64) -> Self {
        let (est, _report) = ForestEstimator::train(&spec.cluster, scale, seed);
        Maya::from_engine(PredictionEngine::new(spec, Arc::new(est)), None)
    }

    /// The underlying prediction engine.
    pub fn engine(&self) -> &PredictionEngine {
        &self.engine
    }

    /// Writes the estimator memo to the builder-configured snapshot
    /// path so the next process can warm-start from it. Returns `false`
    /// when no path was configured.
    pub fn persist_snapshot(&self) -> Result<bool, MayaError> {
        match &self.snapshot {
            None => Ok(false),
            Some((path, scope)) => {
                self.engine.cache().write_snapshot(path, scope)?;
                Ok(true)
            }
        }
    }

    /// The emulation spec in use.
    pub fn spec(&self) -> &EmulationSpec {
        self.engine.spec()
    }

    /// The estimator in use (as provided at construction; predictions
    /// actually query it through the engine's shared memo cache).
    pub fn estimator(&self) -> &Arc<dyn RuntimeEstimator> {
        self.engine.base_estimator()
    }

    /// Transparently traces an arbitrary per-rank workload: the Rust
    /// analog of running an unmodified script under the `LD_PRELOAD`
    /// shim. `script` receives `(rank, virtual device)` and may issue any
    /// device API calls.
    pub fn trace_workload<F>(
        &self,
        ranks: &[u32],
        script: F,
    ) -> Vec<(WorkerTrace, Result<(), CudaError>)>
    where
        F: Fn(u32, &mut CudaContext) -> Result<(), CudaError> + Sync,
    {
        self.engine.trace_workload(ranks, script)
    }

    /// Predicts the performance of a training job end-to-end.
    pub fn predict_job(&self, job: &TrainingJob) -> Result<Prediction, MayaError> {
        self.engine.predict_job(job)
    }

    /// Predicts a batch of independent jobs concurrently; results align
    /// positionally with `jobs` and match per-job [`Maya::predict_job`]
    /// outcomes exactly (see [`PredictionEngine::predict_batch`]).
    pub fn predict_batch(&self, jobs: &[TrainingJob]) -> Vec<Result<Prediction, MayaError>> {
        self.engine.predict_batch(jobs)
    }

    /// Predicts from an already-collated job trace (e.g. one produced by
    /// [`Maya::trace_workload`] + [`maya_collate::collate()`]).
    pub fn predict_trace(&self, job_trace: JobTrace) -> Result<Prediction, MayaError> {
        self.engine.predict_trace(job_trace)
    }

    /// Runs the job on the ground-truth testbed (the stand-in for "actual
    /// deployment" measurements). Emulates *all* ranks — real hardware
    /// cannot deduplicate workers.
    pub fn measure_actual(&self, job: &TrainingJob) -> Result<Result<Measurement, u64>, MayaError> {
        self.engine.measure_actual(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MayaBuilder;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig};
    use maya_trace::Dtype;

    fn h100_job(world: u32, parallel: ParallelConfig) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel,
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 8 * world,
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    #[test]
    fn single_gpu_prediction_completes() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        let p = maya
            .predict_job(&h100_job(1, ParallelConfig::default()))
            .unwrap();
        let r = p.report().expect("no OOM");
        assert!(r.total_time > SimTime::from_ms(1.0), "{}", r.total_time);
        assert!(r.total_time < SimTime::from_secs(60.0));
        assert_eq!(p.workers_emulated, 1);
    }

    #[test]
    fn dp_dedup_simulates_one_worker() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 4)).build().unwrap();
        let p = maya
            .predict_job(&h100_job(4, ParallelConfig::default()))
            .unwrap();
        assert_eq!(p.workers_emulated, 4);
        assert_eq!(p.workers_simulated, 1, "pure DP deduplicates to one class");
        assert!(p.report().is_some());
    }

    #[test]
    fn selective_launch_emulates_stage_leaders_only() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 4))
            .selective_launch(true)
            .build()
            .unwrap();
        let par = ParallelConfig {
            pp: 2,
            ..Default::default()
        };
        let p = maya.predict_job(&h100_job(4, par)).unwrap();
        assert_eq!(p.workers_emulated, 2, "one leader per pipeline stage");
        assert!(p.report().is_some());
    }

    #[test]
    fn tp_pp_dp_job_predicts() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 8)).build().unwrap();
        let par = ParallelConfig {
            tp: 2,
            pp: 2,
            microbatch_multiplier: 2,
            ..Default::default()
        };
        let p = maya.predict_job(&h100_job(8, par)).unwrap();
        let r = p.report().expect("completes");
        assert!(r.comm_time > SimTime::ZERO, "tp/pp/dp must communicate");
    }

    #[test]
    fn oom_is_an_outcome_not_an_error() {
        // GPT3-2.7B on a single H100 with a huge batch: no recompute, so
        // activations blow past 80 GB.
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        let job = TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            global_batch: 64,
            ..h100_job(1, ParallelConfig::default())
        };
        let p = maya.predict_job(&job).unwrap();
        assert!(p.oom(), "expected OOM, got {:?}", p.iteration_time());
    }

    #[test]
    fn recompute_rescues_oom() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 1)).build().unwrap();
        // Recompute plus gradient accumulation (8 microbatches) keeps
        // both stored activations and the transient recompute buffer small.
        let par = ParallelConfig {
            activation_recompute: true,
            microbatch_multiplier: 8,
            ..Default::default()
        };
        let job = TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            global_batch: 64,
            ..h100_job(1, par)
        };
        let p = maya.predict_job(&job).unwrap();
        assert!(!p.oom(), "recompute should fit");
        // And it should be slower per useful FLOP than a fitting config
        // would be — sanity: the run takes real time.
        assert!(p.iteration_time().unwrap() > SimTime::from_ms(10.0));
    }

    #[test]
    fn world_mismatch_rejected() {
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 8)).build().unwrap();
        let err = maya
            .predict_job(&h100_job(4, ParallelConfig::default()))
            .unwrap_err();
        assert!(matches!(err, MayaError::WorldMismatch { .. }));
    }

    #[test]
    fn actual_measurement_close_to_oracle_prediction() {
        // The Table 3 structure: oracle prediction vs. testbed truth.
        let maya = MayaBuilder::new(ClusterSpec::h100(1, 2)).build().unwrap();
        let par = ParallelConfig {
            tp: 2,
            ..Default::default()
        };
        let job = h100_job(2, par);
        let pred = maya.predict_job(&job).unwrap();
        let actual = maya.measure_actual(&job).unwrap().expect("fits");
        let p = pred.iteration_time().unwrap().as_secs_f64();
        let a = actual.iteration_time.as_secs_f64();
        let err = (p / a - 1.0).abs();
        assert!(
            err < 0.08,
            "oracle error {:.2}% (pred {p:.4}s actual {a:.4}s)",
            err * 100.0
        );
    }

    #[test]
    fn trace_workload_accepts_arbitrary_scripts() {
        let maya = MayaBuilder::new(ClusterSpec::a40(1, 2)).build().unwrap();
        let traces = maya.trace_workload(&[0, 1], |_rank, ctx| {
            let h = ctx.cublas_create();
            ctx.cublas_sgemm(h, 256, 256, 256)?;
            ctx.device_synchronize();
            Ok(())
        });
        assert_eq!(traces.len(), 2);
        assert!(traces
            .iter()
            .all(|(t, r)| r.is_ok() && t.summary.num_kernels == 1));
    }

    #[test]
    fn parallel_emulation_matches_sequential() {
        let seq_maya = MayaBuilder::new(ClusterSpec::h100(1, 4)).build().unwrap();
        let job = h100_job(
            4,
            ParallelConfig {
                tp: 2,
                ..Default::default()
            },
        );
        let p1 = seq_maya.predict_job(&job).unwrap();
        let par_maya = MayaBuilder::new(ClusterSpec::h100(1, 4))
            .emulation_threads(4)
            .build()
            .unwrap();
        let p2 = par_maya.predict_job(&job).unwrap();
        assert_eq!(
            p1.iteration_time().unwrap(),
            p2.iteration_time().unwrap(),
            "emulation is deterministic regardless of threading"
        );
    }
}
