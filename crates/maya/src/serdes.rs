//! Wire codecs for the prediction vocabulary, over the vendored serde's
//! compact token format.
//!
//! [`Prediction`] (and everything inside it — [`PredictOutcome`],
//! [`maya_sim::SimReport`], [`StageTimings`]) round-trips exactly, so a
//! `maya-wire` client receives predictions byte-identical to a direct
//! engine call. [`MayaError`] is serialize-only: the inner error trees
//! hold things a remote process cannot reconstruct (`std::io::Error`,
//! borrowed diagnostics), so the wire carries a stable *kind code* plus
//! the rendered message, and the client surfaces them as a typed remote
//! error rather than a rebuilt `MayaError`.

use serde::{compact, Deserialize, Serialize};

use crate::error::MayaError;
use crate::pipeline::{PredictOutcome, Prediction, StageTimings};

impl Serialize for StageTimings {
    fn serialize(&self, w: &mut compact::Writer) {
        self.emulation.serialize(w);
        self.collation.serialize(w);
        self.estimation.serialize(w);
        self.simulation.serialize(w);
    }
}

impl<'de> Deserialize<'de> for StageTimings {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(StageTimings {
            emulation: Deserialize::deserialize(r)?,
            collation: Deserialize::deserialize(r)?,
            estimation: Deserialize::deserialize(r)?,
            simulation: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for PredictOutcome {
    fn serialize(&self, w: &mut compact::Writer) {
        match self {
            PredictOutcome::Completed(report) => {
                w.tag("completed");
                report.serialize(w);
            }
            PredictOutcome::OutOfMemory {
                rank,
                peak_attempted,
            } => {
                w.tag("oom");
                (*rank, *peak_attempted).serialize(w);
            }
        }
    }
}

impl<'de> Deserialize<'de> for PredictOutcome {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "completed" => PredictOutcome::Completed(Deserialize::deserialize(r)?),
            "oom" => {
                let (rank, peak_attempted) = Deserialize::deserialize(r)?;
                PredictOutcome::OutOfMemory {
                    rank,
                    peak_attempted,
                }
            }
            t => return Err(compact::Error::parse(t, "predict outcome")),
        })
    }
}

impl Serialize for Prediction {
    fn serialize(&self, w: &mut compact::Writer) {
        self.outcome.serialize(w);
        self.timings.serialize(w);
        (
            self.workers_emulated,
            self.workers_simulated,
            self.trace_events,
        )
            .serialize(w);
    }
}

impl<'de> Deserialize<'de> for Prediction {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let outcome = Deserialize::deserialize(r)?;
        let timings = Deserialize::deserialize(r)?;
        let (workers_emulated, workers_simulated, trace_events) = Deserialize::deserialize(r)?;
        Ok(Prediction {
            outcome,
            timings,
            workers_emulated,
            workers_simulated,
            trace_events,
        })
    }
}

/// Stable wire code naming a [`MayaError`] variant. Part of the wire
/// format: `maya-wire` decodes these codes into its typed remote-error
/// kinds, so renaming one is a protocol change.
pub fn error_code(e: &MayaError) -> &'static str {
    match e {
        MayaError::Config(_) => "config",
        MayaError::Device(_) => "device",
        MayaError::Collate(_) => "collate",
        MayaError::Sim(_) => "sim",
        MayaError::Exec(_) => "exec",
        MayaError::WorldMismatch { .. } => "world_mismatch",
        MayaError::Snapshot(_) => "snapshot",
        MayaError::Cancelled => "cancelled",
    }
}

/// Serialize-only (see module docs): a stable kind code plus the
/// rendered message.
impl Serialize for MayaError {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(error_code(self));
        w.str_token(&self.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_sim::SimReport;
    use maya_trace::SimTime;
    use std::time::Duration;

    fn prediction() -> Prediction {
        Prediction {
            outcome: PredictOutcome::Completed(SimReport {
                total_time: SimTime::from_ms(42.0),
                rank_end_times: vec![SimTime::from_ms(41.0), SimTime::from_ms(42.0)],
                comm_time: SimTime::from_ms(10.0),
                compute_time: SimTime::from_ms(30.0),
                host_time: SimTime::from_ms(2.0),
                peak_mem_bytes: 1 << 34,
                events_processed: 12345,
            }),
            timings: StageTimings {
                emulation: Duration::from_micros(1500),
                collation: Duration::from_nanos(999_999_999),
                estimation: Duration::from_millis(2),
                simulation: Duration::from_secs(1),
            },
            workers_emulated: 8,
            workers_simulated: 2,
            trace_events: 4096,
        }
    }

    #[test]
    fn predictions_round_trip_exactly() {
        for p in [
            prediction(),
            Prediction {
                outcome: PredictOutcome::OutOfMemory {
                    rank: 3,
                    peak_attempted: u64::MAX,
                },
                ..prediction()
            },
        ] {
            let text = serde::to_string(&p);
            let back: Prediction = serde::from_str(&text).expect("decode");
            assert_eq!(serde::to_string(&back), text, "re-encode mismatch");
        }
    }

    #[test]
    fn error_codes_are_stable_and_messages_survive() {
        let e = MayaError::WorldMismatch { job: 8, cluster: 4 };
        assert_eq!(error_code(&e), "world_mismatch");
        let text = serde::to_string(&e);
        let mut r = compact::Reader::new(&text);
        r.expect_tag("world_mismatch").unwrap();
        let msg = r.str_token().unwrap();
        assert!(msg.contains("8 ranks"), "{msg}");
        r.end().unwrap();
    }
}
