//! Wire codecs for the search vocabulary, over the vendored serde's
//! compact token format.
//!
//! A remote `Search` request carries a [`ConfigSpace`] and an
//! [`AlgorithmKind`] to the service; the [`SearchResult`] travels back
//! whole — best point, every trial record, stats, convergence curve —
//! so a wire client sees exactly what a direct caller of
//! `TrialScheduler::run_batched` would. Floats (MFU, cost, convergence)
//! serialize as IEEE-754 bit patterns, so the round trip is bit-exact
//! and "byte-identical to a direct call" holds across the network.

use serde::{compact, Deserialize, Serialize};

use crate::algorithms::AlgorithmKind;
use crate::objective::{Provenance, TrialOutcome, TrialRecord};
use crate::scheduler::{SearchResult, SearchStats};
use crate::space::ConfigSpace;

impl Serialize for AlgorithmKind {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(match self {
            AlgorithmKind::CmaEs => "cma_es",
            AlgorithmKind::OnePlusOne => "one_plus_one",
            AlgorithmKind::Pso => "pso",
            AlgorithmKind::TwoPointsDe => "two_points_de",
            AlgorithmKind::Random => "random",
            AlgorithmKind::Grid => "grid",
        });
    }
}

impl<'de> Deserialize<'de> for AlgorithmKind {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "cma_es" => AlgorithmKind::CmaEs,
            "one_plus_one" => AlgorithmKind::OnePlusOne,
            "pso" => AlgorithmKind::Pso,
            "two_points_de" => AlgorithmKind::TwoPointsDe,
            "random" => AlgorithmKind::Random,
            "grid" => AlgorithmKind::Grid,
            t => return Err(compact::Error::parse(t, "algorithm kind")),
        })
    }
}

impl Serialize for ConfigSpace {
    fn serialize(&self, w: &mut compact::Writer) {
        self.tp.serialize(w);
        self.pp.serialize(w);
        self.microbatch_multiplier.serialize(w);
        self.virtual_stages.serialize(w);
        self.activation_recompute.serialize(w);
        self.sequence_parallel.serialize(w);
        self.distributed_optimizer.serialize(w);
    }
}

impl<'de> Deserialize<'de> for ConfigSpace {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(ConfigSpace {
            tp: Deserialize::deserialize(r)?,
            pp: Deserialize::deserialize(r)?,
            microbatch_multiplier: Deserialize::deserialize(r)?,
            virtual_stages: Deserialize::deserialize(r)?,
            activation_recompute: Deserialize::deserialize(r)?,
            sequence_parallel: Deserialize::deserialize(r)?,
            distributed_optimizer: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for TrialOutcome {
    fn serialize(&self, w: &mut compact::Writer) {
        match *self {
            TrialOutcome::Invalid => w.tag("invalid"),
            TrialOutcome::Oom => w.tag("oom"),
            TrialOutcome::Completed {
                iteration_time,
                mfu,
                cost,
            } => {
                w.tag("completed");
                iteration_time.serialize(w);
                mfu.serialize(w);
                cost.serialize(w);
            }
        }
    }
}

impl<'de> Deserialize<'de> for TrialOutcome {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "invalid" => TrialOutcome::Invalid,
            "oom" => TrialOutcome::Oom,
            "completed" => TrialOutcome::Completed {
                iteration_time: Deserialize::deserialize(r)?,
                mfu: Deserialize::deserialize(r)?,
                cost: Deserialize::deserialize(r)?,
            },
            t => return Err(compact::Error::parse(t, "trial outcome")),
        })
    }
}

impl Serialize for Provenance {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(match self {
            Provenance::Executed => "executed",
            Provenance::Cached => "cached",
            Provenance::Skipped => "skipped",
        });
    }
}

impl<'de> Deserialize<'de> for Provenance {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "executed" => Provenance::Executed,
            "cached" => Provenance::Cached,
            "skipped" => Provenance::Skipped,
            t => return Err(compact::Error::parse(t, "provenance")),
        })
    }
}

impl Serialize for TrialRecord {
    fn serialize(&self, w: &mut compact::Writer) {
        self.config.serialize(w);
        self.outcome.serialize(w);
        self.provenance.serialize(w);
    }
}

impl<'de> Deserialize<'de> for TrialRecord {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(TrialRecord {
            config: Deserialize::deserialize(r)?,
            outcome: Deserialize::deserialize(r)?,
            provenance: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for SearchStats {
    fn serialize(&self, w: &mut compact::Writer) {
        (self.executed, self.cached, self.skipped).serialize(w);
        self.invalid.serialize(w);
    }
}

impl<'de> Deserialize<'de> for SearchStats {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let (executed, cached, skipped) = Deserialize::deserialize(r)?;
        Ok(SearchStats {
            executed,
            cached,
            skipped,
            invalid: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for SearchResult {
    fn serialize(&self, w: &mut compact::Writer) {
        match &self.best {
            None => w.tag("none"),
            Some((config, outcome)) => {
                w.tag("some");
                config.serialize(w);
                outcome.serialize(w);
            }
        }
        self.trials.serialize(w);
        self.stats.serialize(w);
        self.wall.serialize(w);
        self.convergence.serialize(w);
    }
}

impl<'de> Deserialize<'de> for SearchResult {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let best = match r.raw_token()? {
            "none" => None,
            "some" => Some((Deserialize::deserialize(r)?, Deserialize::deserialize(r)?)),
            t => return Err(compact::Error::parse(t, "option tag (none|some)")),
        };
        Ok(SearchResult {
            best,
            trials: Deserialize::deserialize(r)?,
            stats: Deserialize::deserialize(r)?,
            wall: Deserialize::deserialize(r)?,
            convergence: Deserialize::deserialize(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_torchlet::ParallelConfig;
    use maya_trace::SimTime;
    use std::time::Duration;

    #[test]
    fn algorithm_kinds_round_trip() {
        for a in AlgorithmKind::all() {
            let back: AlgorithmKind = serde::from_str(&serde::to_string(&a)).unwrap();
            assert_eq!(back, a);
        }
    }

    #[test]
    fn search_results_round_trip() {
        let outcome = TrialOutcome::Completed {
            iteration_time: SimTime::from_ms(12.5),
            mfu: 0.41,
            cost: 1.0 / 3.0,
        };
        let result = SearchResult {
            best: Some((ParallelConfig::default(), outcome)),
            trials: vec![
                TrialRecord {
                    config: ParallelConfig::default(),
                    outcome,
                    provenance: Provenance::Executed,
                },
                TrialRecord {
                    config: ParallelConfig {
                        tp: 8,
                        ..Default::default()
                    },
                    outcome: TrialOutcome::Invalid,
                    provenance: Provenance::Skipped,
                },
                TrialRecord {
                    config: ParallelConfig {
                        pp: 2,
                        ..Default::default()
                    },
                    outcome: TrialOutcome::Oom,
                    provenance: Provenance::Cached,
                },
            ],
            stats: SearchStats {
                executed: 1,
                cached: 1,
                skipped: 1,
                invalid: 1,
            },
            wall: Duration::from_micros(123_456),
            convergence: vec![0.1, 0.3, 0.41],
        };
        let text = serde::to_string(&result);
        let back: SearchResult = serde::from_str(&text).unwrap();
        assert_eq!(back.best, result.best);
        assert_eq!(back.trials, result.trials);
        assert_eq!(back.stats, result.stats);
        assert_eq!(back.wall, result.wall);
        assert_eq!(
            back.convergence
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            result
                .convergence
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(serde::to_string(&back), text);
    }

    #[test]
    fn config_spaces_round_trip() {
        let s = ConfigSpace::default();
        let back: ConfigSpace = serde::from_str(&serde::to_string(&s)).unwrap();
        assert_eq!(back.cardinality(), s.cardinality());
        assert_eq!(back.enumerate(), s.enumerate());
    }
}
