//! The configuration space of Table 5.

use maya_torchlet::ParallelConfig;

/// One point in the knob space (a candidate training recipe).
pub type ConfigPoint = ParallelConfig;

/// The searchable knob space (defaults match the paper's Table 5).
#[derive(Clone, Debug)]
pub struct ConfigSpace {
    /// Tensor-parallel degrees.
    pub tp: Vec<u32>,
    /// Pipeline-parallel degrees.
    pub pp: Vec<u32>,
    /// Microbatch multipliers.
    pub microbatch_multiplier: Vec<u32>,
    /// Virtual stage counts.
    pub virtual_stages: Vec<u32>,
    /// Activation recomputation choices.
    pub activation_recompute: Vec<bool>,
    /// Sequence parallelism choices.
    pub sequence_parallel: Vec<bool>,
    /// Distributed optimizer choices.
    pub distributed_optimizer: Vec<bool>,
}

impl Default for ConfigSpace {
    fn default() -> Self {
        ConfigSpace {
            tp: vec![1, 2, 4, 8],
            pp: vec![1, 2, 4, 8],
            microbatch_multiplier: vec![1, 2, 4, 6, 8],
            virtual_stages: vec![1, 2, 4],
            activation_recompute: vec![true, false],
            sequence_parallel: vec![true, false],
            distributed_optimizer: vec![true, false],
        }
    }
}

impl ConfigSpace {
    /// Number of search dimensions.
    pub const DIMS: usize = 7;

    /// Total points in the Cartesian product (before validity filtering).
    pub fn cardinality(&self) -> usize {
        self.tp.len()
            * self.pp.len()
            * self.microbatch_multiplier.len()
            * self.virtual_stages.len()
            * self.activation_recompute.len()
            * self.sequence_parallel.len()
            * self.distributed_optimizer.len()
    }

    /// Maps a unit-cube vector (one coordinate per knob) to a point.
    pub fn from_unit(&self, v: &[f64]) -> ConfigPoint {
        fn pick<T: Copy>(choices: &[T], x: f64) -> T {
            let i = ((x.clamp(0.0, 1.0 - 1e-9)) * choices.len() as f64) as usize;
            choices[i.min(choices.len() - 1)]
        }
        ConfigPoint {
            tp: pick(&self.tp, v[0]),
            pp: pick(&self.pp, v[1]),
            microbatch_multiplier: pick(&self.microbatch_multiplier, v[2]),
            virtual_stages: pick(&self.virtual_stages, v[3]),
            activation_recompute: pick(&self.activation_recompute, v[4]),
            sequence_parallel: pick(&self.sequence_parallel, v[5]),
            distributed_optimizer: pick(&self.distributed_optimizer, v[6]),
        }
    }

    /// Enumerates every point (grid search order).
    pub fn enumerate(&self) -> Vec<ConfigPoint> {
        let mut out = Vec::with_capacity(self.cardinality());
        for &tp in &self.tp {
            for &pp in &self.pp {
                for &mm in &self.microbatch_multiplier {
                    for &vs in &self.virtual_stages {
                        for &ar in &self.activation_recompute {
                            for &sp in &self.sequence_parallel {
                                for &dopt in &self.distributed_optimizer {
                                    out.push(ConfigPoint {
                                        tp,
                                        pp,
                                        microbatch_multiplier: mm,
                                        virtual_stages: vs,
                                        activation_recompute: ar,
                                        sequence_parallel: sp,
                                        distributed_optimizer: dopt,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_paper_scale() {
        let s = ConfigSpace::default();
        // 4*4*5*3*2*2*2 = 1920 ~ "about 2000 points" (§7.1).
        assert_eq!(s.cardinality(), 1920);
        assert_eq!(s.enumerate().len(), 1920);
    }

    #[test]
    fn unit_mapping_covers_extremes() {
        let s = ConfigSpace::default();
        let lo = s.from_unit(&[0.0; 7]);
        assert_eq!((lo.tp, lo.pp), (1, 1));
        assert!(lo.activation_recompute, "first choice is true");
        let hi = s.from_unit(&[0.999; 7]);
        assert_eq!((hi.tp, hi.pp), (8, 8));
        assert_eq!(hi.microbatch_multiplier, 8);
        assert!(!hi.distributed_optimizer);
    }

    #[test]
    fn unit_mapping_is_total_on_the_cube() {
        let s = ConfigSpace::default();
        for i in 0..100 {
            let x = i as f64 / 99.0;
            let _ = s.from_unit(&[x; 7]); // must not panic
        }
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let s = ConfigSpace::default();
        let mut v = s.enumerate();
        let n = v.len();
        v.sort_by_key(|c| format!("{c}"));
        v.dedup();
        assert_eq!(v.len(), n);
    }
}
