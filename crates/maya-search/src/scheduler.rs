//! Concurrent trial scheduling with caching, fidelity-preserving pruning
//! (Table 10) and early stopping.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use maya_trace::SimTime;

use crate::algorithms::AlgorithmKind;
use crate::objective::{Objective, Provenance, TrialOutcome, TrialRecord};
use crate::space::{ConfigPoint, ConfigSpace};

/// Counters for Fig. 15's trial-status breakdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Trials that ran the full pipeline.
    pub executed: usize,
    /// Trials answered from the result cache.
    pub cached: usize,
    /// Trials answered by a pruning tactic.
    pub skipped: usize,
    /// Structurally invalid candidates proposed by the optimizer.
    pub invalid: usize,
}

/// Search outcome.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best completing configuration found, with its outcome.
    pub best: Option<(ConfigPoint, TrialOutcome)>,
    /// Every trial in evaluation order.
    pub trials: Vec<TrialRecord>,
    /// Status counters.
    pub stats: SearchStats,
    /// Wall-clock duration of the search.
    pub wall: Duration,
    /// Convergence curve: best MFU after each *unique valid* config.
    pub convergence: Vec<f64>,
}

impl SearchResult {
    /// Best iteration time, if any config completed.
    pub fn best_time(&self) -> Option<SimTime> {
        self.best.as_ref().and_then(|(_, o)| o.time())
    }
}

/// Trial scheduler: wraps an objective with caching, pruning tactics and
/// the paper's early-stopping rule.
pub struct TrialScheduler<'a> {
    objective: &'a Objective<'a>,
    space: ConfigSpace,
    /// Enable the Table 10 pruning tactics.
    pub pruning: bool,
    /// Stop after the top-5 MFU set is unchanged for this many
    /// consecutive non-OOM configs (paper: 20). `None` disables.
    pub early_stop_patience: Option<usize>,
    cache: HashMap<ConfigPoint, TrialOutcome>,
    stats: SearchStats,
    trials: Vec<TrialRecord>,
    convergence: Vec<f64>,
    top5: Vec<f64>,
    stable_streak: usize,
}

impl<'a> TrialScheduler<'a> {
    /// Creates a scheduler over the default Table 5 space.
    pub fn new(objective: &'a Objective<'a>) -> Self {
        TrialScheduler {
            objective,
            space: ConfigSpace::default(),
            pruning: true,
            early_stop_patience: Some(20),
            cache: HashMap::new(),
            stats: SearchStats::default(),
            trials: Vec::new(),
            convergence: Vec::new(),
            top5: Vec::new(),
            stable_streak: 0,
        }
    }

    /// Replaces the search space.
    pub fn with_space(mut self, space: ConfigSpace) -> Self {
        self.space = space;
        self
    }

    /// Applies the Table 10 tactics: can this config's outcome be derived
    /// from an already-evaluated neighbor?
    fn prune(&self, c: &ConfigPoint) -> Option<TrialOutcome> {
        if !self.pruning {
            return None;
        }
        // Tactic 1: recomputation strictly reduces memory. If the
        // recompute-enabled twin OOMed, this one will too.
        if !c.activation_recompute {
            let twin = ConfigPoint { activation_recompute: true, ..*c };
            if self.cache.get(&twin) == Some(&TrialOutcome::Oom) {
                return Some(TrialOutcome::Oom);
            }
        }
        // Tactic 2: sequence parallelism strictly reduces memory at no
        // communication cost. Same reasoning.
        if !c.sequence_parallel && c.tp > 1 {
            let twin = ConfigPoint { sequence_parallel: true, ..*c };
            if self.cache.get(&twin) == Some(&TrialOutcome::Oom) {
                return Some(TrialOutcome::Oom);
            }
        }
        // Tactic 3: the distributed optimizer only reduces memory (same
        // runtime to first order); if the non-sharded twin fit, reuse its
        // runtime.
        if c.distributed_optimizer {
            let twin = ConfigPoint { distributed_optimizer: false, ..*c };
            if let Some(o @ TrialOutcome::Completed { .. }) = self.cache.get(&twin) {
                return Some(*o);
            }
        }
        // Tactic 4: without pipeline parallelism, more microbatches only
        // lose efficiency; reuse the smaller-count runtime.
        if c.pp == 1 && c.microbatch_multiplier > 1 {
            for smaller in self.space.microbatch_multiplier.iter().copied() {
                if smaller < c.microbatch_multiplier {
                    let twin = ConfigPoint { microbatch_multiplier: smaller, ..*c };
                    if let Some(o @ TrialOutcome::Completed { .. }) = self.cache.get(&twin) {
                        return Some(*o);
                    }
                }
            }
        }
        None
    }

    /// Evaluates one config through cache -> pruning -> pipeline.
    pub fn evaluate(&mut self, c: &ConfigPoint) -> TrialOutcome {
        if let Some(o) = self.cache.get(c) {
            self.stats.cached += 1;
            self.trials.push(TrialRecord { config: *c, outcome: *o, provenance: Provenance::Cached });
            return *o;
        }
        let (outcome, provenance) = match self.prune(c) {
            Some(o) => {
                self.stats.skipped += 1;
                (o, Provenance::Skipped)
            }
            None => {
                let o = self.objective.evaluate(c);
                if o == TrialOutcome::Invalid {
                    self.stats.invalid += 1;
                } else {
                    self.stats.executed += 1;
                }
                (o, Provenance::Executed)
            }
        };
        self.cache.insert(*c, outcome);
        self.trials.push(TrialRecord { config: *c, outcome, provenance });
        // Track convergence + early stopping on unique valid configs.
        if outcome != TrialOutcome::Invalid {
            let mfu = outcome.mfu().unwrap_or(0.0);
            let before = self.top5.clone();
            self.top5.push(mfu);
            self.top5.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            self.top5.truncate(5);
            if !matches!(outcome, TrialOutcome::Oom) {
                if self.top5 == before {
                    self.stable_streak += 1;
                } else {
                    self.stable_streak = 0;
                }
            }
            let best = self.convergence.last().copied().unwrap_or(0.0).max(mfu);
            self.convergence.push(best);
        }
        outcome
    }

    /// Whether the early-stopping rule fired.
    pub fn should_stop(&self) -> bool {
        match self.early_stop_patience {
            Some(p) => self.stable_streak >= p,
            None => false,
        }
    }

    /// Fitness for the optimizer: cost (lower is better); invalid and
    /// OOM configs are pushed far away.
    fn fitness(outcome: &TrialOutcome) -> f64 {
        match outcome {
            TrialOutcome::Completed { cost, .. } => *cost,
            TrialOutcome::Oom => 1e6,
            TrialOutcome::Invalid => 1e7,
        }
    }

    /// Runs a search with the given algorithm and sample budget.
    pub fn run(mut self, kind: AlgorithmKind, budget: usize, seed: u64) -> SearchResult {
        if kind == AlgorithmKind::Grid {
            // Grid walks the actual discrete knob space (not a unit-cube
            // lattice), in enumeration order, up to the budget.
            let t0 = Instant::now();
            for c in self.space.enumerate().into_iter().take(budget) {
                if self.should_stop() {
                    break;
                }
                self.evaluate(&c);
            }
            let best = self.best_completed();
            return SearchResult {
                best,
                trials: self.trials,
                stats: self.stats,
                wall: t0.elapsed(),
                convergence: self.convergence,
            };
        }
        let t0 = Instant::now();
        let mut alg = kind.build(ConfigSpace::DIMS, seed);
        let mut samples = 0usize;
        while samples < budget && !alg.exhausted() && !self.should_stop() {
            let asks = alg.ask();
            if asks.is_empty() {
                break;
            }
            let mut fitness = Vec::with_capacity(asks.len());
            for x in &asks {
                let config = self.space.from_unit(x);
                let outcome = self.evaluate(&config);
                fitness.push(Self::fitness(&outcome));
                samples += 1;
                if self.should_stop() {
                    // Fill remaining slots so tell() shapes match.
                    while fitness.len() < asks.len() {
                        fitness.push(1e7);
                    }
                    break;
                }
            }
            alg.tell(&asks, &fitness);
        }
        let best = self.best_completed();
        SearchResult {
            best,
            trials: self.trials,
            stats: self.stats,
            wall: t0.elapsed(),
            convergence: self.convergence,
        }
    }

    /// Best completing configuration evaluated so far.
    fn best_completed(&self) -> Option<(ConfigPoint, TrialOutcome)> {
        self.cache
            .iter()
            .filter(|(_, o)| o.completed())
            .min_by(|a, b| {
                Self::fitness(a.1)
                    .partial_cmp(&Self::fitness(b.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(c, o)| (*c, *o))
    }

    /// Exhaustively evaluates the whole space (the paper's grid-search
    /// reference for Fig. 11b).
    pub fn run_grid(mut self) -> SearchResult {
        let t0 = Instant::now();
        self.early_stop_patience = None;
        for c in self.space.enumerate() {
            self.evaluate(&c);
        }
        let best = self.best_completed();
        SearchResult {
            best,
            trials: self.trials,
            stats: self.stats,
            wall: t0.elapsed(),
            convergence: self.convergence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya::{EmulationSpec, Maya};
    use maya_hw::ClusterSpec;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
    use maya_trace::Dtype;

    fn fixture() -> (Maya, TrainingJob) {
        let cluster = ClusterSpec::h100(1, 4);
        let maya = Maya::with_oracle(EmulationSpec::new(cluster));
        let template = TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 32,
            world: 4,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        };
        (maya, template)
    }

    fn small_space() -> ConfigSpace {
        ConfigSpace {
            tp: vec![1, 2],
            pp: vec![1, 2],
            microbatch_multiplier: vec![1, 2],
            virtual_stages: vec![1],
            activation_recompute: vec![true, false],
            sequence_parallel: vec![false],
            distributed_optimizer: vec![true, false],
        }
    }

    #[test]
    fn cache_avoids_reexecution() {
        let (maya, template) = fixture();
        let obj = Objective::new(&maya, template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        let c = ParallelConfig::default();
        sched.evaluate(&c);
        sched.evaluate(&c);
        assert_eq!(sched.stats.executed, 1);
        assert_eq!(sched.stats.cached, 1);
    }

    #[test]
    fn distributed_optimizer_tactic_skips() {
        let (maya, template) = fixture();
        let obj = Objective::new(&maya, template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        let base = ParallelConfig { tp: 2, ..Default::default() };
        let with_dopt = ParallelConfig { distributed_optimizer: true, ..base };
        let a = sched.evaluate(&base);
        let b = sched.evaluate(&with_dopt);
        assert_eq!(sched.stats.skipped, 1);
        assert_eq!(a.time(), b.time(), "tactic copies the runtime");
    }

    #[test]
    fn recompute_oom_tactic_propagates() {
        let (maya, mut template) = fixture();
        // Make it OOM even with recompute: too-large model for 1 GPU.
        template.model = ModelSpec::gpt3_2_7b();
        template.global_batch = 256;
        let obj = Objective::new(&maya, template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        let recomp = ParallelConfig { activation_recompute: true, ..Default::default() };
        let no_recomp = ParallelConfig::default();
        assert_eq!(sched.evaluate(&recomp), TrialOutcome::Oom);
        assert_eq!(sched.evaluate(&no_recomp), TrialOutcome::Oom);
        assert_eq!(sched.stats.skipped, 1, "second one inferred, not executed");
        assert_eq!(sched.stats.executed, 1);
    }

    #[test]
    fn grid_search_finds_a_best_config() {
        let (maya, template) = fixture();
        let obj = Objective::new(&maya, template);
        let sched = TrialScheduler::new(&obj).with_space(small_space());
        let result = sched.run_grid();
        let (best, outcome) = result.best.expect("some config completes");
        assert!(outcome.completed());
        assert!(best.tp * best.pp <= 4);
        assert!(result.stats.executed > 0);
        // Convergence curve is monotone.
        for w in result.convergence.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn cma_search_matches_grid_within_tolerance() {
        let (maya, template) = fixture();
        let obj = Objective::new(&maya, template);
        let grid =
            TrialScheduler::new(&obj).with_space(small_space()).run_grid();
        let cma = TrialScheduler::new(&obj)
            .with_space(small_space())
            .run(AlgorithmKind::CmaEs, 120, 7);
        let gt = grid.best_time().unwrap().as_secs_f64();
        let ct = cma.best_time().unwrap().as_secs_f64();
        assert!(ct <= gt * 1.10, "cma {ct} vs grid {gt}");
    }

    #[test]
    fn early_stopping_fires_on_small_spaces() {
        let (maya, template) = fixture();
        let obj = Objective::new(&maya, template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        sched.early_stop_patience = Some(5);
        let result = sched.run(AlgorithmKind::Random, 10_000, 3);
        assert!(
            result.trials.len() < 10_000,
            "early stop should cut the budget, ran {}",
            result.trials.len()
        );
    }
}
