//! Concurrent trial scheduling with caching, fidelity-preserving pruning
//! (Table 10) and early stopping.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use maya::CancelToken;
use maya_trace::SimTime;

use crate::algorithms::AlgorithmKind;
use crate::objective::{Objective, Provenance, TrialOutcome, TrialRecord};
use crate::space::{ConfigPoint, ConfigSpace};

/// Observes a running search at its deterministic commit points.
///
/// The scheduler calls [`SearchObserver::trial_committed`] once per
/// committed [`TrialRecord`] — in commit order, identical to the final
/// [`SearchResult::trials`] — and [`SearchObserver::wave_committed`]
/// at batch boundaries (after every speculative wave in
/// [`TrialScheduler::run_batched`], after every trial in sequential
/// mode, and always once more before the search returns). Observation
/// is pull-free and synchronous: a serving layer uses it to stream
/// progress events, and a callback may fire a [`CancelToken`] to stop
/// the search at the next commit boundary.
pub trait SearchObserver {
    /// One trial was committed (the same record that lands in
    /// [`SearchResult::trials`]); `best` is the best-so-far after it.
    fn trial_committed(&mut self, record: &TrialRecord, best: Option<&(ConfigPoint, TrialOutcome)>);

    /// A commit batch ended; `committed` counts all trials so far. A
    /// good place to flush buffered progress.
    fn wave_committed(&mut self, committed: usize) {
        let _ = committed;
    }
}

/// Counters for Fig. 15's trial-status breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Trials that ran the full pipeline.
    pub executed: usize,
    /// Trials answered from the result cache.
    pub cached: usize,
    /// Trials answered by a pruning tactic.
    pub skipped: usize,
    /// Structurally invalid candidates proposed by the optimizer.
    pub invalid: usize,
}

/// Search outcome.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best completing configuration found, with its outcome.
    pub best: Option<(ConfigPoint, TrialOutcome)>,
    /// Every trial in evaluation order.
    pub trials: Vec<TrialRecord>,
    /// Status counters.
    pub stats: SearchStats,
    /// Wall-clock duration of the search.
    pub wall: Duration,
    /// Convergence curve: best MFU after each *unique valid* config.
    pub convergence: Vec<f64>,
}

impl SearchResult {
    /// Best iteration time, if any config completed.
    pub fn best_time(&self) -> Option<SimTime> {
        self.best.as_ref().and_then(|(_, o)| o.time())
    }

    /// Renders the search outcome as a human-readable JSON object — the
    /// inspectable twin of the compact wire codec (`crate::serdes`).
    /// Trial records are summarized by their status counters; the best
    /// configuration and the convergence curve are emitted in full.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        out.push_str("{\"best\":");
        match &self.best {
            None => out.push_str("null"),
            Some((config, outcome)) => {
                let _ = write!(
                    out,
                    "{{\"config\":{},\"iteration_time_ns\":",
                    maya_trace::json::json_string(&config.to_string())
                );
                match outcome.time() {
                    Some(t) => {
                        let _ = write!(out, "{}", t.as_ns());
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(
                    out,
                    ",\"mfu\":{}}}",
                    outcome.mfu().map_or("null".to_string(), |m| format!("{m}"))
                );
            }
        }
        let _ = write!(
            out,
            ",\"trials\":{},\"stats\":{{\"executed\":{},\"cached\":{},\"skipped\":{},\
             \"invalid\":{}}},\"wall_us\":{},\"convergence\":[",
            self.trials.len(),
            self.stats.executed,
            self.stats.cached,
            self.stats.skipped,
            self.stats.invalid,
            self.wall.as_micros(),
        );
        for (i, m) in self.convergence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{m}");
        }
        out.push_str("]}");
        out
    }
}

/// Trial scheduler: wraps an objective with caching, pruning tactics and
/// the paper's early-stopping rule.
///
/// Two evaluation modes share one decision path:
///
/// - sequential ([`TrialScheduler::run`] / [`TrialScheduler::evaluate`]):
///   each candidate goes through cache → pruning → full pipeline, in
///   proposal order;
/// - speculative batched ([`TrialScheduler::run_batched`]): candidates
///   are grouped into *waves* whose pipeline executions fan across the
///   prediction engine's worker pool, then **committed in proposal
///   order through the exact sequential decision path**. Speculation
///   only pre-computes the pure `objective.evaluate` results, so trial
///   records, pruning decisions, stats and the early-stop point are
///   byte-identical to a sequential run.
pub struct TrialScheduler<'a> {
    objective: &'a Objective<'a>,
    space: ConfigSpace,
    /// Enable the Table 10 pruning tactics.
    pub pruning: bool,
    /// Stop after the top-5 MFU set is unchanged for this many
    /// consecutive non-OOM configs (paper: 20). `None` disables.
    pub early_stop_patience: Option<usize>,
    /// Speculation width for [`TrialScheduler::run_batched`]: how many
    /// un-answered candidates may execute concurrently in one wave.
    pub batch: usize,
    cache: HashMap<ConfigPoint, TrialOutcome>,
    stats: SearchStats,
    trials: Vec<TrialRecord>,
    convergence: Vec<f64>,
    top5: Vec<f64>,
    stable_streak: usize,
    /// Best completed config in commit order (first strict improvement
    /// wins — deterministic, unlike scanning the cache map).
    best: Option<(ConfigPoint, TrialOutcome)>,
    /// Progress observer, notified at commit points.
    observer: Option<Box<dyn SearchObserver + 'a>>,
    /// Cooperative stop signal, checked at commit boundaries.
    cancel: Option<CancelToken>,
    /// Trials already reported through `wave_committed`.
    notified: usize,
}

impl<'a> TrialScheduler<'a> {
    /// Creates a scheduler over the default Table 5 space. The default
    /// speculation width keeps the objective's engine pool saturated.
    pub fn new(objective: &'a Objective<'a>) -> Self {
        let pool = objective.engine.spec().emulation_threads.max(1);
        TrialScheduler {
            objective,
            space: ConfigSpace::default(),
            pruning: true,
            early_stop_patience: Some(20),
            batch: pool * 2,
            cache: HashMap::new(),
            stats: SearchStats::default(),
            trials: Vec::new(),
            convergence: Vec::new(),
            top5: Vec::new(),
            stable_streak: 0,
            best: None,
            observer: None,
            cancel: None,
            notified: 0,
        }
    }

    /// Replaces the search space.
    pub fn with_space(mut self, space: ConfigSpace) -> Self {
        self.space = space;
        self
    }

    /// Sets the speculation width for batched runs.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Installs a progress observer (see [`SearchObserver`]). The
    /// observer never changes what the search computes — only what it
    /// reports while computing.
    pub fn with_observer(mut self, observer: Box<dyn SearchObserver + 'a>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Arms cooperative cancellation: when the token fires, the search
    /// stops at the next commit boundary and returns a result whose
    /// trial records are exactly a prefix of the uncancelled run's.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether the cancel token (if any) has fired.
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Notifies the observer of the just-committed trial.
    fn notify_commit(&mut self) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.trial_committed(
                self.trials.last().expect("a trial was just committed"),
                self.best.as_ref(),
            );
        }
    }

    /// Notifies the observer of a batch boundary (only when new trials
    /// were committed since the last notification).
    fn notify_wave(&mut self) {
        if self.trials.len() > self.notified {
            self.notified = self.trials.len();
            let committed = self.notified;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.wave_committed(committed);
            }
        }
    }

    /// Applies the Table 10 tactics: can this config's outcome be derived
    /// from an already-evaluated neighbor? `overlay` supplies outcomes
    /// decided earlier in a wave that are not yet committed to the cache.
    fn prune_with(
        &self,
        c: &ConfigPoint,
        overlay: Option<&HashMap<ConfigPoint, TrialOutcome>>,
    ) -> Option<TrialOutcome> {
        if !self.pruning {
            return None;
        }
        let get = |cp: &ConfigPoint| {
            overlay
                .and_then(|o| o.get(cp))
                .or_else(|| self.cache.get(cp))
        };
        // Tactic 1: recomputation strictly reduces memory. If the
        // recompute-enabled twin OOMed, this one will too.
        if !c.activation_recompute {
            let twin = ConfigPoint {
                activation_recompute: true,
                ..*c
            };
            if get(&twin) == Some(&TrialOutcome::Oom) {
                return Some(TrialOutcome::Oom);
            }
        }
        // Tactic 2: sequence parallelism strictly reduces memory at no
        // communication cost. Same reasoning.
        if !c.sequence_parallel && c.tp > 1 {
            let twin = ConfigPoint {
                sequence_parallel: true,
                ..*c
            };
            if get(&twin) == Some(&TrialOutcome::Oom) {
                return Some(TrialOutcome::Oom);
            }
        }
        // Tactic 3: the distributed optimizer only reduces memory (same
        // runtime to first order); if the non-sharded twin fit, reuse its
        // runtime.
        if c.distributed_optimizer {
            let twin = ConfigPoint {
                distributed_optimizer: false,
                ..*c
            };
            if let Some(o @ TrialOutcome::Completed { .. }) = get(&twin) {
                return Some(*o);
            }
        }
        // Tactic 4: without pipeline parallelism, more microbatches only
        // lose efficiency; reuse the smaller-count runtime.
        if c.pp == 1 && c.microbatch_multiplier > 1 {
            for smaller in self.space.microbatch_multiplier.iter().copied() {
                if smaller < c.microbatch_multiplier {
                    let twin = ConfigPoint {
                        microbatch_multiplier: smaller,
                        ..*c
                    };
                    if let Some(o @ TrialOutcome::Completed { .. }) = get(&twin) {
                        return Some(*o);
                    }
                }
            }
        }
        None
    }

    /// Every config whose cached outcome a pruning tactic might consult
    /// when deciding `c`. Used to cut speculative waves at outcome
    /// dependencies; over-approximating only costs parallelism.
    fn prune_twins(&self, c: &ConfigPoint) -> Vec<ConfigPoint> {
        if !self.pruning {
            return Vec::new();
        }
        let mut twins = Vec::new();
        if !c.activation_recompute {
            twins.push(ConfigPoint {
                activation_recompute: true,
                ..*c
            });
        }
        if !c.sequence_parallel && c.tp > 1 {
            twins.push(ConfigPoint {
                sequence_parallel: true,
                ..*c
            });
        }
        if c.distributed_optimizer {
            twins.push(ConfigPoint {
                distributed_optimizer: false,
                ..*c
            });
        }
        if c.pp == 1 && c.microbatch_multiplier > 1 {
            for smaller in self.space.microbatch_multiplier.iter().copied() {
                if smaller < c.microbatch_multiplier {
                    twins.push(ConfigPoint {
                        microbatch_multiplier: smaller,
                        ..*c
                    });
                }
            }
        }
        twins
    }

    /// Evaluates one config through cache -> pruning -> pipeline.
    pub fn evaluate(&mut self, c: &ConfigPoint) -> TrialOutcome {
        self.commit(c, None)
    }

    /// The sequential decision path. When `executed` holds a
    /// speculatively pre-computed result for `c`, the pipeline run is
    /// answered from it; the objective is a pure function, so this
    /// cannot change the outcome, only skip redundant work.
    fn commit(
        &mut self,
        c: &ConfigPoint,
        executed: Option<&HashMap<ConfigPoint, TrialOutcome>>,
    ) -> TrialOutcome {
        if let Some(o) = self.cache.get(c) {
            self.stats.cached += 1;
            let o = *o;
            self.trials.push(TrialRecord {
                config: *c,
                outcome: o,
                provenance: Provenance::Cached,
            });
            self.notify_commit();
            return o;
        }
        let (outcome, provenance) = match self.prune_with(c, None) {
            Some(o) => {
                self.stats.skipped += 1;
                (o, Provenance::Skipped)
            }
            None => {
                let o = executed
                    .and_then(|m| m.get(c).copied())
                    .unwrap_or_else(|| self.objective.evaluate(c));
                if o == TrialOutcome::Invalid {
                    self.stats.invalid += 1;
                } else {
                    self.stats.executed += 1;
                }
                (o, Provenance::Executed)
            }
        };
        self.cache.insert(*c, outcome);
        self.trials.push(TrialRecord {
            config: *c,
            outcome,
            provenance,
        });
        if outcome.completed()
            && self
                .best
                .as_ref()
                .map(|(_, b)| Self::fitness(&outcome) < Self::fitness(b))
                .unwrap_or(true)
        {
            self.best = Some((*c, outcome));
        }
        // Track convergence + early stopping on unique valid configs.
        if outcome != TrialOutcome::Invalid {
            let mfu = outcome.mfu().unwrap_or(0.0);
            let before = self.top5.clone();
            self.top5.push(mfu);
            self.top5
                .sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            self.top5.truncate(5);
            if !matches!(outcome, TrialOutcome::Oom) {
                if self.top5 == before {
                    self.stable_streak += 1;
                } else {
                    self.stable_streak = 0;
                }
            }
            let best = self.convergence.last().copied().unwrap_or(0.0).max(mfu);
            self.convergence.push(best);
        }
        self.notify_commit();
        outcome
    }

    /// Evaluates `configs` in proposal order using speculative waves
    /// (see the type docs). Stops committing — exactly like the
    /// sequential loops — as soon as the early-stop rule fires; the
    /// returned outcomes cover the committed prefix.
    fn evaluate_speculative(&mut self, configs: &[ConfigPoint]) -> Vec<TrialOutcome> {
        let width = self.batch.max(1);
        let mut out = Vec::with_capacity(configs.len());
        let mut i = 0usize;
        while i < configs.len() {
            // Build one wave: walk forward deciding, from current
            // knowledge, which candidates need a pipeline run. Cut when
            // a candidate's answer could depend on an outcome that is
            // still in flight (duplicate of a wave member, or a pruning
            // twin of one).
            let mut overlay: HashMap<ConfigPoint, TrialOutcome> = HashMap::new();
            let mut wave: Vec<ConfigPoint> = Vec::new();
            let mut span = 0usize;
            for &c in &configs[i..] {
                let known = overlay.contains_key(&c) || self.cache.contains_key(&c);
                if !known {
                    if wave.contains(&c) || self.prune_twins(&c).iter().any(|t| wave.contains(t)) {
                        break;
                    }
                    if let Some(o) = self.prune_with(&c, Some(&overlay)) {
                        overlay.insert(c, o);
                    } else {
                        wave.push(c);
                        if wave.len() >= width {
                            span += 1;
                            break;
                        }
                    }
                }
                span += 1;
            }
            // Fan the wave's pipeline runs across the engine pool. A
            // cancellation observed mid-wave discards the whole wave
            // (all-or-nothing), so nothing half-evaluated can commit.
            let executed: HashMap<ConfigPoint, TrialOutcome> = if wave.len() > 1 {
                match self
                    .objective
                    .evaluate_batch_with(&wave, self.cancel.as_ref())
                {
                    Some(outcomes) => wave.into_iter().zip(outcomes).collect(),
                    None => return out, // cancelled: prior waves stand
                }
            } else {
                HashMap::new() // single run: let the commit path do it inline
            };
            // Commit the span in proposal order through the sequential
            // decision path.
            for &c in &configs[i..i + span] {
                if self.cancelled() {
                    self.notify_wave();
                    return out;
                }
                out.push(self.commit(&c, Some(&executed)));
                if self.should_stop() {
                    self.notify_wave();
                    return out;
                }
            }
            self.notify_wave();
            i += span;
        }
        out
    }

    /// Whether the early-stopping rule fired.
    pub fn should_stop(&self) -> bool {
        match self.early_stop_patience {
            Some(p) => self.stable_streak >= p,
            None => false,
        }
    }

    /// Fitness for the optimizer: cost (lower is better); invalid and
    /// OOM configs are pushed far away.
    fn fitness(outcome: &TrialOutcome) -> f64 {
        match outcome {
            TrialOutcome::Completed { cost, .. } => *cost,
            TrialOutcome::Oom => 1e6,
            TrialOutcome::Invalid => 1e7,
        }
    }

    /// Runs a search with the given algorithm and sample budget,
    /// evaluating candidates strictly sequentially.
    pub fn run(self, kind: AlgorithmKind, budget: usize, seed: u64) -> SearchResult {
        self.run_inner(kind, budget, seed, false)
    }

    /// Runs a search evaluating candidates in speculative batches of up
    /// to [`TrialScheduler::batch`] through the engine's worker pool.
    ///
    /// The result — best config, trial records, stats, convergence,
    /// early-stop point — is identical to [`TrialScheduler::run`] with
    /// the same arguments; only wall-clock changes.
    pub fn run_batched(self, kind: AlgorithmKind, budget: usize, seed: u64) -> SearchResult {
        self.run_inner(kind, budget, seed, true)
    }

    fn run_inner(
        mut self,
        kind: AlgorithmKind,
        budget: usize,
        seed: u64,
        batched: bool,
    ) -> SearchResult {
        // lint:allow(wall-clock-in-output): wall_time telemetry field only — trial selection is seed-driven
        let t0 = Instant::now();
        if kind == AlgorithmKind::Grid {
            // Grid walks the actual discrete knob space (not a unit-cube
            // lattice), in enumeration order, up to the budget.
            let configs: Vec<ConfigPoint> =
                self.space.enumerate().into_iter().take(budget).collect();
            if batched {
                // evaluate_speculative stops committing right after the
                // early-stop rule fires — the same prefix the sequential
                // loop evaluates.
                self.evaluate_speculative(&configs);
            } else {
                for c in &configs {
                    if self.should_stop() || self.cancelled() {
                        break;
                    }
                    self.evaluate(c);
                    self.notify_wave();
                }
            }
            return self.into_result(t0);
        }
        let mut alg = kind.build(ConfigSpace::DIMS, seed);
        let mut samples = 0usize;
        while samples < budget && !alg.exhausted() && !self.should_stop() && !self.cancelled() {
            let asks = alg.ask();
            if asks.is_empty() {
                break;
            }
            let mut fitness = Vec::with_capacity(asks.len());
            if batched {
                let configs: Vec<ConfigPoint> =
                    asks.iter().map(|x| self.space.from_unit(x)).collect();
                let outcomes = self.evaluate_speculative(&configs);
                samples += outcomes.len();
                fitness.extend(outcomes.iter().map(Self::fitness));
                // Early stop mid-batch: fill remaining slots so tell()
                // shapes match, exactly like the sequential loop.
                while fitness.len() < asks.len() {
                    fitness.push(1e7);
                }
            } else {
                for x in &asks {
                    if self.cancelled() {
                        while fitness.len() < asks.len() {
                            fitness.push(1e7);
                        }
                        break;
                    }
                    let config = self.space.from_unit(x);
                    let outcome = self.evaluate(&config);
                    fitness.push(Self::fitness(&outcome));
                    self.notify_wave();
                    samples += 1;
                    if self.should_stop() {
                        while fitness.len() < asks.len() {
                            fitness.push(1e7);
                        }
                        break;
                    }
                }
            }
            alg.tell(&asks, &fitness);
        }
        self.into_result(t0)
    }

    fn into_result(mut self, t0: Instant) -> SearchResult {
        // Final flush: any trials committed since the last wave
        // boundary are reported before the result is sealed, so an
        // observer's cumulative view always equals `trials`.
        self.notify_wave();
        SearchResult {
            best: self.best,
            trials: self.trials,
            stats: self.stats,
            wall: t0.elapsed(),
            convergence: self.convergence,
        }
    }

    /// Exhaustively evaluates the whole space (the paper's grid-search
    /// reference for Fig. 11b).
    pub fn run_grid(mut self) -> SearchResult {
        // lint:allow(wall-clock-in-output): wall_time telemetry field only — enumeration order is deterministic
        let t0 = Instant::now();
        self.early_stop_patience = None;
        for c in self.space.enumerate() {
            if self.cancelled() {
                break;
            }
            self.evaluate(&c);
            self.notify_wave();
        }
        self.into_result(t0)
    }

    /// Exhaustive grid evaluation with speculative batching; result is
    /// identical to [`TrialScheduler::run_grid`], only faster.
    pub fn run_grid_batched(mut self) -> SearchResult {
        // lint:allow(wall-clock-in-output): wall_time telemetry field only — enumeration order is deterministic
        let t0 = Instant::now();
        self.early_stop_patience = None;
        let configs = self.space.enumerate();
        self.evaluate_speculative(&configs);
        self.into_result(t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya::{Maya, MayaBuilder};
    use maya_hw::ClusterSpec;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
    use maya_trace::Dtype;

    fn fixture() -> (Maya, TrainingJob) {
        let cluster = ClusterSpec::h100(1, 4);
        let maya = MayaBuilder::new(cluster).build().unwrap();
        let template = TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 32,
            world: 4,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        };
        (maya, template)
    }

    fn small_space() -> ConfigSpace {
        ConfigSpace {
            tp: vec![1, 2],
            pp: vec![1, 2],
            microbatch_multiplier: vec![1, 2],
            virtual_stages: vec![1],
            activation_recompute: vec![true, false],
            sequence_parallel: vec![false],
            distributed_optimizer: vec![true, false],
        }
    }

    #[test]
    fn invalid_configs_fail_fast_without_touching_pipeline() {
        // Every config in this space violates gpt3-125m's 12-head
        // divisibility, so validation must reject each trial up front —
        // including trial 1 — without the pipeline ever running. A
        // regression here (e.g. validation deferred into the simulator)
        // shows up as estimator-cache misses.
        let (maya, template) = fixture();
        let obj = Objective::new(maya.engine(), template);
        let space = ConfigSpace {
            tp: vec![8, 16],
            pp: vec![1],
            microbatch_multiplier: vec![1],
            virtual_stages: vec![1],
            activation_recompute: vec![false],
            sequence_parallel: vec![false],
            distributed_optimizer: vec![false],
        };
        let sched = TrialScheduler::new(&obj).with_space(space);
        let result = sched.run(AlgorithmKind::Grid, 8, 0);
        assert!(!result.trials.is_empty());
        assert_eq!(
            result.trials[0].outcome,
            TrialOutcome::Invalid,
            "trial 1 must fail fast"
        );
        assert!(result
            .trials
            .iter()
            .all(|t| t.outcome == TrialOutcome::Invalid));
        assert_eq!(result.stats.executed, 0);
        assert!(result.best.is_none());
        assert_eq!(
            maya.engine().cache_stats().misses,
            0,
            "invalid configs must never reach estimation or simulation"
        );
    }

    #[test]
    fn cache_avoids_reexecution() {
        let (maya, template) = fixture();
        let obj = Objective::new(maya.engine(), template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        let c = ParallelConfig::default();
        sched.evaluate(&c);
        sched.evaluate(&c);
        assert_eq!(sched.stats.executed, 1);
        assert_eq!(sched.stats.cached, 1);
    }

    #[test]
    fn distributed_optimizer_tactic_skips() {
        let (maya, template) = fixture();
        let obj = Objective::new(maya.engine(), template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        let base = ParallelConfig {
            tp: 2,
            ..Default::default()
        };
        let with_dopt = ParallelConfig {
            distributed_optimizer: true,
            ..base
        };
        let a = sched.evaluate(&base);
        let b = sched.evaluate(&with_dopt);
        assert_eq!(sched.stats.skipped, 1);
        assert_eq!(a.time(), b.time(), "tactic copies the runtime");
    }

    #[test]
    fn recompute_oom_tactic_propagates() {
        let (maya, mut template) = fixture();
        // Make it OOM even with recompute: too-large model for 1 GPU.
        template.model = ModelSpec::gpt3_2_7b();
        template.global_batch = 256;
        let obj = Objective::new(maya.engine(), template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        let recomp = ParallelConfig {
            activation_recompute: true,
            ..Default::default()
        };
        let no_recomp = ParallelConfig::default();
        assert_eq!(sched.evaluate(&recomp), TrialOutcome::Oom);
        assert_eq!(sched.evaluate(&no_recomp), TrialOutcome::Oom);
        assert_eq!(sched.stats.skipped, 1, "second one inferred, not executed");
        assert_eq!(sched.stats.executed, 1);
    }

    #[test]
    fn grid_search_finds_a_best_config() {
        let (maya, template) = fixture();
        let obj = Objective::new(maya.engine(), template);
        let sched = TrialScheduler::new(&obj).with_space(small_space());
        let result = sched.run_grid();
        let (best, outcome) = result.best.expect("some config completes");
        assert!(outcome.completed());
        assert!(best.tp * best.pp <= 4);
        assert!(result.stats.executed > 0);
        // Convergence curve is monotone.
        for w in result.convergence.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn cma_search_matches_grid_within_tolerance() {
        let (maya, template) = fixture();
        let obj = Objective::new(maya.engine(), template);
        let grid = TrialScheduler::new(&obj)
            .with_space(small_space())
            .run_grid();
        let cma =
            TrialScheduler::new(&obj)
                .with_space(small_space())
                .run(AlgorithmKind::CmaEs, 120, 7);
        let gt = grid.best_time().unwrap().as_secs_f64();
        let ct = cma.best_time().unwrap().as_secs_f64();
        assert!(ct <= gt * 1.10, "cma {ct} vs grid {gt}");
    }

    fn assert_results_identical(seq: &SearchResult, par: &SearchResult, label: &str) {
        assert_eq!(
            seq.best.as_ref().map(|(c, _)| *c),
            par.best.as_ref().map(|(c, _)| *c),
            "{label}: best config"
        );
        assert_eq!(
            seq.best.as_ref().map(|(_, o)| *o),
            par.best.as_ref().map(|(_, o)| *o),
            "{label}: best outcome"
        );
        assert_eq!(seq.stats, par.stats, "{label}: stats");
        assert_eq!(seq.trials, par.trials, "{label}: trial records");
        assert_eq!(seq.convergence, par.convergence, "{label}: convergence");
    }

    #[test]
    fn batched_search_identical_to_sequential() {
        let cluster = ClusterSpec::h100(1, 4);
        let seq_maya = MayaBuilder::new(cluster.clone()).build().unwrap();
        let par_maya = MayaBuilder::new(cluster)
            .emulation_threads(4)
            .build()
            .unwrap();
        let template = fixture().1;
        for kind in [
            AlgorithmKind::Random,
            AlgorithmKind::CmaEs,
            AlgorithmKind::Grid,
        ] {
            let seq_obj = Objective::new(seq_maya.engine(), template);
            let seq = TrialScheduler::new(&seq_obj)
                .with_space(small_space())
                .run(kind, 60, 9);
            let par_obj = Objective::new(par_maya.engine(), template);
            let par = TrialScheduler::new(&par_obj)
                .with_space(small_space())
                .with_batch(8)
                .run_batched(kind, 60, 9);
            assert_results_identical(&seq, &par, &format!("{kind:?}"));
            assert!(par.stats.executed > 0, "{kind:?} executed nothing");
        }
    }

    #[test]
    fn batched_grid_identical_to_sequential_grid() {
        let cluster = ClusterSpec::h100(1, 4);
        let seq_maya = MayaBuilder::new(cluster.clone()).build().unwrap();
        let par_maya = MayaBuilder::new(cluster)
            .emulation_threads(4)
            .build()
            .unwrap();
        let template = fixture().1;
        let seq_obj = Objective::new(seq_maya.engine(), template);
        let seq = TrialScheduler::new(&seq_obj)
            .with_space(small_space())
            .run_grid();
        let par_obj = Objective::new(par_maya.engine(), template);
        let par = TrialScheduler::new(&par_obj)
            .with_space(small_space())
            .with_batch(6)
            .run_grid_batched();
        assert_results_identical(&seq, &par, "exhaustive grid");
    }

    #[test]
    fn batched_early_stop_fires_at_the_same_trial() {
        let cluster = ClusterSpec::h100(1, 4);
        let seq_maya = MayaBuilder::new(cluster.clone()).build().unwrap();
        let par_maya = MayaBuilder::new(cluster)
            .emulation_threads(4)
            .build()
            .unwrap();
        let template = fixture().1;
        let seq_obj = Objective::new(seq_maya.engine(), template);
        let mut seq_sched = TrialScheduler::new(&seq_obj).with_space(small_space());
        seq_sched.early_stop_patience = Some(5);
        let seq = seq_sched.run(AlgorithmKind::Random, 10_000, 3);
        let par_obj = Objective::new(par_maya.engine(), template);
        let mut par_sched = TrialScheduler::new(&par_obj)
            .with_space(small_space())
            .with_batch(8);
        par_sched.early_stop_patience = Some(5);
        let par = par_sched.run_batched(AlgorithmKind::Random, 10_000, 3);
        assert_eq!(seq.trials.len(), par.trials.len(), "stop point must match");
        assert_results_identical(&seq, &par, "early stop");
    }

    /// Records every observation; optionally fires a cancel token after
    /// a fixed number of committed trials.
    struct Recorder {
        records: Vec<TrialRecord>,
        waves: Vec<usize>,
        cancel_after: Option<(usize, CancelToken)>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                records: Vec::new(),
                waves: Vec::new(),
                cancel_after: None,
            }
        }

        fn cancelling_after(n: usize, token: CancelToken) -> Self {
            Recorder {
                cancel_after: Some((n, token)),
                ..Recorder::new()
            }
        }
    }

    impl SearchObserver for Recorder {
        fn trial_committed(
            &mut self,
            record: &TrialRecord,
            _best: Option<&(ConfigPoint, TrialOutcome)>,
        ) {
            self.records.push(*record);
            if let Some((n, token)) = &self.cancel_after {
                if self.records.len() >= *n {
                    token.cancel();
                }
            }
        }

        fn wave_committed(&mut self, committed: usize) {
            self.waves.push(committed);
        }
    }

    #[test]
    fn observer_sees_every_committed_trial_in_order() {
        let cluster = ClusterSpec::h100(1, 4);
        let maya = MayaBuilder::new(cluster)
            .emulation_threads(4)
            .build()
            .unwrap();
        let template = fixture().1;
        let obj = Objective::new(maya.engine(), template);
        let observed = std::rc::Rc::new(std::cell::RefCell::new(Recorder::new()));
        struct Tee(std::rc::Rc<std::cell::RefCell<Recorder>>);
        impl SearchObserver for Tee {
            fn trial_committed(
                &mut self,
                r: &TrialRecord,
                b: Option<&(ConfigPoint, TrialOutcome)>,
            ) {
                self.0.borrow_mut().trial_committed(r, b);
            }
            fn wave_committed(&mut self, n: usize) {
                self.0.borrow_mut().wave_committed(n);
            }
        }
        let result = TrialScheduler::new(&obj)
            .with_space(small_space())
            .with_batch(4)
            .with_observer(Box::new(Tee(std::rc::Rc::clone(&observed))))
            .run_batched(AlgorithmKind::Random, 40, 9);
        let observed = observed.borrow();
        assert_eq!(
            observed.records, result.trials,
            "the observer's stream must equal the final trial records"
        );
        assert!(
            observed.waves.windows(2).all(|w| w[0] < w[1]),
            "wave counts must be strictly increasing: {:?}",
            observed.waves
        );
        assert_eq!(
            observed.waves.last().copied(),
            Some(result.trials.len()),
            "the final wave notification must cover every trial"
        );
    }

    #[test]
    fn cancelled_search_returns_the_exact_uncancelled_prefix() {
        let cluster = ClusterSpec::h100(1, 4);
        let template = fixture().1;
        // Reference: the full, uncancelled run.
        let ref_maya = MayaBuilder::new(cluster.clone()).build().unwrap();
        let ref_obj = Objective::new(ref_maya.engine(), template);
        let full = TrialScheduler::new(&ref_obj).with_space(small_space()).run(
            AlgorithmKind::Random,
            40,
            9,
        );
        assert!(full.trials.len() >= 12, "need enough trials to cut");

        for n in [1usize, 5, 11] {
            for batched in [false, true] {
                let maya = MayaBuilder::new(cluster.clone())
                    .emulation_threads(4)
                    .build()
                    .unwrap();
                let obj = Objective::new(maya.engine(), template);
                let token = CancelToken::new();
                let sched = TrialScheduler::new(&obj)
                    .with_space(small_space())
                    .with_batch(4)
                    .with_observer(Box::new(Recorder::cancelling_after(n, token.clone())))
                    .with_cancel(token);
                let cut = if batched {
                    sched.run_batched(AlgorithmKind::Random, 40, 9)
                } else {
                    sched.run(AlgorithmKind::Random, 40, 9)
                };
                assert_eq!(
                    cut.trials,
                    full.trials[..n],
                    "cancel after {n} (batched={batched}) must return exactly \
                     the first {n} records of the uncancelled run"
                );
                assert_eq!(cut.convergence, {
                    // Convergence grows once per *uncached* valid commit.
                    let valid = full.trials[..n]
                        .iter()
                        .filter(|t| {
                            t.provenance != Provenance::Cached && t.outcome != TrialOutcome::Invalid
                        })
                        .count();
                    full.convergence[..valid].to_vec()
                });
            }
        }
    }

    #[test]
    fn pre_cancelled_search_commits_nothing() {
        let (maya, template) = fixture();
        let obj = Objective::new(maya.engine(), template);
        let token = CancelToken::new();
        token.cancel();
        let result = TrialScheduler::new(&obj)
            .with_space(small_space())
            .with_cancel(token)
            .run_batched(AlgorithmKind::Grid, 40, 0);
        assert!(result.trials.is_empty());
        assert!(result.best.is_none());
    }

    #[test]
    fn early_stopping_fires_on_small_spaces() {
        let (maya, template) = fixture();
        let obj = Objective::new(maya.engine(), template);
        let mut sched = TrialScheduler::new(&obj).with_space(small_space());
        sched.early_stop_patience = Some(5);
        let result = sched.run(AlgorithmKind::Random, 10_000, 3);
        assert!(
            result.trials.len() < 10_000,
            "early stop should cut the budget, ran {}",
            result.trials.len()
        );
    }
}
