//! Maya-Search (§5): black-box training-recipe optimization over cheap
//! emulated trials.
//!
//! - [`space::ConfigSpace`]: the Table 5 knob space with validity rules;
//! - [`objective::Objective`]: evaluates one configuration through the
//!   full Maya pipeline, yielding iteration time, MFU and dollar cost
//!   (OOM is a first-class outcome);
//! - [`algorithms`]: from-scratch CMA-ES, (1+1)-ES, particle swarm,
//!   differential evolution, random and grid search (the Appendix C
//!   comparison set);
//! - [`scheduler::TrialScheduler`]: trial evaluation with result
//!   caching, the fidelity-preserving pruning tactics of Table 10, and
//!   the paper's early-stopping rule (top-5 MFU stable for 20
//!   consecutive non-OOM trials). `run_batched` drives speculative
//!   candidate waves through the prediction engine's worker pool while
//!   committing results in proposal order — trial records, pruning and
//!   the stop point stay byte-identical to a sequential run.

pub mod algorithms;
pub mod objective;
pub mod scheduler;
pub mod serdes;
pub mod space;

pub use algorithms::{AlgorithmKind, SearchAlgorithm};
pub use objective::{Objective, Provenance, TrialOutcome, TrialRecord};
pub use scheduler::{SearchObserver, SearchResult, SearchStats, TrialScheduler};
pub use space::{ConfigPoint, ConfigSpace};
