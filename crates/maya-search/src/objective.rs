//! Trial evaluation: one configuration through the full Maya pipeline.

use maya::{PredictOutcome, PredictionEngine};
use maya_hw::{mfu, PowerModel};
use maya_torchlet::TrainingJob;
use maya_trace::SimTime;

use crate::space::ConfigPoint;

/// What a trial's `cost` measures — the quantity the scheduler
/// minimizes.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ObjectiveKind {
    /// GPU-hour dollars (proportional to iteration time for a fixed
    /// world, so this is the classic time-minimizing search).
    IterationTime,
    /// GPU-hour dollars *plus* electricity: a per-generation power
    /// model priced per kWh, scaled by how busy the iteration keeps
    /// the devices. Old, cheap-per-hour GPUs stop looking free once
    /// their longer iterations burn more energy.
    CostWeighted {
        /// Power/price model applied per rank generation.
        power: PowerModel,
    },
}

/// Result category of one trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrialOutcome {
    /// Config violates structural constraints (divisibility etc.).
    Invalid,
    /// Predicted to run out of device memory.
    Oom,
    /// Predicted to complete.
    Completed {
        /// Predicted iteration time.
        iteration_time: SimTime,
        /// Model FLOPs utilization.
        mfu: f64,
        /// Dollar cost per iteration.
        cost: f64,
    },
}

impl TrialOutcome {
    /// Whether the trial produced a usable time.
    pub fn completed(&self) -> bool {
        matches!(self, TrialOutcome::Completed { .. })
    }

    /// Iteration time, if completed.
    pub fn time(&self) -> Option<SimTime> {
        match self {
            TrialOutcome::Completed { iteration_time, .. } => Some(*iteration_time),
            _ => None,
        }
    }

    /// MFU, if completed.
    pub fn mfu(&self) -> Option<f64> {
        match self {
            TrialOutcome::Completed { mfu, .. } => Some(*mfu),
            _ => None,
        }
    }
}

/// One evaluated (or skipped) trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialRecord {
    /// The evaluated configuration.
    pub config: ConfigPoint,
    /// Its outcome.
    pub outcome: TrialOutcome,
    /// How the result was obtained.
    pub provenance: Provenance,
}

/// How a trial's result came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Full pipeline execution.
    Executed,
    /// Served from the result cache.
    Cached,
    /// Inferred by a fidelity-preserving pruning tactic (Table 10).
    Skipped,
}

/// Evaluates configurations for a fixed (model, cluster, batch) scenario.
///
/// Runs directly against a [`PredictionEngine`] so any engine owner can
/// search — a [`maya::Maya`] facade (pass [`maya::Maya::engine`]) or a
/// `maya-serve` registry entry serving a `Search` request.
pub struct Objective<'a> {
    /// The prediction engine used for trials.
    pub engine: &'a PredictionEngine,
    /// Job template; `parallel` is replaced per trial.
    pub template: TrainingJob,
    kind: ObjectiveKind,
}

impl<'a> Objective<'a> {
    /// Builds a time-minimizing objective over a prediction engine.
    pub fn new(engine: &'a PredictionEngine, template: TrainingJob) -> Self {
        Objective {
            engine,
            template,
            kind: ObjectiveKind::IterationTime,
        }
    }

    /// Builds a cost-weighted objective: trials are ranked by GPU-hour
    /// dollars plus modeled electricity (per-generation draw under
    /// `power`), so a slower-but-thriftier config can win.
    pub fn cost_weighted(
        engine: &'a PredictionEngine,
        template: TrainingJob,
        power: PowerModel,
    ) -> Self {
        Objective {
            engine,
            template,
            kind: ObjectiveKind::CostWeighted { power },
        }
    }

    /// The job for a given point.
    pub fn job_for(&self, config: &ConfigPoint) -> TrainingJob {
        TrainingJob {
            parallel: *config,
            ..self.template
        }
    }

    /// Evaluates one configuration end to end.
    pub fn evaluate(&self, config: &ConfigPoint) -> TrialOutcome {
        let job = self.job_for(config);
        if job.validate().is_err() {
            return TrialOutcome::Invalid;
        }
        let pred = self.engine.predict_job(&job);
        self.outcome_of(&job, pred)
    }

    /// Evaluates a batch of configurations, fanning the full-pipeline
    /// predictions across the engine's worker pool.
    ///
    /// Outcomes align positionally with `configs` and are identical to
    /// per-config [`Objective::evaluate`] results: the prediction
    /// pipeline is deterministic and invalid configs are rejected before
    /// ever reaching it.
    pub fn evaluate_batch(&self, configs: &[ConfigPoint]) -> Vec<TrialOutcome> {
        self.evaluate_batch_with(configs, None)
            .expect("no token, no cancellation")
    }

    /// [`Objective::evaluate_batch`] with cooperative cancellation.
    /// Returns `None` when the token fired before every member
    /// prediction ran — an all-or-nothing verdict, so a caller never
    /// sees a half-evaluated wave (the scheduler relies on this to keep
    /// cancelled searches byte-identical to uncancelled prefixes).
    pub fn evaluate_batch_with(
        &self,
        configs: &[ConfigPoint],
        cancel: Option<&maya::CancelToken>,
    ) -> Option<Vec<TrialOutcome>> {
        let jobs: Vec<maya_torchlet::TrainingJob> =
            configs.iter().map(|c| self.job_for(c)).collect();
        let mut out = vec![TrialOutcome::Invalid; configs.len()];
        let mut valid = Vec::with_capacity(configs.len());
        for (i, job) in jobs.iter().enumerate() {
            if job.validate().is_ok() {
                valid.push(i);
            }
        }
        let batch: Vec<maya_torchlet::TrainingJob> = valid.iter().map(|&i| jobs[i]).collect();
        for (&i, pred) in valid
            .iter()
            .zip(self.engine.predict_batch_with(&batch, cancel))
        {
            if matches!(pred, Err(maya::MayaError::Cancelled)) {
                return None;
            }
            out[i] = self.outcome_of(&jobs[i], pred);
        }
        Some(out)
    }

    /// Maps a pipeline result to a trial outcome.
    fn outcome_of(
        &self,
        job: &TrainingJob,
        pred: Result<maya::Prediction, maya::MayaError>,
    ) -> TrialOutcome {
        match pred {
            Err(_) => TrialOutcome::Invalid,
            Ok(pred) => match pred.outcome {
                PredictOutcome::OutOfMemory { .. } => TrialOutcome::Oom,
                PredictOutcome::Completed(report) => {
                    let t = report.total_time;
                    let cluster = &self.engine.spec().cluster;
                    let m = job
                        .flops_spec()
                        .map(|s| mfu::mfu(&s, t.as_secs_f64(), cluster))
                        .unwrap_or(0.0);
                    let secs = t.as_secs_f64();
                    let mut cost = secs / 3600.0 * cluster.dollars_per_gpu_hour * job.world as f64;
                    if let ObjectiveKind::CostWeighted { power } = self.kind {
                        // Device busy fraction on the busiest rank — a
                        // deliberate over-estimate (idle ranks are
                        // cheaper), keeping the energy term simple and
                        // monotone in iteration time.
                        let busy = if secs > 0.0 {
                            (report.compute_time + report.comm_time).as_secs_f64() / secs
                        } else {
                            0.0
                        };
                        cost += power.energy_dollars(cluster, job.world, secs, busy);
                    }
                    TrialOutcome::Completed {
                        iteration_time: t,
                        mfu: m,
                        cost,
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya::{Maya, MayaBuilder};
    use maya_hw::ClusterSpec;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig};
    use maya_trace::Dtype;

    fn objective_fixture() -> (Maya, TrainingJob) {
        let cluster = ClusterSpec::h100(1, 8);
        let maya = MayaBuilder::new(cluster).build().unwrap();
        let template = TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 64,
            world: 8,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        };
        (maya, template)
    }

    #[test]
    fn evaluates_valid_config() {
        let (maya, template) = objective_fixture();
        let obj = Objective::new(maya.engine(), template);
        let out = obj.evaluate(&ParallelConfig {
            tp: 2,
            ..Default::default()
        });
        match out {
            TrialOutcome::Completed {
                iteration_time,
                mfu,
                cost,
            } => {
                assert!(iteration_time > SimTime::ZERO);
                assert!(mfu > 0.0 && mfu < 1.0, "mfu {mfu}");
                assert!(cost > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalid_config_flagged() {
        let (maya, template) = objective_fixture();
        let obj = Objective::new(maya.engine(), template);
        // tp=8 exceeds 125M's 12 heads divisibility.
        let out = obj.evaluate(&ParallelConfig {
            tp: 8,
            ..Default::default()
        });
        assert_eq!(out, TrialOutcome::Invalid);
    }

    #[test]
    fn batch_outcomes_match_individual() {
        let cluster = ClusterSpec::h100(1, 8);
        let par_maya = MayaBuilder::new(cluster)
            .emulation_threads(4)
            .build()
            .unwrap();
        let template = objective_fixture().1;
        let obj = Objective::new(par_maya.engine(), template);
        let configs = [
            ParallelConfig::default(),
            ParallelConfig {
                tp: 2,
                ..Default::default()
            },
            ParallelConfig {
                tp: 8,
                ..Default::default()
            }, // invalid: 12 heads % 8
            ParallelConfig {
                tp: 4,
                pp: 2,
                ..Default::default()
            },
            ParallelConfig {
                tp: 2,
                ..Default::default()
            }, // duplicate
        ];
        let batch = obj.evaluate_batch(&configs);
        assert_eq!(batch.len(), configs.len());
        for (c, got) in configs.iter().zip(&batch) {
            assert_eq!(*got, obj.evaluate(c), "config {c:?}");
        }
        assert_eq!(batch[2], TrialOutcome::Invalid);
        assert_eq!(batch[1], batch[4]);
    }

    #[test]
    fn cost_weighted_adds_a_positive_energy_term() {
        let (maya, template) = objective_fixture();
        let plain = Objective::new(maya.engine(), template);
        let weighted = Objective::cost_weighted(maya.engine(), template, PowerModel::datacenter());
        let config = ParallelConfig {
            tp: 2,
            ..Default::default()
        };
        let (a, b) = (plain.evaluate(&config), weighted.evaluate(&config));
        // Same prediction underneath: identical time and MFU.
        assert_eq!(a.time(), b.time());
        assert_eq!(a.mfu(), b.mfu());
        // The energy term strictly raises the cost.
        let (TrialOutcome::Completed { cost: ca, .. }, TrialOutcome::Completed { cost: cb, .. }) =
            (a, b)
        else {
            panic!("both should complete: {a:?} {b:?}");
        };
        assert!(cb > ca, "weighted {cb} <= plain {ca}");
    }

    #[test]
    fn better_config_has_lower_cost() {
        let (maya, template) = objective_fixture();
        let obj = Objective::new(maya.engine(), template);
        let a = obj.evaluate(&ParallelConfig::default());
        let b = obj.evaluate(&ParallelConfig {
            tp: 4,
            pp: 2,
            ..Default::default()
        });
        let (ta, tb) = (a.time().unwrap(), b.time().unwrap());
        // Pure DP should beat heavy model parallelism for a 125M model.
        assert!(ta < tb, "dp-only {ta} vs tp4pp2 {tb}");
    }
}
