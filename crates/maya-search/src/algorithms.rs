//! Black-box search algorithms over the unit hypercube.
//!
//! Implements the algorithm set of the paper's Appendix C comparison:
//! CMA-ES (full covariance, Jacobi eigendecomposition), (1+1)-ES with
//! the 1/5 success rule, global-best particle swarm, differential
//! evolution with two-point crossover, random search, and exhaustive
//! grid search. All minimize; the scheduler supplies fitness values.

// The CMA-ES / Jacobi linear algebra below is textbook matrix code;
// explicit index loops mirror the published update equations.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An ask/tell black-box optimizer over `[0,1]^d`.
pub trait SearchAlgorithm: Send {
    /// Next batch of candidate points to evaluate.
    fn ask(&mut self) -> Vec<Vec<f64>>;
    /// Reports fitness (lower is better) for the last asked batch.
    fn tell(&mut self, points: &[Vec<f64>], fitness: &[f64]);
    /// Whether the algorithm has exhausted its space (grid only).
    fn exhausted(&self) -> bool {
        false
    }
    /// Algorithm name.
    fn name(&self) -> &'static str;
}

/// Which algorithm to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlgorithmKind {
    /// Covariance matrix adaptation evolution strategy.
    CmaEs,
    /// (1+1) evolution strategy.
    OnePlusOne,
    /// Particle swarm optimization.
    Pso,
    /// Differential evolution (two-points crossover).
    TwoPointsDe,
    /// Uniform random search.
    Random,
    /// Exhaustive grid.
    Grid,
}

impl AlgorithmKind {
    /// Instantiates the algorithm for `dims` dimensions.
    pub fn build(self, dims: usize, seed: u64) -> Box<dyn SearchAlgorithm> {
        match self {
            AlgorithmKind::CmaEs => Box::new(CmaEs::new(dims, seed)),
            AlgorithmKind::OnePlusOne => Box::new(OnePlusOne::new(dims, seed)),
            AlgorithmKind::Pso => Box::new(Pso::new(dims, seed)),
            AlgorithmKind::TwoPointsDe => Box::new(TwoPointsDe::new(dims, seed)),
            AlgorithmKind::Random => Box::new(RandomSearch::new(dims, seed)),
            AlgorithmKind::Grid => Box::new(GridSearch::new(dims)),
        }
    }

    /// All kinds (Fig. 16's lineup).
    pub fn all() -> [AlgorithmKind; 6] {
        [
            AlgorithmKind::CmaEs,
            AlgorithmKind::OnePlusOne,
            AlgorithmKind::Pso,
            AlgorithmKind::TwoPointsDe,
            AlgorithmKind::Random,
            AlgorithmKind::Grid,
        ]
    }
}

fn clamp01(v: &mut [f64]) {
    for x in v {
        *x = x.clamp(0.0, 1.0 - 1e-9);
    }
}

// ---------------------------------------------------------------- CMA-ES

/// Full CMA-ES (Hansen's reference parameterization).
pub struct CmaEs {
    dims: usize,
    rng: StdRng,
    mean: Vec<f64>,
    sigma: f64,
    cov: Vec<Vec<f64>>,
    eig_vec: Vec<Vec<f64>>,
    eig_val: Vec<f64>,
    pc: Vec<f64>,
    ps: Vec<f64>,
    lambda: usize,
    mu: usize,
    weights: Vec<f64>,
    mueff: f64,
    cc: f64,
    cs: f64,
    c1: f64,
    cmu: f64,
    damps: f64,
    gen: u64,
    pending_z: Vec<Vec<f64>>,
}

impl CmaEs {
    /// Creates a CMA-ES centered in the cube.
    pub fn new(dims: usize, seed: u64) -> Self {
        let n = dims as f64;
        let lambda = 4 + (3.0 * n.ln()).floor() as usize;
        let mu = lambda / 2;
        let mut weights: Vec<f64> = (0..mu)
            .map(|i| ((mu as f64) + 0.5).ln() - ((i + 1) as f64).ln())
            .collect();
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        let mueff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
        let cc = (4.0 + mueff / n) / (n + 4.0 + 2.0 * mueff / n);
        let cs = (mueff + 2.0) / (n + mueff + 5.0);
        let c1 = 2.0 / ((n + 1.3).powi(2) + mueff);
        let cmu = (1.0 - c1).min(2.0 * (mueff - 2.0 + 1.0 / mueff) / ((n + 2.0).powi(2) + mueff));
        let damps = 1.0 + 2.0 * (0.0f64).max(((mueff - 1.0) / (n + 1.0)).sqrt() - 1.0) + cs;
        let ident: Vec<Vec<f64>> = (0..dims)
            .map(|i| (0..dims).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        CmaEs {
            dims,
            rng: StdRng::seed_from_u64(seed),
            mean: vec![0.5; dims],
            sigma: 0.3,
            cov: ident.clone(),
            eig_vec: ident,
            eig_val: vec![1.0; dims],
            pc: vec![0.0; dims],
            ps: vec![0.0; dims],
            lambda,
            mu,
            weights,
            mueff,
            cc,
            cs,
            c1,
            cmu,
            damps,
            gen: 0,
            pending_z: Vec::new(),
        }
    }

    fn sample_gaussian(&mut self) -> f64 {
        // Box-Muller.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Jacobi eigendecomposition of a symmetric matrix.
fn jacobi_eigen(a: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = a.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();
    for _sweep in 0..50 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i][j] * m[i][j];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let (mkp, mkq) = (m[k][p], m[k][q]);
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let (mpk, mqk) = (m[p][k], m[q][k]);
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let (vkp, vkq) = (v[k][p], v[k][q]);
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig: Vec<f64> = (0..n).map(|i| m[i][i].max(1e-20)).collect();
    (v, eig)
}

impl SearchAlgorithm for CmaEs {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        self.pending_z.clear();
        let mut out = Vec::with_capacity(self.lambda);
        for _ in 0..self.lambda {
            let z: Vec<f64> = (0..self.dims).map(|_| self.sample_gaussian()).collect();
            // y = B * diag(sqrt(D)) * z
            let mut y = vec![0.0; self.dims];
            for (i, yi) in y.iter_mut().enumerate() {
                for j in 0..self.dims {
                    *yi += self.eig_vec[i][j] * self.eig_val[j].sqrt() * z[j];
                }
            }
            let mut x: Vec<f64> = (0..self.dims)
                .map(|i| self.mean[i] + self.sigma * y[i])
                .collect();
            clamp01(&mut x);
            self.pending_z.push(y);
            out.push(x);
        }
        out
    }

    fn tell(&mut self, points: &[Vec<f64>], fitness: &[f64]) {
        self.gen += 1;
        let n = self.dims as f64;
        let mut order: Vec<usize> = (0..points.len()).collect();
        order.sort_by(|&a, &b| {
            fitness[a]
                .partial_cmp(&fitness[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Recompute y from the clamped x (clamping may have moved points).
        let ys: Vec<Vec<f64>> = order
            .iter()
            .take(self.mu)
            .map(|&i| {
                (0..self.dims)
                    .map(|d| (points[i][d] - self.mean[d]) / self.sigma)
                    .collect()
            })
            .collect();
        // Weighted mean step.
        let y_w: Vec<f64> = (0..self.dims)
            .map(|d| ys.iter().zip(&self.weights).map(|(y, w)| w * y[d]).sum())
            .collect();
        for d in 0..self.dims {
            self.mean[d] = (self.mean[d] + self.sigma * y_w[d]).clamp(0.0, 1.0);
        }
        // C^{-1/2} * y_w for the sigma path.
        let mut cinv_y = vec![0.0; self.dims];
        for (i, ci) in cinv_y.iter_mut().enumerate() {
            for j in 0..self.dims {
                // B * D^{-1/2} * B^T y
                let mut btyj = 0.0;
                for k in 0..self.dims {
                    btyj += self.eig_vec[k][j] * y_w[k];
                }
                *ci += self.eig_vec[i][j] / self.eig_val[j].sqrt() * btyj;
            }
        }
        let csn = (self.cs * (2.0 - self.cs) * self.mueff).sqrt();
        for d in 0..self.dims {
            self.ps[d] = (1.0 - self.cs) * self.ps[d] + csn * cinv_y[d];
        }
        let ps_norm: f64 = self.ps.iter().map(|x| x * x).sum::<f64>().sqrt();
        let chin = n.sqrt() * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));
        let hsig = ps_norm / (1.0 - (1.0 - self.cs).powi(2 * self.gen as i32)).sqrt() / chin
            < 1.4 + 2.0 / (n + 1.0);
        let ccn = (self.cc * (2.0 - self.cc) * self.mueff).sqrt();
        for d in 0..self.dims {
            self.pc[d] = (1.0 - self.cc) * self.pc[d] + if hsig { ccn * y_w[d] } else { 0.0 };
        }
        // Covariance update (rank-1 + rank-mu).
        let c1a = self.c1 * (1.0 - if hsig { 0.0 } else { self.cc * (2.0 - self.cc) });
        for i in 0..self.dims {
            for j in 0..self.dims {
                let mut rank_mu = 0.0;
                for (y, w) in ys.iter().zip(&self.weights) {
                    rank_mu += w * y[i] * y[j];
                }
                self.cov[i][j] = (1.0 - c1a - self.cmu) * self.cov[i][j]
                    + self.c1 * self.pc[i] * self.pc[j]
                    + self.cmu * rank_mu;
            }
        }
        self.sigma *= ((self.cs / self.damps) * (ps_norm / chin - 1.0)).exp();
        self.sigma = self.sigma.clamp(1e-4, 1.0);
        let (v, e) = jacobi_eigen(&self.cov);
        self.eig_vec = v;
        self.eig_val = e;
    }

    fn name(&self) -> &'static str {
        "CMA"
    }
}

// ------------------------------------------------------------ (1+1)-ES

/// (1+1)-ES with the 1/5 success rule.
pub struct OnePlusOne {
    dims: usize,
    rng: StdRng,
    best: Vec<f64>,
    best_fit: f64,
    sigma: f64,
    last_ask: Vec<f64>,
}

impl OnePlusOne {
    /// Creates a (1+1)-ES starting from the cube center.
    pub fn new(dims: usize, seed: u64) -> Self {
        OnePlusOne {
            dims,
            rng: StdRng::seed_from_u64(seed),
            best: vec![0.5; dims],
            best_fit: f64::INFINITY,
            sigma: 0.25,
            last_ask: Vec::new(),
        }
    }
}

impl SearchAlgorithm for OnePlusOne {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        let mut x: Vec<f64> = self
            .best
            .iter()
            .map(|&b| {
                let u1: f64 = self.rng.gen_range(1e-12..1.0);
                let u2: f64 = self.rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                b + self.sigma * z
            })
            .collect();
        clamp01(&mut x);
        self.last_ask = x.clone();
        vec![x]
    }

    fn tell(&mut self, _points: &[Vec<f64>], fitness: &[f64]) {
        let f = fitness[0];
        if f < self.best_fit {
            self.best_fit = f;
            self.best = self.last_ask.clone();
            self.sigma = (self.sigma * 1.5).min(0.5);
        } else {
            self.sigma = (self.sigma * 0.87).max(0.02);
        }
        let _ = self.dims;
    }

    fn name(&self) -> &'static str {
        "OnePlusOne"
    }
}

// ----------------------------------------------------------------- PSO

/// Global-best particle swarm.
pub struct Pso {
    rng: StdRng,
    pos: Vec<Vec<f64>>,
    vel: Vec<Vec<f64>>,
    personal_best: Vec<(Vec<f64>, f64)>,
    global_best: (Vec<f64>, f64),
}

impl Pso {
    /// Creates a 16-particle swarm.
    pub fn new(dims: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let swarm = 16;
        let pos: Vec<Vec<f64>> = (0..swarm)
            .map(|_| (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let vel: Vec<Vec<f64>> = (0..swarm)
            .map(|_| (0..dims).map(|_| rng.gen_range(-0.1..0.1)).collect())
            .collect();
        let personal_best = pos.iter().map(|p| (p.clone(), f64::INFINITY)).collect();
        Pso {
            rng,
            pos,
            vel,
            personal_best,
            global_best: (vec![0.5; dims], f64::INFINITY),
        }
    }
}

impl SearchAlgorithm for Pso {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        self.pos.clone()
    }

    fn tell(&mut self, points: &[Vec<f64>], fitness: &[f64]) {
        for (i, f) in fitness.iter().enumerate() {
            if *f < self.personal_best[i].1 {
                self.personal_best[i] = (points[i].clone(), *f);
            }
            if *f < self.global_best.1 {
                self.global_best = (points[i].clone(), *f);
            }
        }
        let (w, c1, c2) = (0.7, 1.5, 1.5);
        for i in 0..self.pos.len() {
            for d in 0..self.pos[i].len() {
                let r1: f64 = self.rng.gen_range(0.0..1.0);
                let r2: f64 = self.rng.gen_range(0.0..1.0);
                self.vel[i][d] = w * self.vel[i][d]
                    + c1 * r1 * (self.personal_best[i].0[d] - self.pos[i][d])
                    + c2 * r2 * (self.global_best.0[d] - self.pos[i][d]);
                self.vel[i][d] = self.vel[i][d].clamp(-0.3, 0.3);
                self.pos[i][d] = (self.pos[i][d] + self.vel[i][d]).clamp(0.0, 1.0 - 1e-9);
            }
        }
    }

    fn name(&self) -> &'static str {
        "PSO"
    }
}

// ------------------------------------------------------------------ DE

/// Differential evolution with two-point crossover.
pub struct TwoPointsDe {
    rng: StdRng,
    pop: Vec<Vec<f64>>,
    fit: Vec<f64>,
    trial: Vec<Vec<f64>>,
}

impl TwoPointsDe {
    /// Creates a 16-member population.
    pub fn new(dims: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let np = 16;
        let pop: Vec<Vec<f64>> = (0..np)
            .map(|_| (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        TwoPointsDe {
            rng,
            fit: vec![f64::INFINITY; np],
            pop,
            trial: Vec::new(),
        }
    }
}

impl SearchAlgorithm for TwoPointsDe {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        let np = self.pop.len();
        let dims = self.pop[0].len();
        let fscale = 0.8;
        self.trial = (0..np)
            .map(|i| {
                let a = self.rng.gen_range(0..np);
                let b = self.rng.gen_range(0..np);
                let c = self.rng.gen_range(0..np);
                let mut t = self.pop[i].clone();
                // Two-point crossover segment from the mutant.
                let p1 = self.rng.gen_range(0..dims);
                let p2 = self.rng.gen_range(0..dims);
                let (lo, hi) = (p1.min(p2), p1.max(p2));
                for (d, td) in t.iter_mut().enumerate() {
                    if d >= lo && d <= hi {
                        *td = self.pop[a][d] + fscale * (self.pop[b][d] - self.pop[c][d]);
                    }
                }
                clamp01(&mut t);
                t
            })
            .collect();
        self.trial.clone()
    }

    fn tell(&mut self, points: &[Vec<f64>], fitness: &[f64]) {
        for i in 0..self.pop.len() {
            if fitness[i] <= self.fit[i] {
                self.pop[i] = points[i].clone();
                self.fit[i] = fitness[i];
            }
        }
    }

    fn name(&self) -> &'static str {
        "TwoPointsDE"
    }
}

// -------------------------------------------------------------- Random

/// Uniform random search.
pub struct RandomSearch {
    dims: usize,
    rng: StdRng,
}

impl RandomSearch {
    /// Creates a random searcher.
    pub fn new(dims: usize, seed: u64) -> Self {
        RandomSearch {
            dims,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SearchAlgorithm for RandomSearch {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        vec![(0..self.dims)
            .map(|_| self.rng.gen_range(0.0..1.0))
            .collect()]
    }

    fn tell(&mut self, _points: &[Vec<f64>], _fitness: &[f64]) {}

    fn name(&self) -> &'static str {
        "Random"
    }
}

// ---------------------------------------------------------------- Grid

/// Exhaustive grid over the knob-index lattice.
pub struct GridSearch {
    dims: usize,
    /// Coordinates per dimension (matches Table 5 cardinalities by
    /// sampling the unit interval densely enough for any knob <= 8).
    steps: usize,
    cursor: u64,
    total: u64,
}

impl GridSearch {
    /// Creates the grid walker.
    pub fn new(dims: usize) -> Self {
        let steps = 8;
        GridSearch {
            dims,
            steps,
            cursor: 0,
            total: (steps as u64).pow(dims as u32),
        }
    }
}

impl SearchAlgorithm for GridSearch {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        if self.cursor >= self.total {
            return vec![];
        }
        let mut idx = self.cursor;
        self.cursor += 1;
        let mut x = Vec::with_capacity(self.dims);
        for _ in 0..self.dims {
            let i = (idx % self.steps as u64) as f64;
            idx /= self.steps as u64;
            x.push((i + 0.5) / self.steps as f64);
        }
        vec![x]
    }

    fn tell(&mut self, _points: &[Vec<f64>], _fitness: &[f64]) {}

    fn exhausted(&self) -> bool {
        self.cursor >= self.total
    }

    fn name(&self) -> &'static str {
        "Grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sphere function with optimum at 0.7^d.
    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|&v| (v - 0.7) * (v - 0.7)).sum()
    }

    fn run(kind: AlgorithmKind, budget: usize) -> f64 {
        let mut alg = kind.build(5, 42);
        let mut best = f64::INFINITY;
        let mut evals = 0;
        while evals < budget && !alg.exhausted() {
            let pts = alg.ask();
            if pts.is_empty() {
                break;
            }
            let fit: Vec<f64> = pts.iter().map(|p| sphere(p)).collect();
            for &f in &fit {
                best = best.min(f);
            }
            evals += pts.len();
            alg.tell(&pts, &fit);
        }
        best
    }

    #[test]
    fn cma_converges_on_sphere() {
        let best = run(AlgorithmKind::CmaEs, 600);
        assert!(best < 1e-3, "CMA best {best}");
    }

    #[test]
    fn one_plus_one_converges() {
        let best = run(AlgorithmKind::OnePlusOne, 600);
        assert!(best < 1e-2, "{best}");
    }

    #[test]
    fn pso_converges() {
        let best = run(AlgorithmKind::Pso, 800);
        assert!(best < 1e-2, "{best}");
    }

    #[test]
    fn de_converges() {
        let best = run(AlgorithmKind::TwoPointsDe, 800);
        assert!(best < 1e-2, "{best}");
    }

    #[test]
    fn evolutionary_beats_random_at_equal_budget() {
        let cma = run(AlgorithmKind::CmaEs, 300);
        let rnd = run(AlgorithmKind::Random, 300);
        assert!(cma < rnd, "cma {cma} random {rnd}");
    }

    #[test]
    fn grid_exhausts() {
        let mut g = GridSearch::new(2);
        let mut n = 0;
        while !g.exhausted() {
            let p = g.ask();
            if p.is_empty() {
                break;
            }
            n += p.len();
        }
        assert_eq!(n, 64);
    }

    #[test]
    fn jacobi_recovers_diagonal() {
        let a = vec![vec![4.0, 0.0], vec![0.0, 9.0]];
        let (_v, e) = jacobi_eigen(&a);
        let mut ev = e.clone();
        ev.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ev[0] - 4.0).abs() < 1e-9 && (ev[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_handles_correlated_matrix() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (v, e) = jacobi_eigen(&a);
        // Eigenvalues 1 and 3; reconstruct A = V diag(e) V^T.
        let mut recon = [[0.0f64; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    recon[i][j] += v[i][k] * e[k] * v[j][k];
                }
            }
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!((recon[i][j] - a[i][j]).abs() < 1e-8);
            }
        }
    }
}
