//! Property-based tests for the search space and algorithms.

use maya_search::{AlgorithmKind, ConfigSpace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_unit` is total on the cube and always yields a point whose
    /// every coordinate is one of the space's declared choices.
    #[test]
    fn from_unit_total_and_in_choices(v in proptest::collection::vec(0.0f64..1.0, 7)) {
        let s = ConfigSpace::default();
        let c = s.from_unit(&v);
        prop_assert!(s.tp.contains(&c.tp));
        prop_assert!(s.pp.contains(&c.pp));
        prop_assert!(s.microbatch_multiplier.contains(&c.microbatch_multiplier));
        prop_assert!(s.virtual_stages.contains(&c.virtual_stages));
        prop_assert!(s.activation_recompute.contains(&c.activation_recompute));
        prop_assert!(s.sequence_parallel.contains(&c.sequence_parallel));
        prop_assert!(s.distributed_optimizer.contains(&c.distributed_optimizer));
    }

    /// Every algorithm's asks stay inside the unit cube, for any seed.
    #[test]
    fn asks_stay_in_cube(seed in any::<u64>()) {
        for kind in AlgorithmKind::all() {
            let mut alg = kind.build(7, seed);
            for round in 0..3 {
                let pts = alg.ask();
                if pts.is_empty() {
                    break;
                }
                for p in &pts {
                    prop_assert_eq!(p.len(), 7);
                    for &x in p {
                        prop_assert!((0.0..1.0).contains(&x), "{kind:?} round {round}: {x}");
                    }
                }
                let fit: Vec<f64> =
                    pts.iter().map(|p| p.iter().map(|x| (x - 0.3).abs()).sum()).collect();
                alg.tell(&pts, &fit);
            }
        }
    }

    /// Telling CMA-ES arbitrary finite fitness values never breaks its
    /// sampling (no NaN/∞ propagation into future asks).
    #[test]
    fn cma_numerically_stable(fits in proptest::collection::vec(0.0f64..1e9, 16)) {
        let mut alg = AlgorithmKind::CmaEs.build(7, 99);
        for _ in 0..4 {
            let pts = alg.ask();
            let f: Vec<f64> = pts.iter().enumerate().map(|(i, _)| fits[i % fits.len()]).collect();
            alg.tell(&pts, &f);
            for p in alg.ask() {
                for &x in &p {
                    prop_assert!(x.is_finite());
                }
            }
        }
    }
}
