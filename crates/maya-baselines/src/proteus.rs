//! Proteus-like domain-specific simulator.

use maya_hw::noise::{centered_factor, Key};
use maya_hw::{ClusterSpec, GpuArch, GroundTruthKernelModel, GroundTruthNetModel};
use maya_torchlet::{FrameworkFlavor, TrainingJob};
use maya_trace::{CollectiveKind, Dtype, KernelKind, SimTime};

use crate::analytical::{BaselineModel, BaselinePrediction};

/// Proteus: a strategy-tree simulator. Its translated model captures the
/// GEMMs and the collective structure well — it even uses *profiled*
/// kernel times — but the manual translation drops the pointwise-kernel
/// tail and all host effects (the semantic gap), and its kernel database
/// was profiled on Volta: on Hopper, per-shape extrapolation is wildly
/// miscalibrated, reproducing the order-of-magnitude deviations of
/// Fig. 7. Per Table 1 it cannot express sequence parallelism or
/// gradient accumulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Proteus {
    kernel_db: GroundTruthKernelModel,
    net: GroundTruthNetModel,
}

impl Proteus {
    /// Per-shape miscalibration factor on Hopper: the Volta-profiled
    /// database extrapolates tensor-core efficiency and SM counts badly,
    /// with errors that swing up to ~6x either way depending on shape.
    fn hopper_miscalibration(&self, m: u64, n: u64, k: u64) -> f64 {
        let h = Key::new(0x5052_4F54)
            .with((m / 256).max(1))
            .with((n / 256).max(1))
            .with((k / 256).max(1))
            .finish();
        // Log-uniform in roughly [0.35, 5.7].
        let c = centered_factor(h, 1.0); // in [0, 2]
        (2.5f64).powf(c - 1.0) * 1.4
    }

    fn gemm_time(&self, m: u64, n: u64, k: u64, dtype: Dtype, cluster: &ClusterSpec) -> SimTime {
        let kind = KernelKind::Gemm { m, n, k, dtype };
        let t = self.kernel_db.kernel_time(&kind, &cluster.gpu);
        if cluster.gpu.arch == GpuArch::Hopper {
            t.scale(self.hopper_miscalibration(m, n, k))
        } else {
            // Volta/Ampere: profiled on the right hardware; small db
            // lookup noise only.
            t.scale(centered_factor(
                Key::new(0x5052).with(m).with(n).with(k).finish(),
                0.05,
            ))
        }
    }
}

impl BaselineModel for Proteus {
    fn name(&self) -> &'static str {
        "Proteus"
    }

    fn predict(&self, job: &TrainingJob, cluster: &ClusterSpec) -> BaselinePrediction {
        if !matches!(job.flavor, FrameworkFlavor::Megatron) {
            return BaselinePrediction::Unsupported;
        }
        let p = &job.parallel;
        // Table 1: no sequence parallelism, no gradient accumulation.
        if p.sequence_parallel || p.microbatch_multiplier > 1 {
            return BaselinePrediction::Unsupported;
        }
        let cfg = match job.model.transformer() {
            Some(c) => *c,
            None => return BaselinePrediction::Unsupported,
        };
        let dp = p.dp(job.world).max(1);
        let m_count = p.num_microbatches().max(1) as u64;
        let micro_bs = job.global_batch as u64 / (dp as u64 * m_count);
        if micro_bs == 0 {
            return BaselinePrediction::Unsupported;
        }

        // Memory model: equivalent to the engine's accounting (the
        // strategy tree does carry tensor shapes).
        let layer_elems = maya_torchlet::memory::layer_param_elems(&cfg, p.tp) as u64;
        let emb = maya_torchlet::memory::embedding_param_elems(&cfg, p.tp) as u64;
        let local_params = layer_elems * cfg.layers as u64 / p.pp as u64 + emb;
        let opt_div = if p.distributed_optimizer {
            dp as u64
        } else {
            1
        };
        let state = 2 * local_params + 4 * local_params + 12 * local_params / opt_div;
        let act_layer = maya_torchlet::memory::act_bytes_per_layer(&cfg, micro_bs as u32, p) as u64;
        let inflight = (m_count as u32).min(p.pp) as u64;
        let acts = act_layer * cfg.layers as u64 / p.pp as u64 * inflight;
        let logits = maya_torchlet::memory::logits_bytes(&cfg, micro_bs as u32, p.tp);
        if state + acts + logits > cluster.gpu.mem_bytes() {
            return BaselinePrediction::OutOfMemory;
        }

        // Per-layer time: the strategy tree captures the six GEMM sites
        // (fwd) and their doubled backward, but drops the pointwise tail.
        let bs = micro_bs * cfg.seq_len as u64;
        let h = cfg.hidden as u64;
        let hp = h / p.tp as u64;
        let ffnp = cfg.ffn as u64 / p.tp as u64;
        let d = job.precision;
        let heads_p = (cfg.heads as u64 / p.tp as u64).max(1);
        let mut layer = SimTime::ZERO;
        // Forward GEMMs.
        layer += self.gemm_time(bs, 3 * hp, h, d, cluster);
        layer += self
            .gemm_time(
                cfg.seq_len as u64,
                cfg.seq_len as u64,
                h / cfg.heads as u64,
                d,
                cluster,
            )
            .scale(micro_bs as f64 * heads_p as f64 / 64.0); // batched
        layer += self
            .gemm_time(
                cfg.seq_len as u64,
                h / cfg.heads as u64,
                cfg.seq_len as u64,
                d,
                cluster,
            )
            .scale(micro_bs as f64 * heads_p as f64 / 64.0);
        layer += self.gemm_time(bs, h, hp, d, cluster);
        layer += self.gemm_time(bs, ffnp, h, d, cluster);
        layer += self.gemm_time(bs, h, ffnp, d, cluster);
        // Backward is 2x the forward GEMM work.
        let layer_total = layer.scale(3.0);
        let recompute_factor = if p.activation_recompute {
            4.0 / 3.0
        } else {
            1.0
        };

        // TP collectives (matched well by the tree).
        let act_bytes = bs * h * d.size_bytes();
        let tp_ranks: Vec<u32> = (0..p.tp).collect();
        let t_tp = if p.tp > 1 {
            self.net
                .collective_time(CollectiveKind::AllReduce, act_bytes, &tp_ranks, cluster)
                .scale(4.0)
        } else {
            SimTime::ZERO
        };

        let layers_per_stage = cfg.layers as u64 / p.pp as u64;
        let stage = (layer_total.scale(recompute_factor) + t_tp.scale(layers_per_stage as f64))
            .max(layer_total.scale(recompute_factor));
        let per_micro = layer_total.scale(recompute_factor * layers_per_stage as f64)
            + t_tp.scale(layers_per_stage as f64);
        let _ = stage;

        // Head + embedding.
        let head = self
            .gemm_time(bs, cfg.vocab as u64 / p.tp as u64, h, d, cluster)
            .scale(3.0);

        // Pipeline: (m + p - 1) stage slots, interleaving shrinks the
        // bubble by the chunk count.
        let chunks = p.virtual_stages.max(1) as f64;
        let bubble = if p.pp > 1 {
            (p.pp as f64 - 1.0) / (m_count as f64 * chunks)
        } else {
            0.0
        };
        let mut total = (per_micro.scale(m_count as f64)
            + head.scale(m_count as f64 / p.pp as f64))
        .scale(1.0 + bubble);

        // DP gradient reduction, partially overlapped.
        if dp > 1 {
            let dp_ranks: Vec<u32> = (0..dp).map(|i| i * p.tp).collect();
            let t_dp = self.net.collective_time(
                CollectiveKind::AllReduce,
                4 * local_params,
                &dp_ranks,
                cluster,
            );
            total += t_dp.scale(0.6);
        }
        // Optimizer, modeled as bandwidth-bound state touch.
        let opt_bytes = 18.0 * local_params as f64 / opt_div as f64;
        total += SimTime::from_secs(opt_bytes / (cluster.gpu.mem_bw_gbps * 1e9 * 0.6));
        BaselinePrediction::Time(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_torchlet::{ModelSpec, ParallelConfig};

    fn job(world: u32) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            parallel: ParallelConfig {
                tp: 2,
                pp: 2,
                activation_recompute: true,
                ..Default::default()
            },
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 32,
            world,
            gpus_per_node: 8,
            precision: Dtype::Fp16,
            iterations: 1,
        }
    }

    #[test]
    fn reasonable_on_volta() {
        let c = ClusterSpec::v100(1, 8);
        let t = Proteus::default().predict(&job(8), &c).time().unwrap();
        assert!(t.as_secs_f64() > 0.1 && t.as_secs_f64() < 60.0, "{t}");
    }

    #[test]
    fn hopper_miscalibration_varies_wildly_by_shape() {
        let p = Proteus::default();
        let factors: Vec<f64> = (1..40u64)
            .map(|i| p.hopper_miscalibration(256 * i, 4096, 4096))
            .collect();
        let max = factors.iter().cloned().fold(f64::MIN, f64::max);
        let min = factors.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 4.0, "spread {min}..{max}");
    }

    #[test]
    fn rejects_seq_parallel_and_grad_accum() {
        let c = ClusterSpec::v100(1, 8);
        let mut j = job(8);
        j.parallel.microbatch_multiplier = 2;
        assert_eq!(
            Proteus::default().predict(&j, &c),
            BaselinePrediction::Unsupported
        );
        let mut j2 = job(8);
        j2.parallel.sequence_parallel = true;
        assert_eq!(
            Proteus::default().predict(&j2, &c),
            BaselinePrediction::Unsupported
        );
    }

    #[test]
    fn supports_llama_unlike_analytical_baselines() {
        // Proteus is workload-agnostic (Table 1).
        let c = ClusterSpec::v100(4, 8);
        let mut j = job(32);
        j.model = ModelSpec::llama2_7b();
        j.parallel = ParallelConfig {
            tp: 2,
            pp: 8,
            activation_recompute: true,
            ..Default::default()
        };
        j.global_batch = 16;
        assert!(Proteus::default().predict(&j, &c).time().is_some());
    }
}
