//! Calculon-like analytical model.

use maya_hw::ClusterSpec;
use maya_torchlet::TrainingJob;

use crate::analytical::{
    analytical_time, is_megatron_gpt, AnalyticalKnobs, BaselineModel, BaselinePrediction,
};

/// Calculon: careful coverage of every Table 5 knob for Megatron-style
/// GPT training, with optimistic constants — near-peak math efficiency,
/// latency-free collectives, fully-overlapped gradient reduction, free
/// host dispatch. The result is the systematic *under*-estimation the
/// paper reports ("Calculon's consistent underestimation", §7.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct Calculon;

impl BaselineModel for Calculon {
    fn name(&self) -> &'static str {
        "Calculon"
    }

    fn predict(&self, job: &TrainingJob, cluster: &ClusterSpec) -> BaselinePrediction {
        // GPT + Megatron only; bf16-only analytical tables (the paper
        // omits Calculon on Volta for exactly this reason).
        if !is_megatron_gpt(job) || !cluster.gpu.supports_bf16 {
            return BaselinePrediction::Unsupported;
        }
        let cfg = match job.model.transformer() {
            Some(c) => *c,
            None => return BaselinePrediction::Unsupported,
        };
        let knobs = AnalyticalKnobs {
            compute_efficiency: 0.82,
            network_efficiency: 0.95,
            dp_overlap: 1.0,
            per_microbatch_overhead_us: 0.0,
            model_latency: false,
            memory_model_factor: 0.95,
            count_logits_memory: true,
        };
        analytical_time(job, &cfg, cluster, &knobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig};
    use maya_trace::Dtype;

    fn job(world: u32) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            parallel: ParallelConfig {
                tp: 2,
                pp: 2,
                microbatch_multiplier: 2,
                ..Default::default()
            },
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 16,
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    #[test]
    fn supports_full_knob_space_on_hopper() {
        let c = ClusterSpec::h100(1, 8);
        let mut j = job(8);
        j.parallel.sequence_parallel = true;
        j.parallel.distributed_optimizer = true;
        j.parallel.activation_recompute = true;
        assert!(Calculon.predict(&j, &c).time().is_some());
    }

    #[test]
    fn rejects_volta_and_non_gpt() {
        let v = ClusterSpec::v100(1, 8);
        assert_eq!(
            Calculon.predict(&job(8), &v),
            BaselinePrediction::Unsupported
        );
        let c = ClusterSpec::h100(1, 8);
        let mut j = job(8);
        j.model = ModelSpec::llama2_7b();
        assert_eq!(Calculon.predict(&j, &c), BaselinePrediction::Unsupported);
    }

    #[test]
    fn prediction_is_optimistic_scale() {
        // A 2.7B model at batch 64 on 8 H100s: Calculon's ideal-world
        // estimate should be hundreds of milliseconds, not seconds.
        let c = ClusterSpec::h100(1, 8);
        let t = Calculon.predict(&job(8), &c).time().unwrap();
        assert!(t.as_secs_f64() > 0.05 && t.as_secs_f64() < 2.0, "{t}");
    }
}
