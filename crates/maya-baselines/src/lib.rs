//! Baseline performance-modeling systems (§7.1): Calculon-, AMPeD- and
//! Proteus-like models.
//!
//! Faithful to the paper's framing, all three consume a *declarative*
//! description of the workload — the model architecture and the recipe
//! knobs — never the emulated trace. Whatever the training scripts
//! actually do (host overheads, exact kernel shapes, memory lifetimes,
//! overlap structure) is invisible to them: that is the semantic gap.
//!
//! Their characteristic behaviors, calibrated to the paper's findings:
//!
//! - **Calculon**: a careful analytical model covering every knob of
//!   Table 5 for Megatron-style GPT training, but optimistic — it
//!   assumes near-peak math efficiency, latency-free collectives, full
//!   overlap of data-parallel communication, and free host dispatch, so
//!   it consistently *under*-estimates (Fig. 9's left-shifted CDF).
//! - **AMPeD**: a coarse operator-level analytical model with a fixed
//!   utilization factor and no overlap modeling; it *over*-estimates by
//!   2-3x and supports only plain TP/PP (Table 1).
//! - **Proteus**: a domain-specific simulator whose strategy-tree
//!   translation captures GEMMs and collectives but drops the pointwise-
//!   kernel tail and host effects; its kernel database was profiled on
//!   Volta, so on Hopper its per-shape extrapolation is badly
//!   miscalibrated (the order-of-magnitude deviations of Fig. 7).

pub mod amped;
pub mod analytical;
pub mod calculon;
pub mod proteus;

pub use amped::Amped;
pub use analytical::{BaselineModel, BaselinePrediction};
pub use calculon::Calculon;
pub use proteus::Proteus;
