//! Shared analytical machinery for the baseline models.

use maya_hw::ClusterSpec;
use maya_torchlet::{FrameworkFlavor, TrainingJob, TransformerConfig};
use maya_trace::SimTime;

/// What a baseline predicts for one configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BaselinePrediction {
    /// Predicted iteration time.
    Time(SimTime),
    /// The model predicts this configuration runs out of memory.
    OutOfMemory,
    /// The system cannot express this configuration (Table 1 gaps).
    Unsupported,
}

impl BaselinePrediction {
    /// The predicted time, if any.
    pub fn time(&self) -> Option<SimTime> {
        match self {
            BaselinePrediction::Time(t) => Some(*t),
            _ => None,
        }
    }
}

/// A runtime-modeling system under comparison.
pub trait BaselineModel: Send + Sync {
    /// System name for plots.
    fn name(&self) -> &'static str;
    /// Predicts the iteration time of a declaratively-described job.
    fn predict(&self, job: &TrainingJob, cluster: &ClusterSpec) -> BaselinePrediction;
}

/// Tunable constants of the shared analytical core.
#[derive(Clone, Copy, Debug)]
pub struct AnalyticalKnobs {
    /// Assumed fraction of peak math throughput.
    pub compute_efficiency: f64,
    /// Assumed fraction of peak link bandwidth.
    pub network_efficiency: f64,
    /// Fraction of data-parallel gradient communication hidden by
    /// overlap (1.0 = fully hidden).
    pub dp_overlap: f64,
    /// Per-microbatch fixed overhead in microseconds (sync, scheduling).
    pub per_microbatch_overhead_us: f64,
    /// Whether collective latency terms are modeled at all.
    pub model_latency: bool,
    /// Multiplier on the memory-capacity estimate (for OOM prediction).
    pub memory_model_factor: f64,
    /// Whether the logits/loss workspace is accounted in memory.
    pub count_logits_memory: bool,
}

/// The shared analytical iteration-time model: Megatron-style 3D
/// parallel transformer training described purely by its configuration.
pub fn analytical_time(
    job: &TrainingJob,
    cfg: &TransformerConfig,
    cluster: &ClusterSpec,
    knobs: &AnalyticalKnobs,
) -> BaselinePrediction {
    let p = &job.parallel;
    let world = job.world as f64;
    let dp = p.dp(job.world).max(1) as f64;
    let tp = p.tp as f64;
    let pp = p.pp as f64;
    let m = p.num_microbatches().max(1) as f64;
    let micro_bs = job.global_batch as f64 / (dp * m);
    if micro_bs < 1.0 {
        return BaselinePrediction::Unsupported;
    }

    // ---- memory model (for OOM prediction) ----
    let layer_elems = maya_torchlet::memory::layer_param_elems(cfg, p.tp) as f64;
    let emb_elems = maya_torchlet::memory::embedding_param_elems(cfg, p.tp) as f64;
    let local_params = layer_elems * cfg.layers as f64 / pp + emb_elems;
    let opt_div = if p.distributed_optimizer { dp } else { 1.0 };
    let state = 2.0 * local_params + 4.0 * local_params + 12.0 * local_params / opt_div;
    let act_layer = maya_torchlet::memory::act_bytes_per_layer(cfg, micro_bs as u32, p) as f64;
    let inflight = m.min(pp);
    let act_total = act_layer
        * (cfg.layers as f64 / (pp * p.virtual_stages as f64))
        * inflight
        * p.virtual_stages as f64;
    let logits = if knobs.count_logits_memory {
        maya_torchlet::memory::logits_bytes(cfg, micro_bs as u32, p.tp) as f64
    } else {
        0.0
    };
    let needed = (state + act_total + logits) * knobs.memory_model_factor;
    if needed > cluster.gpu.mem_bytes() as f64 {
        return BaselinePrediction::OutOfMemory;
    }

    // ---- compute ----
    let flops_spec = cfg.flops_spec(job.global_batch, p.activation_recompute);
    let total_flops = maya_hw::model_flops_per_iteration(&flops_spec);
    let peak = cluster.gpu.peak_flops(job.precision);
    let t_compute = total_flops / (world * peak * knobs.compute_efficiency);

    // ---- tensor-parallel communication ----
    let elem = job.precision.size_bytes() as f64;
    let t_tp = if p.tp > 1 {
        let bytes_per_layer = 4.0 * micro_bs * cfg.seq_len as f64 * cfg.hidden as f64 * elem;
        // 4 activation-sized collectives per layer forward, 4 backward
        // (all-reduce algebra: 2(t-1)/t of the payload on the wire).
        let tp_ranks: Vec<u32> = (0..p.tp).collect();
        let intra = cluster.single_node(&tp_ranks);
        let link = if intra {
            cluster.intra_link
        } else {
            cluster.inter_link
        };
        let wire = 2.0 * (tp - 1.0) / tp * bytes_per_layer
            / (link.bw_gbps * 1e9 * knobs.network_efficiency);
        let lat = if knobs.model_latency {
            (tp - 1.0) * link.latency_us * 1e-6 * 8.0
        } else {
            0.0
        };
        (wire + lat) * cfg.layers as f64 / pp * m * 2.0
    } else {
        0.0
    };

    // ---- pipeline bubble ----
    let chunks = p.virtual_stages.max(1) as f64;
    let bubble = if p.pp > 1 {
        (pp - 1.0) / (m * chunks)
    } else {
        0.0
    };
    // p2p transfer cost per boundary crossing.
    let t_p2p = if p.pp > 1 {
        let boundary = micro_bs * cfg.seq_len as f64 * cfg.hidden as f64 * elem;
        let link = if (job.world / p.pp) >= job.gpus_per_node {
            cluster.inter_link
        } else {
            cluster.intra_link
        };
        2.0 * m * chunks * boundary / (link.bw_gbps * 1e9 * knobs.network_efficiency)
    } else {
        0.0
    };

    // ---- data-parallel gradient communication ----
    let t_dp = if dp > 1.0 {
        let grad_bytes = 4.0 * local_params;
        let dp_ranks: Vec<u32> = (0..p.dp(job.world)).map(|i| i * p.tp).collect();
        let intra = cluster.single_node(&dp_ranks);
        let link = if intra {
            cluster.intra_link
        } else {
            cluster.inter_link
        };
        let wire =
            2.0 * (dp - 1.0) / dp * grad_bytes / (link.bw_gbps * 1e9 * knobs.network_efficiency);
        wire * (1.0 - knobs.dp_overlap)
    } else {
        0.0
    };

    let overheads = m * knobs.per_microbatch_overhead_us * 1e-6;
    let t = (t_compute + t_tp) * (1.0 + bubble) + t_p2p + t_dp + overheads;
    BaselinePrediction::Time(SimTime::from_secs(t))
}

/// True when the job is a Megatron-flavored GPT-family transformer (the
/// only workload Calculon and AMPeD natively model, §7.1).
pub fn is_megatron_gpt(job: &TrainingJob) -> bool {
    matches!(job.flavor, FrameworkFlavor::Megatron)
        && matches!(job.model, maya_torchlet::ModelSpec::Gpt(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_torchlet::{ModelSpec, ParallelConfig};
    use maya_trace::Dtype;

    fn job() -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            parallel: ParallelConfig {
                tp: 2,
                pp: 2,
                microbatch_multiplier: 2,
                activation_recompute: true,
                ..Default::default()
            },
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 64,
            world: 8,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    fn knobs() -> AnalyticalKnobs {
        AnalyticalKnobs {
            compute_efficiency: 0.5,
            network_efficiency: 0.8,
            dp_overlap: 0.5,
            per_microbatch_overhead_us: 100.0,
            model_latency: true,
            memory_model_factor: 1.0,
            count_logits_memory: true,
        }
    }

    #[test]
    fn time_scales_inversely_with_efficiency() {
        let cluster = ClusterSpec::h100(1, 8);
        let cfg = *job().model.transformer().unwrap();
        let fast = analytical_time(
            &job(),
            &cfg,
            &cluster,
            &AnalyticalKnobs {
                compute_efficiency: 0.8,
                ..knobs()
            },
        );
        let slow = analytical_time(
            &job(),
            &cfg,
            &cluster,
            &AnalyticalKnobs {
                compute_efficiency: 0.2,
                ..knobs()
            },
        );
        assert!(slow.time().unwrap() > fast.time().unwrap().scale(1.5));
    }

    #[test]
    fn oom_predicted_for_oversized_activations() {
        let cluster = ClusterSpec::h100(1, 8);
        let mut j = job();
        j.global_batch = 4096; // enormous microbatches
        j.parallel = ParallelConfig::default();
        j.world = 8;
        let cfg = *j.model.transformer().unwrap();
        assert_eq!(
            analytical_time(&j, &cfg, &cluster, &knobs()),
            BaselinePrediction::OutOfMemory
        );
    }

    #[test]
    fn bubble_shrinks_with_more_microbatches() {
        let cluster = ClusterSpec::h100(1, 8);
        let cfg = *job().model.transformer().unwrap();
        let few = analytical_time(&job(), &cfg, &cluster, &knobs())
            .time()
            .unwrap();
        let mut j = job();
        j.parallel.microbatch_multiplier = 8;
        let many = analytical_time(&j, &cfg, &cluster, &knobs())
            .time()
            .unwrap();
        assert!(many < few, "few-mb {few} many-mb {many}");
    }
}
