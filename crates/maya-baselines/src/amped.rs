//! AMPeD-like analytical model.

use maya_hw::ClusterSpec;
use maya_torchlet::TrainingJob;

use crate::analytical::{
    analytical_time, is_megatron_gpt, AnalyticalKnobs, BaselineModel, BaselinePrediction,
};

/// AMPeD: a coarse operator-level analytical model. A fixed (and
/// pessimistic) utilization factor, no compute/communication overlap, no
/// size-dependent efficiency, and hefty per-microbatch synchronization
/// charges produce the consistent 2-3x *over*-estimation the paper
/// observes (Fig. 9), while the rigid modeling language supports only
/// plain TP/PP (Table 1: no sequence parallelism, no interleaving, no
/// distributed optimizer, no recomputation, no gradient accumulation).
#[derive(Clone, Copy, Debug, Default)]
pub struct Amped;

impl BaselineModel for Amped {
    fn name(&self) -> &'static str {
        "AMPeD"
    }

    fn predict(&self, job: &TrainingJob, cluster: &ClusterSpec) -> BaselinePrediction {
        if !is_megatron_gpt(job) || !cluster.gpu.supports_bf16 {
            return BaselinePrediction::Unsupported;
        }
        let p = &job.parallel;
        if p.sequence_parallel
            || p.virtual_stages > 1
            || p.distributed_optimizer
            || p.activation_recompute
            || p.microbatch_multiplier > 1
        {
            return BaselinePrediction::Unsupported;
        }
        let cfg = match job.model.transformer() {
            Some(c) => *c,
            None => return BaselinePrediction::Unsupported,
        };
        let knobs = AnalyticalKnobs {
            compute_efficiency: 0.22,
            network_efficiency: 0.40,
            dp_overlap: 0.0,
            per_microbatch_overhead_us: 1500.0,
            model_latency: true,
            // Crude memory model that ignores the logits workspace, so
            // some truly-OOM configs look feasible to it.
            memory_model_factor: 0.9,
            count_logits_memory: false,
        };
        analytical_time(job, &cfg, cluster, &knobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculon::Calculon;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig};
    use maya_trace::Dtype;

    fn job() -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_2_7b(),
            parallel: ParallelConfig {
                tp: 2,
                pp: 2,
                ..Default::default()
            },
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 8,
            world: 8,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    #[test]
    fn overestimates_relative_to_calculon() {
        let c = ClusterSpec::h100(1, 8);
        let amped = Amped.predict(&job(), &c).time().unwrap();
        let calc = Calculon.predict(&job(), &c).time().unwrap();
        let ratio = amped.as_secs_f64() / calc.as_secs_f64();
        assert!(ratio > 2.0, "AMPeD/Calculon ratio {ratio}");
    }

    #[test]
    fn rejects_advanced_knobs() {
        let c = ClusterSpec::h100(1, 8);
        let mut j = job();
        j.parallel.activation_recompute = true;
        assert_eq!(Amped.predict(&j, &c), BaselinePrediction::Unsupported);
        let mut j2 = job();
        j2.parallel.microbatch_multiplier = 4;
        assert_eq!(Amped.predict(&j2, &c), BaselinePrediction::Unsupported);
        let mut j3 = job();
        j3.parallel.sequence_parallel = true;
        j3.parallel.tp = 2;
        assert_eq!(Amped.predict(&j3, &c), BaselinePrediction::Unsupported);
    }
}
