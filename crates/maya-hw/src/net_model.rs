//! Ground-truth collective-communication timing.
//!
//! Implements topology-aware ring / hierarchical collective models in the
//! spirit of nccl-tests measurements and ASTRA-sim's analytical backend:
//! latency terms per algorithm step plus a bandwidth term using the
//! bottleneck link's size-dependent effective bandwidth.

use maya_trace::{CollectiveKind, SimTime};

use crate::noise::{centered_factor, Key};
use crate::specs::ClusterSpec;

/// Deterministic "real network" timing for collectives.
#[derive(Clone, Copy, Debug)]
pub struct GroundTruthNetModel {
    /// Seed for per-(collective, size) texture.
    pub seed: u64,
    /// Amplitude of the texture perturbation.
    pub texture_amplitude: f64,
}

impl Default for GroundTruthNetModel {
    fn default() -> Self {
        GroundTruthNetModel {
            seed: 0x4E43_434C,
            texture_amplitude: 0.045,
        }
    }
}

impl GroundTruthNetModel {
    /// Builds a model with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        GroundTruthNetModel {
            seed,
            ..Default::default()
        }
    }

    /// On-the-wire duration of one collective over `ranks` (global ids).
    ///
    /// `bytes` is the per-rank payload contribution (NCCL convention:
    /// the buffer size passed by each rank).
    pub fn collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        ranks: &[u32],
        cluster: &ClusterSpec,
    ) -> SimTime {
        let n = ranks.len().max(1) as f64;
        if n <= 1.0 {
            return SimTime::from_us(2.0);
        }
        let b = bytes as f64;
        let single_node = cluster.single_node(ranks);
        let (link, nodes_spanned) = if single_node {
            (cluster.intra_link, 1u32)
        } else {
            let mut nodes: Vec<u32> = ranks.iter().map(|&r| cluster.node_of(r)).collect();
            nodes.sort_unstable();
            nodes.dedup();
            (cluster.inter_link, nodes.len() as u32)
        };

        let bw = link.effective_bw(b);
        // Ring-step latency: (n-1) hops intra-node, hierarchical across
        // nodes (intra ring + inter ring).
        let steps = if single_node {
            n - 1.0
        } else {
            (cluster.gpus_per_node.min(ranks.len() as u32) as f64 - 1.0).max(0.0)
                + (nodes_spanned as f64 - 1.0)
        };
        let lat = if single_node {
            steps * cluster.intra_link.latency_us
        } else {
            let intra_steps = (cluster.gpus_per_node.min(ranks.len() as u32) as f64 - 1.0).max(0.0);
            intra_steps * cluster.intra_link.latency_us
                + (nodes_spanned as f64 - 1.0) * cluster.inter_link.latency_us
        };

        // Bandwidth term per collective algebra (ring algorithms).
        let bw_bytes = match kind {
            CollectiveKind::AllReduce => 2.0 * (n - 1.0) / n * b,
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => (n - 1.0) / n * b,
            CollectiveKind::Broadcast | CollectiveKind::Reduce => b,
            CollectiveKind::Send { .. } | CollectiveKind::Recv { .. } => b,
            CollectiveKind::AllToAll => (n - 1.0) / n * b * 1.3,
        };

        // Point-to-point transfers use the direct link between the two
        // ranks rather than a ring.
        let t = match kind {
            CollectiveKind::Send { .. } | CollectiveKind::Recv { .. } => {
                let p2p_link = if single_node {
                    cluster.intra_link
                } else {
                    cluster.inter_link
                };
                p2p_link.latency_us * 1e-6 + b / p2p_link.effective_bw(b)
            }
            _ => lat * 1e-6 + bw_bytes / bw,
        };

        let tex = centered_factor(
            Key::new(self.seed)
                .with(kind.id() as u64)
                .with(bytes)
                .with(ranks.len() as u64)
                .with(single_node as u64)
                .finish(),
            self.texture_amplitude,
        );
        SimTime::from_secs(t * tex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn allreduce_scales_with_bytes() {
        let m = GroundTruthNetModel::default();
        let c = ClusterSpec::h100(1, 8);
        let small = m.collective_time(CollectiveKind::AllReduce, 1 << 20, &ranks(8), &c);
        let big = m.collective_time(CollectiveKind::AllReduce, 1 << 30, &ranks(8), &c);
        // 1024x the bytes: far more than linear in the ramp region, but
        // bounded by the peak-bandwidth asymptote.
        assert!(big > small * 50, "small {small} big {big}");
        assert!(big < small * 2048, "small {small} big {big}");
    }

    #[test]
    fn inter_node_slower_than_intra() {
        let m = GroundTruthNetModel::default();
        let c = ClusterSpec::h100(2, 8);
        let intra = m.collective_time(CollectiveKind::AllReduce, 1 << 26, &ranks(8), &c);
        let inter: Vec<u32> = (0..16).collect();
        let cross = m.collective_time(CollectiveKind::AllReduce, 1 << 26, &inter, &c);
        assert!(cross > intra * 2, "intra {intra} cross {cross}");
    }

    #[test]
    fn allgather_cheaper_than_allreduce() {
        let m = GroundTruthNetModel::default();
        let c = ClusterSpec::v100(1, 8);
        let ar = m.collective_time(CollectiveKind::AllReduce, 1 << 26, &ranks(8), &c);
        let ag = m.collective_time(CollectiveKind::AllGather, 1 << 26, &ranks(8), &c);
        assert!(ag < ar);
    }

    #[test]
    fn p2p_send_reasonable() {
        let m = GroundTruthNetModel::default();
        let c = ClusterSpec::h100(2, 8);
        // 64 MiB over 450 GB/s NVLink: on the order of 150 us.
        let t = m.collective_time(CollectiveKind::Send { peer: 1 }, 1 << 26, &[0, 1], &c);
        assert!(t.as_us() > 50.0 && t.as_us() < 1000.0, "{t}");
        // Cross-node send is slower.
        let tx = m.collective_time(CollectiveKind::Send { peer: 8 }, 1 << 26, &[0, 8], &c);
        assert!(tx > t);
    }

    #[test]
    fn singleton_collective_trivial() {
        let m = GroundTruthNetModel::default();
        let c = ClusterSpec::h100(1, 8);
        let t = m.collective_time(CollectiveKind::AllReduce, 1 << 30, &[3], &c);
        assert!(t.as_us() < 10.0);
    }

    #[test]
    fn deterministic() {
        let m = GroundTruthNetModel::default();
        let c = ClusterSpec::v100(2, 8);
        let a = m.collective_time(CollectiveKind::ReduceScatter, 123456, &ranks(16), &c);
        let b = m.collective_time(CollectiveKind::ReduceScatter, 123456, &ranks(16), &c);
        assert_eq!(a, b);
    }
}
