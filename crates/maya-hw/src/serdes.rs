//! Compact-token codecs for the hardware spec types.
//!
//! Hand-written `serde::Serialize`/`Deserialize` impls over the
//! vendored whitespace token format (see `vendor/serde`), so cluster
//! specs — including the opt-in topology and heterogeneous-pool fields
//! — can cross the wire bit-exactly. Floats encode as IEEE-754 bit
//! patterns; round trips are lossless.
//!
//! Version skew: the topology/hetero fields are a v4 wire addition.
//! [`decode_cluster_spec`] takes the negotiated protocol version and
//! defaults both to `None` for v3-and-older bodies, so old clients
//! keep working against new servers.

use serde::{compact, Deserialize, Reader, Serialize, Writer};

use crate::power::PowerModel;
use crate::specs::{ClusterSpec, GpuArch, GpuSpec, LinkSpec};
use crate::topology::{HeteroPool, NetLink, RankClass, TopologySpec};

/// First protocol version that carries the topology/hetero spec tail.
pub const SPEC_TAIL_VERSION: u16 = 4;

impl Serialize for GpuArch {
    fn serialize(&self, w: &mut Writer) {
        w.tag(match self {
            GpuArch::Volta => "volta",
            GpuArch::Ampere => "ampere",
            GpuArch::Hopper => "hopper",
        });
    }
}

impl<'de> Deserialize<'de> for GpuArch {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        match r.raw_token()? {
            "volta" => Ok(GpuArch::Volta),
            "ampere" => Ok(GpuArch::Ampere),
            "hopper" => Ok(GpuArch::Hopper),
            t => Err(compact::Error::parse(t, "gpu arch (volta|ampere|hopper)")),
        }
    }
}

/// Resolves a decoded GPU name to a `&'static str`: preset names map to
/// the existing statics; anything else is leaked once (GPU names are a
/// tiny closed set in practice, so the leak is bounded).
fn static_gpu_name(name: String) -> &'static str {
    match name.as_str() {
        "V100" => "V100",
        "H100" => "H100",
        "A40" => "A40",
        "A100" => "A100",
        _ => Box::leak(name.into_boxed_str()),
    }
}

impl Serialize for GpuSpec {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            name,
            arch,
            fp32_tflops,
            tensor_tflops,
            mem_gib,
            mem_bw_gbps,
            pcie_bw_gbps,
            sm_count,
            kernel_floor_us,
            supports_bf16,
        } = self;
        name.serialize(w);
        arch.serialize(w);
        fp32_tflops.serialize(w);
        tensor_tflops.serialize(w);
        mem_gib.serialize(w);
        mem_bw_gbps.serialize(w);
        pcie_bw_gbps.serialize(w);
        sm_count.serialize(w);
        kernel_floor_us.serialize(w);
        supports_bf16.serialize(w);
    }
}

impl<'de> Deserialize<'de> for GpuSpec {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(GpuSpec {
            name: static_gpu_name(String::deserialize(r)?),
            arch: GpuArch::deserialize(r)?,
            fp32_tflops: f64::deserialize(r)?,
            tensor_tflops: f64::deserialize(r)?,
            mem_gib: f64::deserialize(r)?,
            mem_bw_gbps: f64::deserialize(r)?,
            pcie_bw_gbps: f64::deserialize(r)?,
            sm_count: u32::deserialize(r)?,
            kernel_floor_us: f64::deserialize(r)?,
            supports_bf16: bool::deserialize(r)?,
        })
    }
}

impl Serialize for LinkSpec {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            bw_gbps,
            latency_us,
            half_ramp_bytes,
        } = self;
        bw_gbps.serialize(w);
        latency_us.serialize(w);
        half_ramp_bytes.serialize(w);
    }
}

impl<'de> Deserialize<'de> for LinkSpec {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(LinkSpec {
            bw_gbps: f64::deserialize(r)?,
            latency_us: f64::deserialize(r)?,
            half_ramp_bytes: f64::deserialize(r)?,
        })
    }
}

impl Serialize for NetLink {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            bw_gbps,
            latency_us,
        } = self;
        bw_gbps.serialize(w);
        latency_us.serialize(w);
    }
}

impl<'de> Deserialize<'de> for NetLink {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(NetLink {
            bw_gbps: f64::deserialize(r)?,
            latency_us: f64::deserialize(r)?,
        })
    }
}

impl Serialize for TopologySpec {
    fn serialize(&self, w: &mut Writer) {
        let Self { links } = self;
        links.serialize(w);
    }
}

impl<'de> Deserialize<'de> for TopologySpec {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(TopologySpec {
            links: Vec::deserialize(r)?,
        })
    }
}

impl Serialize for RankClass {
    fn serialize(&self, w: &mut Writer) {
        let Self { gpu, count } = self;
        gpu.serialize(w);
        count.serialize(w);
    }
}

impl<'de> Deserialize<'de> for RankClass {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(RankClass {
            gpu: GpuSpec::deserialize(r)?,
            count: u32::deserialize(r)?,
        })
    }
}

impl Serialize for HeteroPool {
    fn serialize(&self, w: &mut Writer) {
        let Self { classes } = self;
        classes.serialize(w);
    }
}

impl<'de> Deserialize<'de> for HeteroPool {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(HeteroPool {
            classes: Vec::deserialize(r)?,
        })
    }
}

impl Serialize for PowerModel {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            dollars_per_kwh,
            pue,
        } = self;
        dollars_per_kwh.serialize(w);
        pue.serialize(w);
    }
}

impl<'de> Deserialize<'de> for PowerModel {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(PowerModel {
            dollars_per_kwh: f64::deserialize(r)?,
            pue: f64::deserialize(r)?,
        })
    }
}

impl Serialize for ClusterSpec {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            gpu,
            gpus_per_node,
            num_nodes,
            intra_link,
            inter_link,
            dollars_per_gpu_hour,
            topology,
            hetero,
        } = self;
        gpu.serialize(w);
        gpus_per_node.serialize(w);
        num_nodes.serialize(w);
        intra_link.serialize(w);
        inter_link.serialize(w);
        dollars_per_gpu_hour.serialize(w);
        topology.serialize(w);
        hetero.serialize(w);
    }
}

impl<'de> Deserialize<'de> for ClusterSpec {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        decode_cluster_spec(r, SPEC_TAIL_VERSION)
    }
}

/// Decodes a [`ClusterSpec`] body produced by protocol `version`:
/// versions before [`SPEC_TAIL_VERSION`] never wrote the
/// topology/hetero tail, so both default to `None` (old-client skew).
pub fn decode_cluster_spec(
    r: &mut Reader<'_>,
    version: u16,
) -> Result<ClusterSpec, compact::Error> {
    let gpu = GpuSpec::deserialize(r)?;
    let gpus_per_node = u32::deserialize(r)?;
    let num_nodes = u32::deserialize(r)?;
    let intra_link = LinkSpec::deserialize(r)?;
    let inter_link = LinkSpec::deserialize(r)?;
    let dollars_per_gpu_hour = f64::deserialize(r)?;
    let (topology, hetero) = if version >= SPEC_TAIL_VERSION {
        (Option::deserialize(r)?, Option::deserialize(r)?)
    } else {
        (None, None)
    };
    Ok(ClusterSpec {
        gpu,
        gpus_per_node,
        num_nodes,
        intra_link,
        inter_link,
        dollars_per_gpu_hour,
        topology,
        hetero,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        serde::from_str(&serde::to_string(v)).expect("round trip")
    }

    #[test]
    fn plain_cluster_round_trips() {
        for spec in [
            ClusterSpec::h100(2, 8),
            ClusterSpec::v100(1, 4),
            ClusterSpec::a40(1, 8),
            ClusterSpec::a100(4, 8),
        ] {
            assert_eq!(round_trip(&spec), spec);
        }
    }

    #[test]
    fn imperfect_cluster_round_trips() {
        let spec = ClusterSpec::h100(2, 8)
            .with_default_topology()
            .with_hetero(HeteroPool::new(vec![RankClass {
                gpu: GpuSpec::a100(),
                count: 8,
            }]));
        assert_eq!(round_trip(&spec), spec);
    }

    #[test]
    fn power_model_round_trips() {
        let p = PowerModel::datacenter();
        assert_eq!(round_trip(&p), p);
    }

    #[test]
    fn v3_body_decodes_without_the_tail() {
        // A v3 writer serialized only the six base fields.
        let spec = ClusterSpec::h100(1, 8);
        let mut w = Writer::new();
        spec.gpu.serialize(&mut w);
        spec.gpus_per_node.serialize(&mut w);
        spec.num_nodes.serialize(&mut w);
        spec.intra_link.serialize(&mut w);
        spec.inter_link.serialize(&mut w);
        spec.dollars_per_gpu_hour.serialize(&mut w);
        let body = w.finish();
        let mut r = Reader::new(&body);
        let decoded = decode_cluster_spec(&mut r, 3).expect("v3 decode");
        r.end().expect("no trailing tokens");
        assert_eq!(decoded, spec);
        assert!(decoded.topology.is_none());
        assert!(decoded.hetero.is_none());
    }

    #[test]
    fn unknown_gpu_name_survives() {
        let mut spec = GpuSpec::h100();
        spec.name = "H200";
        // The decoded name is a leaked copy; equality is by value.
        assert_eq!(round_trip(&spec), spec);
    }
}
