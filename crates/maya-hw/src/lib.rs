//! Hardware models for the Maya reproduction.
//!
//! This crate plays the role of the *physical testbed* in the paper's
//! evaluation. It provides:
//!
//! - [`GpuSpec`] / [`ClusterSpec`]: parameterized descriptions of the
//!   V100, H100 and A40 deployments from §7.1 (plus A100 for good
//!   measure), including interconnect characteristics;
//! - [`kernel_model::GroundTruthKernelModel`]: a deterministic roofline
//!   model with tile/wave-quantization efficiency structure and a
//!   hash-seeded microarchitectural perturbation — the "real" runtime of
//!   every kernel;
//! - [`net_model::GroundTruthNetModel`]: topology-aware collective timing
//!   (ring/hierarchical, latency + bandwidth-ramp terms);
//! - [`executor::GroundTruthExecutor`]: an *independent* high-fidelity
//!   replayer of collated job traces that adds effects Maya's simulator
//!   deliberately abstracts away (SM contention between overlapping
//!   compute and communication, NCCL setup costs, non-lockstep collective
//!   completion, host jitter). Its output stands in for "Actual" numbers
//!   in every figure.
//!
//! Because no GPUs exist in this environment, the ground truth here *is*
//! the hardware; the substitution is documented in `DESIGN.md` §2.

pub mod executor;
pub mod kernel_model;
pub mod mfu;
pub mod net_model;
pub mod noise;
pub mod power;
pub mod serdes;
pub mod specs;
pub mod topology;

pub use executor::{ExecError, GroundTruthExecutor, Measurement};
pub use kernel_model::GroundTruthKernelModel;
pub use mfu::{model_flops_per_iteration, ModelFlopsSpec};
pub use net_model::GroundTruthNetModel;
pub use power::PowerModel;
pub use specs::{ClusterSpec, GpuArch, GpuSpec, LinkSpec};
pub use topology::{HeteroPool, NetLink, RankClass, TopologySpec};
