//! GPU, link and cluster specifications.
//!
//! Presets follow the deployments in the paper's §7.1: DGX-H100 (NVLink
//! 4.0 intra-node, 400 Gbps RoCE inter-node), DGX-V100 (cube-mesh NVLink,
//! 100 Gbps InfiniBand) and an 8×A40 node with pairwise NVLink.

use maya_trace::Dtype;

use crate::topology::{HeteroPool, NetLink, TopologySpec};

/// GPU micro-architecture generation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum GpuArch {
    /// NVIDIA Volta (V100).
    Volta,
    /// NVIDIA Ampere (A100/A40).
    Ampere,
    /// NVIDIA Hopper (H100).
    Hopper,
}

impl GpuArch {
    /// Stable id used to key perturbation hashes.
    pub const fn id(self) -> u64 {
        match self {
            GpuArch::Volta => 1,
            GpuArch::Ampere => 2,
            GpuArch::Hopper => 3,
        }
    }
}

/// Static description of one accelerator.
///
/// Equality and hashing compare the IEEE-754 bit patterns of the float
/// fields (specs are configuration constants, never NaN), so the type
/// can key registries — e.g. `maya-serve` multiplexes one prediction
/// engine per distinct emulation spec.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct GpuSpec {
    /// Marketing name ("H100").
    pub name: &'static str,
    /// Architecture generation.
    pub arch: GpuArch,
    /// Peak FP32 (CUDA-core) throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak tensor-core throughput (fp16/bf16) in TFLOP/s.
    pub tensor_tflops: f64,
    /// Device memory capacity in GiB.
    pub mem_gib: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Host-device PCIe (or C2C) bandwidth in GB/s.
    pub pcie_bw_gbps: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Minimum wall time of any kernel in microseconds (launch/drain floor).
    pub kernel_floor_us: f64,
    /// Whether bf16 is supported (Volta: no — the paper skips Calculon and
    /// AMPeD on Volta for exactly this reason).
    pub supports_bf16: bool,
}

impl GpuSpec {
    /// Peak throughput in FLOP/s for a given operand dtype.
    pub fn peak_flops(&self, dtype: Dtype) -> f64 {
        if dtype.uses_tensor_cores() {
            self.tensor_tflops * 1e12
        } else {
            self.fp32_tflops * 1e12
        }
    }

    /// Memory capacity in bytes.
    pub fn mem_bytes(&self) -> u64 {
        (self.mem_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// The V100 used in the paper's DGX-V100 cluster.
    ///
    /// Memory capacity follows the paper's stated "40GB HBM".
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100",
            arch: GpuArch::Volta,
            fp32_tflops: 15.7,
            tensor_tflops: 125.0,
            mem_gib: 40.0,
            mem_bw_gbps: 900.0,
            pcie_bw_gbps: 14.0,
            sm_count: 80,
            kernel_floor_us: 3.2,
            supports_bf16: false,
        }
    }

    /// The H100 SXM used in the paper's DGX-H100 cluster.
    pub fn h100() -> Self {
        GpuSpec {
            name: "H100",
            arch: GpuArch::Hopper,
            fp32_tflops: 66.9,
            tensor_tflops: 989.0,
            mem_gib: 80.0,
            mem_bw_gbps: 3350.0,
            pcie_bw_gbps: 55.0,
            sm_count: 132,
            kernel_floor_us: 2.2,
            supports_bf16: true,
        }
    }

    /// The A40 node used in the ResNet152 experiment (Figure 10).
    pub fn a40() -> Self {
        GpuSpec {
            name: "A40",
            arch: GpuArch::Ampere,
            fp32_tflops: 37.4,
            tensor_tflops: 149.7,
            mem_gib: 48.0,
            mem_bw_gbps: 696.0,
            pcie_bw_gbps: 24.0,
            sm_count: 84,
            kernel_floor_us: 2.8,
            supports_bf16: true,
        }
    }

    /// A100 SXM 80GB (not in the paper's testbed; provided for users).
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100",
            arch: GpuArch::Ampere,
            fp32_tflops: 19.5,
            tensor_tflops: 312.0,
            mem_gib: 80.0,
            mem_bw_gbps: 2039.0,
            pcie_bw_gbps: 24.0,
            sm_count: 108,
            kernel_floor_us: 2.5,
            supports_bf16: true,
        }
    }
}

/// A point-to-point or shared interconnect link.
///
/// Equality and hashing compare float bit patterns (see [`GpuSpec`]).
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct LinkSpec {
    /// Sustained bandwidth per GPU in GB/s.
    pub bw_gbps: f64,
    /// Per-hop latency in microseconds.
    pub latency_us: f64,
    /// Message size (bytes) at which half the peak bandwidth is reached;
    /// models the small-message ramp of NCCL collectives.
    pub half_ramp_bytes: f64,
}

impl LinkSpec {
    /// Effective bandwidth (bytes/s) for a message of `bytes`.
    pub fn effective_bw(&self, bytes: f64) -> f64 {
        let peak = self.bw_gbps * 1e9;
        let ramp = bytes / (bytes + self.half_ramp_bytes);
        (peak * ramp).max(1.0)
    }
}

/// A full training cluster: GPUs in equal-size nodes, homogeneous by
/// default with opt-in imperfections.
///
/// Equality and hashing compare float bit patterns (see [`GpuSpec`]),
/// making the type usable as a registry key.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ClusterSpec {
    /// Per-GPU description (the *base* GPU when [`Self::hetero`] is set).
    pub gpu: GpuSpec,
    /// GPUs per host node.
    pub gpus_per_node: u32,
    /// Number of host nodes.
    pub num_nodes: u32,
    /// Intra-node link (NVLink).
    pub intra_link: LinkSpec,
    /// Inter-node link (InfiniBand / RoCE), per GPU.
    pub inter_link: LinkSpec,
    /// Hourly price of one GPU in dollars (used for cost objectives;
    /// roughly Azure's on-demand pricing per the paper's cost framing).
    pub dollars_per_gpu_hour: f64,
    /// Opt-in shared-bandwidth link topology: when set, concurrent
    /// collectives compete for link capacity under max-min fairness
    /// (the `maya-net` flow model). `None` keeps the contention-free
    /// per-collective bandwidth model, byte for byte.
    pub topology: Option<TopologySpec>,
    /// Opt-in heterogeneous rank pool: mixed GPU generations with
    /// per-rank kernel scaling. `None` means every rank is `gpu`.
    pub hetero: Option<HeteroPool>,
}

impl ClusterSpec {
    /// Total GPU count.
    pub fn num_gpus(&self) -> u32 {
        self.gpus_per_node * self.num_nodes
    }

    /// Node index hosting a global rank.
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.gpus_per_node
    }

    /// Whether all of `ranks` live on one node.
    pub fn single_node(&self, ranks: &[u32]) -> bool {
        match ranks.first() {
            None => true,
            Some(&r0) => {
                let n = self.node_of(r0);
                ranks.iter().all(|&r| self.node_of(r) == n)
            }
        }
    }

    /// The GPU a global rank runs on: its heterogeneous class when a
    /// pool covers it, the base [`Self::gpu`] otherwise.
    pub fn gpu_at(&self, rank: u32) -> &GpuSpec {
        self.hetero
            .as_ref()
            .and_then(|h| h.gpu_of(rank))
            .unwrap_or(&self.gpu)
    }

    /// Kernel-duration multiplier for a rank relative to the base GPU
    /// (1.0 when homogeneous — the default path never scales).
    pub fn kernel_scale(&self, rank: u32) -> f64 {
        match &self.hetero {
            Some(h) => h.kernel_scale(&self.gpu, rank),
            None => 1.0,
        }
    }

    /// Opt into the shared-bandwidth flow model with an explicit
    /// per-link topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Opt into the flow model with a topology derived from the
    /// cluster's own link specs: every node gets an intra-node fabric
    /// link at `intra_link` bandwidth and an uplink at `inter_link`
    /// bandwidth (see [`TopologySpec`] for the layout).
    pub fn with_default_topology(self) -> Self {
        let topology = self.default_topology();
        self.with_topology(topology)
    }

    /// The symmetric topology [`Self::with_default_topology`] installs.
    pub fn default_topology(&self) -> TopologySpec {
        TopologySpec::symmetric(
            self.num_nodes,
            NetLink {
                bw_gbps: self.intra_link.bw_gbps,
                latency_us: self.intra_link.latency_us,
            },
            NetLink {
                bw_gbps: self.inter_link.bw_gbps,
                latency_us: self.inter_link.latency_us,
            },
        )
    }

    /// Opt into a heterogeneous rank pool (mixed GPU generations).
    pub fn with_hetero(mut self, hetero: HeteroPool) -> Self {
        self.hetero = Some(hetero);
        self
    }

    /// DGX-V100 cluster (NVLink cube-mesh, 100 Gbps InfiniBand).
    pub fn v100(num_nodes: u32, gpus_per_node: u32) -> Self {
        ClusterSpec {
            gpu: GpuSpec::v100(),
            gpus_per_node,
            num_nodes,
            intra_link: LinkSpec {
                bw_gbps: 130.0,
                latency_us: 2.2,
                half_ramp_bytes: 4.0e6,
            },
            inter_link: LinkSpec {
                bw_gbps: 12.5,
                latency_us: 5.0,
                half_ramp_bytes: 3.2e7,
            },
            dollars_per_gpu_hour: 3.06,
            topology: None,
            hetero: None,
        }
    }

    /// DGX-H100 cluster (NVLink 4.0, 400 Gbps RoCE per GPU pair).
    pub fn h100(num_nodes: u32, gpus_per_node: u32) -> Self {
        ClusterSpec {
            gpu: GpuSpec::h100(),
            gpus_per_node,
            num_nodes,
            intra_link: LinkSpec {
                bw_gbps: 450.0,
                latency_us: 1.6,
                half_ramp_bytes: 8.0e6,
            },
            inter_link: LinkSpec {
                bw_gbps: 50.0,
                latency_us: 3.5,
                half_ramp_bytes: 6.4e7,
            },
            dollars_per_gpu_hour: 12.29,
            topology: None,
            hetero: None,
        }
    }

    /// Single 8×A40 node with pairwise NVLink (heterogeneous links: paired
    /// GPUs enjoy NVLink bandwidth, others fall back to PCIe).
    pub fn a40(num_nodes: u32, gpus_per_node: u32) -> Self {
        ClusterSpec {
            gpu: GpuSpec::a40(),
            gpus_per_node,
            num_nodes,
            intra_link: LinkSpec {
                bw_gbps: 56.0,
                latency_us: 2.4,
                half_ramp_bytes: 4.0e6,
            },
            inter_link: LinkSpec {
                bw_gbps: 12.5,
                latency_us: 5.0,
                half_ramp_bytes: 3.2e7,
            },
            dollars_per_gpu_hour: 1.28,
            topology: None,
            hetero: None,
        }
    }

    /// A100 cluster preset.
    pub fn a100(num_nodes: u32, gpus_per_node: u32) -> Self {
        ClusterSpec {
            gpu: GpuSpec::a100(),
            gpus_per_node,
            num_nodes,
            intra_link: LinkSpec {
                bw_gbps: 300.0,
                latency_us: 1.8,
                half_ramp_bytes: 6.0e6,
            },
            inter_link: LinkSpec {
                bw_gbps: 25.0,
                latency_us: 4.0,
                half_ramp_bytes: 4.8e7,
            },
            dollars_per_gpu_hour: 4.10,
            topology: None,
            hetero: None,
        }
    }
}

// Manual PartialEq/Eq/Hash over canonical bit-pattern keys: the spec
// structs carry f64 fields, which cannot derive Eq/Hash, yet the types
// must key hash maps (engine registries). Specs are built from literal
// constants — NaN never appears — so bit equality is the right notion
// (and is reflexive, keeping the Eq contract honest even for NaN).
// Each key() exhaustively destructures `Self` so adding a field is a
// compile error here, not a silently incomplete registry key.

impl GpuSpec {
    fn key(&self) -> (&'static str, u64, [u64; 5], u32, u64, bool) {
        let Self {
            name,
            arch,
            fp32_tflops,
            tensor_tflops,
            mem_gib,
            mem_bw_gbps,
            pcie_bw_gbps,
            sm_count,
            kernel_floor_us,
            supports_bf16,
        } = self;
        (
            name,
            arch.id(),
            [
                fp32_tflops.to_bits(),
                tensor_tflops.to_bits(),
                mem_gib.to_bits(),
                mem_bw_gbps.to_bits(),
                pcie_bw_gbps.to_bits(),
            ],
            *sm_count,
            kernel_floor_us.to_bits(),
            *supports_bf16,
        )
    }
}

impl PartialEq for GpuSpec {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for GpuSpec {}

impl std::hash::Hash for GpuSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl LinkSpec {
    fn key(&self) -> [u64; 3] {
        let Self {
            bw_gbps,
            latency_us,
            half_ramp_bytes,
        } = self;
        [
            bw_gbps.to_bits(),
            latency_us.to_bits(),
            half_ramp_bytes.to_bits(),
        ]
    }
}

impl PartialEq for LinkSpec {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for LinkSpec {}

impl std::hash::Hash for LinkSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl ClusterSpec {
    #[allow(clippy::type_complexity)]
    fn key(
        &self,
    ) -> (
        GpuSpec,
        u32,
        u32,
        LinkSpec,
        LinkSpec,
        u64,
        &Option<TopologySpec>,
        &Option<HeteroPool>,
    ) {
        let Self {
            gpu,
            gpus_per_node,
            num_nodes,
            intra_link,
            inter_link,
            dollars_per_gpu_hour,
            topology,
            hetero,
        } = self;
        (
            *gpu,
            *gpus_per_node,
            *num_nodes,
            *intra_link,
            *inter_link,
            dollars_per_gpu_hour.to_bits(),
            topology,
            hetero,
        )
    }
}

impl PartialEq for ClusterSpec {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for ClusterSpec {}

impl std::hash::Hash for ClusterSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_by_dtype() {
        let h = GpuSpec::h100();
        assert!((h.peak_flops(Dtype::Bf16) / 989.0e12 - 1.0).abs() < 1e-12);
        assert!((h.peak_flops(Dtype::Fp32) / 66.9e12 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mem_capacity() {
        assert_eq!(GpuSpec::h100().mem_bytes(), 80 * 1024 * 1024 * 1024);
    }

    #[test]
    fn node_mapping() {
        let c = ClusterSpec::h100(4, 8);
        assert_eq!(c.num_gpus(), 32);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(7), 0);
        assert_eq!(c.node_of(8), 1);
        assert!(c.single_node(&[0, 3, 7]));
        assert!(!c.single_node(&[0, 8]));
        assert!(c.single_node(&[]));
    }

    #[test]
    fn link_bandwidth_ramp() {
        let l = LinkSpec {
            bw_gbps: 100.0,
            latency_us: 2.0,
            half_ramp_bytes: 1e6,
        };
        let small = l.effective_bw(1e3);
        let large = l.effective_bw(1e9);
        assert!(small < large);
        assert!(large <= 100.0e9);
        assert!((l.effective_bw(1e6) / 1e9 - 50.0).abs() < 0.1);
    }

    #[test]
    fn volta_lacks_bf16() {
        assert!(!GpuSpec::v100().supports_bf16);
        assert!(GpuSpec::h100().supports_bf16);
    }

    #[test]
    fn cluster_specs_key_hash_maps() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        assert!(set.insert(ClusterSpec::h100(1, 8)));
        assert!(
            !set.insert(ClusterSpec::h100(1, 8)),
            "equal spec re-inserted"
        );
        assert!(
            set.insert(ClusterSpec::h100(2, 8)),
            "shape is part of the key"
        );
        assert!(set.insert(ClusterSpec::a40(1, 8)), "gpu is part of the key");
        let mut tweaked = ClusterSpec::h100(1, 8);
        tweaked.inter_link.bw_gbps += 1.0;
        assert!(set.insert(tweaked), "link params are part of the key");
        assert!(
            set.insert(ClusterSpec::h100(1, 8).with_default_topology()),
            "topology is part of the key"
        );
        assert!(
            set.insert(ClusterSpec::h100(1, 8).with_hetero(HeteroPool::new(vec![
                crate::topology::RankClass {
                    gpu: GpuSpec::a100(),
                    count: 4,
                }
            ]))),
            "hetero pool is part of the key"
        );
    }

    #[test]
    fn gpu_at_follows_the_hetero_pool() {
        let c = ClusterSpec::h100(1, 4).with_hetero(HeteroPool::new(vec![
            crate::topology::RankClass {
                gpu: GpuSpec::v100(),
                count: 2,
            },
        ]));
        assert_eq!(c.gpu_at(0).name, "V100");
        assert_eq!(c.gpu_at(2).name, "H100", "uncovered ranks use the base GPU");
        assert!(c.kernel_scale(1) > 1.0);
        assert!((c.kernel_scale(3) - 1.0).abs() < 1e-12);
        assert!((ClusterSpec::h100(1, 4).kernel_scale(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_topology_mirrors_link_specs() {
        let c = ClusterSpec::h100(2, 8);
        let t = c.default_topology();
        assert_eq!(t.num_nodes(), 2);
        assert!((t.links[0].bw_gbps - c.intra_link.bw_gbps).abs() < 1e-12);
        assert!((t.links[1].bw_gbps - c.inter_link.bw_gbps).abs() < 1e-12);
    }
}
