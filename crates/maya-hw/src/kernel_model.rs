//! Ground-truth kernel runtime model.
//!
//! A roofline (compute vs. memory bound) core with multiplicative
//! efficiency structure that a smooth analytical model would miss:
//! tensor-core tile quantization, SM wave quantization, small-problem
//! launch ramps, and a deterministic per-shape microarchitectural
//! perturbation. Random-forest estimators trained on profiled samples of
//! this model exhibit realistic single-digit MAPE on heavy-hitter kernels
//! and larger relative errors on tiny kernels — matching the error
//! structure of the paper's Tables 7-9.

use maya_trace::{Dtype, KernelKind, SimTime};

use crate::noise::{centered_factor, Key};
use crate::specs::GpuSpec;

/// Deterministic "real hardware" timing for compute kernels and memcpys.
#[derive(Clone, Copy, Debug)]
pub struct GroundTruthKernelModel {
    /// Seed for the microarchitectural perturbation texture.
    pub seed: u64,
    /// Amplitude of the per-shape perturbation (fraction of runtime).
    pub texture_amplitude: f64,
}

impl Default for GroundTruthKernelModel {
    fn default() -> Self {
        GroundTruthKernelModel {
            seed: 0x4D41_5941,
            texture_amplitude: 0.055,
        }
    }
}

impl GroundTruthKernelModel {
    /// Builds a model with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        GroundTruthKernelModel {
            seed,
            ..Default::default()
        }
    }

    /// True runtime of `kernel` on `gpu`.
    pub fn kernel_time(&self, kernel: &KernelKind, gpu: &GpuSpec) -> SimTime {
        let flops = kernel.flops();
        let bytes = kernel.bytes_accessed();
        let dtype = kernel.dtype().unwrap_or(Dtype::Fp32);

        let compute_eff = self.compute_efficiency(kernel, gpu);
        let mem_eff = self.memory_efficiency(bytes, gpu);

        let t_compute = flops / (gpu.peak_flops(dtype) * compute_eff);
        let t_mem = bytes / (gpu.mem_bw_gbps * 1e9 * mem_eff);
        let floor = gpu.kernel_floor_us * 1e-6;
        let base = t_compute.max(t_mem).max(floor);

        let tex = centered_factor(self.texture_key(kernel, gpu), self.texture_amplitude);
        SimTime::from_secs(base * tex)
    }

    /// True duration of a host-device / device-device copy.
    pub fn memcpy_time(&self, bytes: u64, kind: maya_trace::MemcpyKind, gpu: &GpuSpec) -> SimTime {
        let b = bytes as f64;
        let (bw, base_lat_us) = match kind {
            maya_trace::MemcpyKind::HostToDevice | maya_trace::MemcpyKind::DeviceToHost => {
                (gpu.pcie_bw_gbps * 1e9, 8.0)
            }
            maya_trace::MemcpyKind::DeviceToDevice => (gpu.mem_bw_gbps * 1e9 / 2.0, 3.0),
            maya_trace::MemcpyKind::HostToHost => (20.0e9, 1.0),
        };
        // Small transfers are latency-bound.
        let ramp = b / (b + 256.0 * 1024.0);
        let t = base_lat_us * 1e-6 + b / (bw * ramp.max(0.05));
        let tex = centered_factor(
            Key::new(self.seed)
                .with(0xC0FFEE)
                .with(bytes)
                .with(kind as u64)
                .finish(),
            0.04,
        );
        SimTime::from_secs(t * tex)
    }

    /// Compute-side efficiency in `(0, 1]`.
    fn compute_efficiency(&self, kernel: &KernelKind, gpu: &GpuSpec) -> f64 {
        match *kernel {
            KernelKind::Gemm { m, n, k, dtype } | KernelKind::LtMatmul { m, n, k, dtype } => {
                self.gemm_efficiency(m, n, k, 1, dtype, gpu)
            }
            KernelKind::GemmStridedBatched {
                m,
                n,
                k,
                batch,
                dtype,
            } => self.gemm_efficiency(m, n, k, batch, dtype, gpu),
            KernelKind::ConvForward {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                dtype,
            }
            | KernelKind::ConvBackwardData {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                dtype,
            }
            | KernelKind::ConvBackwardFilter {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                dtype,
            } => {
                // Implicit-GEMM mapping of the convolution.
                let oh = (h / stride.max(1)).max(1);
                let ow = (w / stride.max(1)).max(1);
                let gm = n * oh * ow;
                let gk = c * r * r;
                self.gemm_efficiency(gm, k, gk, 1, dtype, gpu) * 0.92
            }
            // Non-GEMM kernels are memory bound; their compute efficiency
            // only matters for pathological shapes. Use a moderate value.
            _ => 0.5,
        }
    }

    /// GEMM tensor-core efficiency with tile & wave quantization.
    fn gemm_efficiency(
        &self,
        m: u64,
        n: u64,
        k: u64,
        batch: u64,
        dtype: Dtype,
        gpu: &GpuSpec,
    ) -> f64 {
        let (tile_m, tile_n) = (128u64, 128u64);
        let tiles_m = m.div_ceil(tile_m);
        let tiles_n = n.div_ceil(tile_n);
        // Tile quantization: partially-filled edge tiles waste math.
        let fill_m = m as f64 / (tiles_m * tile_m) as f64;
        let fill_n = n as f64 / (tiles_n * tile_n) as f64;
        let tile_eff = fill_m * fill_n;
        // Wave quantization: the tail wave underutilizes SMs.
        let ctas = (tiles_m * tiles_n * batch).max(1);
        let waves = ctas as f64 / gpu.sm_count as f64;
        let wave_eff = if waves <= 1.0 {
            waves
        } else {
            waves / waves.ceil()
        };
        // Reduction-depth ramp: short-k GEMMs cannot hide latency.
        let k_ramp = (k as f64 / (k as f64 + 192.0)).max(0.05);
        let base = if dtype.uses_tensor_cores() {
            match gpu.arch {
                crate::specs::GpuArch::Hopper => 0.72,
                crate::specs::GpuArch::Ampere => 0.68,
                crate::specs::GpuArch::Volta => 0.62,
            }
        } else {
            0.82
        };
        (base * tile_eff.max(0.05) * (0.35 + 0.65 * wave_eff.min(1.0)) * k_ramp).clamp(0.01, 0.95)
    }

    /// Memory-side efficiency with a small-size ramp.
    fn memory_efficiency(&self, bytes: f64, _gpu: &GpuSpec) -> f64 {
        let ramp = bytes / (bytes + 2.0e6);
        (0.85 * (0.25 + 0.75 * ramp)).clamp(0.05, 0.9)
    }

    /// Perturbation key: depends on kernel family, quantized shape, dtype
    /// and architecture — *not* on the instance, so repeated launches of
    /// the same kernel take identical time (stationary hardware).
    fn texture_key(&self, kernel: &KernelKind, gpu: &GpuSpec) -> u64 {
        let mut k = Key::new(self.seed)
            .with(gpu.arch.id())
            .with(kernel.family_id() as u64);
        k = k.with(kernel.dtype().map(|d| d.id() as u64).unwrap_or(99));
        // Quantize sizes logarithmically so that near-identical shapes get
        // correlated (but not identical) perturbations.
        let f = kernel.flops().max(1.0).log2();
        let b = kernel.bytes_accessed().max(1.0).log2();
        k = k.with((f * 8.0) as u64).with((b * 8.0) as u64);
        // Fold in the exact dims for GEMMs — tensor-core kernels really are
        // shape-sensitive.
        if let KernelKind::Gemm { m, n, k: kk, .. }
        | KernelKind::GemmStridedBatched { m, n, k: kk, .. }
        | KernelKind::LtMatmul { m, n, k: kk, .. } = *kernel
        {
            k = k.with(m).with(n).with(kk);
        }
        k.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm(m: u64, n: u64, k: u64, dtype: Dtype) -> KernelKind {
        KernelKind::Gemm { m, n, k, dtype }
    }

    #[test]
    fn deterministic_and_stationary() {
        let model = GroundTruthKernelModel::default();
        let g = GpuSpec::h100();
        let k = gemm(4096, 4096, 4096, Dtype::Bf16);
        assert_eq!(model.kernel_time(&k, &g), model.kernel_time(&k, &g));
    }

    #[test]
    fn big_gemm_near_peak() {
        let model = GroundTruthKernelModel::default();
        let g = GpuSpec::h100();
        let k = gemm(8192, 8192, 8192, Dtype::Bf16);
        let t = model.kernel_time(&k, &g).as_secs_f64();
        let ideal = k.flops() / g.peak_flops(Dtype::Bf16);
        let eff = ideal / t;
        assert!(eff > 0.5 && eff < 0.95, "efficiency {eff}");
    }

    #[test]
    fn small_kernel_hits_floor() {
        let model = GroundTruthKernelModel::default();
        let g = GpuSpec::h100();
        let k = KernelKind::Elementwise {
            numel: 16,
            arity: 1,
            dtype: Dtype::Fp32,
        };
        let t = model.kernel_time(&k, &g);
        assert!(t.as_us() >= g.kernel_floor_us * 0.9, "{t}");
    }

    #[test]
    fn h100_faster_than_v100() {
        let model = GroundTruthKernelModel::default();
        let k = gemm(4096, 4096, 4096, Dtype::Fp16);
        let th = model.kernel_time(&k, &GpuSpec::h100());
        let tv = model.kernel_time(&k, &GpuSpec::v100());
        assert!(th < tv, "h100 {th} v100 {tv}");
    }

    #[test]
    fn ragged_gemm_less_efficient() {
        let model = GroundTruthKernelModel::default();
        let g = GpuSpec::h100();
        // A barely-over-tile shape wastes a third of its tile fill; the
        // penalty (~33%) dominates the ±5.5% perturbation texture.
        let aligned = gemm(256, 4096, 4096, Dtype::Bf16);
        let ragged = gemm(257, 4096, 4096, Dtype::Bf16);
        let ta = model.kernel_time(&aligned, &g).as_secs_f64() / aligned.flops();
        let tr = model.kernel_time(&ragged, &g).as_secs_f64() / ragged.flops();
        assert!(tr > ta, "time-per-flop ragged {tr} aligned {ta}");
    }

    #[test]
    fn memcpy_scales_with_size() {
        let model = GroundTruthKernelModel::default();
        let g = GpuSpec::h100();
        let small = model.memcpy_time(4 * 1024, maya_trace::MemcpyKind::HostToDevice, &g);
        let big = model.memcpy_time(1 << 30, maya_trace::MemcpyKind::HostToDevice, &g);
        assert!(big > small * 100);
        // 1 GiB over ~55 GB/s should take tens of milliseconds.
        assert!(big.as_ms() > 10.0 && big.as_ms() < 60.0, "{big}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = GroundTruthKernelModel::with_seed(1);
        let b = GroundTruthKernelModel::with_seed(2);
        let g = GpuSpec::h100();
        let k = gemm(1000, 1000, 1000, Dtype::Bf16);
        assert_ne!(a.kernel_time(&k, &g), b.kernel_time(&k, &g));
    }
}
