//! Model-FLOPs accounting and MFU computation.
//!
//! Uses the standard Megatron-style accounting for transformer training
//! FLOPs (the same expression Calculon and the paper's MFU figures rely
//! on): `72 * B * s * l * h^2 * (1 + s/(6h) + V/(12 l h))`, with an extra
//! forward pass when full activation recomputation is enabled.

use crate::specs::ClusterSpec;
use maya_trace::Dtype;

/// Inputs for the transformer training-FLOPs formula.
#[derive(Clone, Copy, Debug)]
pub struct ModelFlopsSpec {
    /// Number of transformer layers.
    pub layers: u64,
    /// Hidden size.
    pub hidden: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Sequence length.
    pub seq_len: u64,
    /// Global batch size (sequences per iteration).
    pub global_batch: u64,
    /// Whether full activation recomputation re-runs the forward pass.
    pub activation_recompute: bool,
}

/// Total model FLOPs for one training iteration.
pub fn model_flops_per_iteration(spec: &ModelFlopsSpec) -> f64 {
    let b = spec.global_batch as f64;
    let s = spec.seq_len as f64;
    let l = spec.layers as f64;
    let h = spec.hidden as f64;
    let v = spec.vocab as f64;
    // Forward+backward = 3 * forward; recompute adds one more forward.
    let passes = if spec.activation_recompute { 4.0 } else { 3.0 };
    let per_fwd = 24.0 * b * s * l * h * h * (1.0 + s / (6.0 * h) + v / (12.0 * l * h));
    passes * per_fwd
}

/// Model FLOPs Utilization given an iteration time.
///
/// MFU conventionally excludes the recompute pass (useful FLOPs only),
/// so callers should pass `activation_recompute: false` in `spec` when
/// computing MFU even if the run recomputes.
pub fn mfu(spec: &ModelFlopsSpec, iter_time_s: f64, cluster: &ClusterSpec) -> f64 {
    let useful = model_flops_per_iteration(&ModelFlopsSpec {
        activation_recompute: false,
        ..*spec
    });
    let peak = cluster.gpu.peak_flops(Dtype::Bf16) * cluster.num_gpus() as f64;
    useful / (iter_time_s * peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3_18b() -> ModelFlopsSpec {
        ModelFlopsSpec {
            layers: 40,
            hidden: 6144,
            vocab: 51200,
            seq_len: 2048,
            global_batch: 512,
            activation_recompute: false,
        }
    }

    #[test]
    fn flops_scale_with_batch() {
        let a = model_flops_per_iteration(&gpt3_18b());
        let b = model_flops_per_iteration(&ModelFlopsSpec {
            global_batch: 1024,
            ..gpt3_18b()
        });
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recompute_adds_a_pass() {
        let base = model_flops_per_iteration(&gpt3_18b());
        let rc = model_flops_per_iteration(&ModelFlopsSpec {
            activation_recompute: true,
            ..gpt3_18b()
        });
        assert!((rc / base - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mfu_band_is_plausible() {
        // 512-sequence batch of GPT-3 18.4B on 64 H100s at 60% MFU should
        // take on the order of a second per iteration; invert to check.
        let cluster = ClusterSpec::h100(8, 8);
        let spec = gpt3_18b();
        let flops = model_flops_per_iteration(&spec);
        let t_at_60 = flops / (0.60 * cluster.gpu.peak_flops(Dtype::Bf16) * 64.0);
        let m = mfu(&spec, t_at_60, &cluster);
        assert!((m - 0.60).abs() < 1e-6, "{m}");
        assert!(t_at_60 > 0.3 && t_at_60 < 5.0, "iteration {t_at_60}s");
    }
}
