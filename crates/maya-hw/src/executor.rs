//! Ground-truth cluster executor — the "real hardware" stand-in.
//!
//! Replays a collated [`JobTrace`] with full fidelity, *including* the
//! effects Maya's discrete-event simulator deliberately abstracts away
//! (§8 "SM Contention", Appendix A's lockstep-collective simplification):
//!
//! - per-instance kernel jitter and host-delay jitter;
//! - SM contention: compute kernels that overlap in-flight collectives on
//!   the same device run slower, and vice versa (modeled with a two-pass
//!   schedule: pass 1 discovers overlap intervals, pass 2 inflates);
//! - NCCL setup/teardown overhead per collective and non-lockstep,
//!   per-rank-skewed collective completion.
//!
//! This executor is an independent implementation from `maya-sim`; the
//! difference between its measurements and Maya's predictions is exactly
//! the "loss of detail in the emulation and simulation phases" that the
//! paper's Table 3 quantifies.
//!
//! Sparse (worker-deduplicated) jobs are supported: collective rendezvous
//! waits only for *present* participants, while wire times still reflect
//! the full communicator.

use std::collections::{HashMap, VecDeque};

use maya_trace::{
    CollectiveDesc, CollectiveKind, DeviceOp, JobTrace, KernelKind, SimTime, StreamId,
};

use crate::kernel_model::GroundTruthKernelModel;
use crate::net_model::GroundTruthNetModel;
use crate::noise::{gaussian_factor, Key};
use crate::specs::ClusterSpec;

/// Errors surfaced by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The job deadlocked: some ranks are parked on collectives that can
    /// never complete (e.g. mismatched send/recv ordering).
    Deadlock {
        /// Ranks that were still blocked when progress stopped.
        parked_ranks: Vec<u32>,
    },
    /// The trace was internally inconsistent.
    InvalidTrace(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Deadlock { parked_ranks } => {
                write!(f, "execution deadlocked; parked ranks: {parked_ranks:?}")
            }
            ExecError::InvalidTrace(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// What the "testbed" reports after running a job.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Wall time of the traced region (max over ranks).
    pub iteration_time: SimTime,
    /// Per-present-worker completion times.
    pub rank_end_times: Vec<SimTime>,
    /// Communication-busy wall time on the busiest rank.
    pub comm_time: SimTime,
    /// Compute-busy wall time on the busiest rank.
    pub compute_time: SimTime,
    /// Peak device memory across ranks (from emulation summaries).
    pub peak_mem_bytes: u64,
    /// Observed per-kernel durations (profiling mode's training data).
    pub kernel_samples: Vec<(KernelKind, SimTime)>,
}

impl serde::Serialize for Measurement {
    fn serialize(&self, w: &mut serde::Writer) {
        self.iteration_time.serialize(w);
        self.rank_end_times.serialize(w);
        self.comm_time.serialize(w);
        self.compute_time.serialize(w);
        self.peak_mem_bytes.serialize(w);
        self.kernel_samples.serialize(w);
    }
}

impl<'de> serde::Deserialize<'de> for Measurement {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::Error> {
        use serde::Deserialize;
        Ok(Measurement {
            iteration_time: Deserialize::deserialize(r)?,
            rank_end_times: Deserialize::deserialize(r)?,
            comm_time: Deserialize::deserialize(r)?,
            compute_time: Deserialize::deserialize(r)?,
            peak_mem_bytes: Deserialize::deserialize(r)?,
            kernel_samples: Deserialize::deserialize(r)?,
        })
    }
}

/// High-fidelity replayer configuration.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruthExecutor {
    /// Kernel timing model.
    pub kernel_model: GroundTruthKernelModel,
    /// Collective timing model.
    pub net_model: GroundTruthNetModel,
    /// Std-dev of per-call host-delay jitter (fraction).
    pub host_jitter: f64,
    /// Std-dev of per-instance kernel jitter (fraction).
    pub kernel_jitter: f64,
    /// NCCL collective setup overhead in microseconds.
    pub nccl_setup_us: f64,
    /// Fractional slowdown of compute fully overlapped with comm.
    pub contention_compute: f64,
    /// Fractional slowdown of comm fully overlapped with compute.
    pub contention_comm: f64,
    /// Std-dev of per-rank collective completion skew (fraction).
    pub collective_skew: f64,
    /// Seed for all jitter.
    pub seed: u64,
    /// Whether to collect per-kernel duration samples.
    pub collect_samples: bool,
}

impl Default for GroundTruthExecutor {
    fn default() -> Self {
        GroundTruthExecutor {
            kernel_model: GroundTruthKernelModel::default(),
            net_model: GroundTruthNetModel::default(),
            host_jitter: 0.015,
            kernel_jitter: 0.008,
            nccl_setup_us: 7.5,
            contention_compute: 0.07,
            contention_comm: 0.045,
            collective_skew: 0.006,
            seed: 0x7E57_BED5,
            collect_samples: false,
        }
    }
}

/// Key identifying one logical collective rendezvous.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct CollKey {
    comm: u64,
    seq: u32,
    /// For point-to-point ops: the (min, max) comm-rank pair; otherwise
    /// `(u32::MAX, u32::MAX)`.
    pair: (u32, u32),
}

impl CollKey {
    fn from_desc(desc: &CollectiveDesc) -> Self {
        let pair = match desc.kind {
            CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
                (desc.rank_in_comm.min(peer), desc.rank_in_comm.max(peer))
            }
            _ => (u32::MAX, u32::MAX),
        };
        CollKey {
            comm: desc.comm_id,
            seq: desc.seq,
            pair,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StreamState {
    ready: SimTime,
    pending: Option<CollKey>,
}

struct RankState {
    pc: usize,
    host: SimTime,
    streams: HashMap<StreamId, StreamState>,
    parked_on: Option<CollKey>,
    done: bool,
}

/// Per-rank busy windows (start, end) used for contention lookups.
type BusyIntervals = [Vec<(SimTime, SimTime)>];

struct Arrival {
    /// Worker index within the (possibly sparse) job.
    widx: usize,
    /// Global rank.
    rank: u32,
    stream: StreamId,
    time: SimTime,
    desc: CollectiveDesc,
}

/// Per-rank busy-interval log from one scheduling pass.
#[derive(Default, Clone)]
struct IntervalLog {
    compute: Vec<(SimTime, SimTime)>,
    comm: Vec<(SimTime, SimTime)>,
}

/// Merges intervals into a disjoint sorted union.
fn union(mut v: Vec<(SimTime, SimTime)>) -> Vec<(SimTime, SimTime)> {
    v.sort_unstable();
    let mut out: Vec<(SimTime, SimTime)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Length of the overlap between `[s, e)` and a disjoint sorted union.
fn overlap(s: SimTime, e: SimTime, u: &[(SimTime, SimTime)]) -> SimTime {
    if e <= s || u.is_empty() {
        return SimTime::ZERO;
    }
    let idx = u.partition_point(|&(_, ie)| ie <= s);
    let mut acc = SimTime::ZERO;
    for &(is, ie) in &u[idx..] {
        if is >= e {
            break;
        }
        acc += ie.min(e).saturating_sub(is.max(s));
    }
    acc
}

/// Total length of a disjoint union.
fn total_len(u: &[(SimTime, SimTime)]) -> SimTime {
    u.iter().map(|&(s, e)| e.saturating_sub(s)).sum()
}

struct PassResult {
    rank_end: Vec<SimTime>,
    logs: Vec<IntervalLog>,
    samples: Vec<(KernelKind, SimTime)>,
}

impl GroundTruthExecutor {
    /// Runs a collated job and reports what the hardware would measure.
    pub fn run(&self, job: &JobTrace, cluster: &ClusterSpec) -> Result<Measurement, ExecError> {
        job.validate().map_err(ExecError::InvalidTrace)?;
        // Pass 1: discover busy intervals without contention.
        let pass1 = self.schedule(job, cluster, None, false)?;
        let comm_unions: Vec<Vec<(SimTime, SimTime)>> =
            pass1.logs.iter().map(|l| union(l.comm.clone())).collect();
        let compute_unions: Vec<Vec<(SimTime, SimTime)>> = pass1
            .logs
            .iter()
            .map(|l| union(l.compute.clone()))
            .collect();
        // Pass 2: replay with contention inflation.
        let pass2 = self.schedule(
            job,
            cluster,
            Some((&comm_unions, &compute_unions)),
            self.collect_samples,
        )?;

        let iteration_time = pass2
            .rank_end
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        let comm_time = pass2
            .logs
            .iter()
            .map(|l| total_len(&union(l.comm.clone())))
            .fold(SimTime::ZERO, SimTime::max);
        let compute_time = pass2
            .logs
            .iter()
            .map(|l| total_len(&union(l.compute.clone())))
            .fold(SimTime::ZERO, SimTime::max);
        Ok(Measurement {
            iteration_time,
            rank_end_times: pass2.rank_end,
            comm_time,
            compute_time,
            peak_mem_bytes: job.peak_mem_bytes(),
            kernel_samples: pass2.samples,
        })
    }

    /// One scheduling pass. When `contention` carries pass-1 interval
    /// unions, timed ops are inflated by their overlap fraction.
    #[allow(clippy::type_complexity)]
    fn schedule(
        &self,
        job: &JobTrace,
        cluster: &ClusterSpec,
        contention: Option<(&[Vec<(SimTime, SimTime)>], &[Vec<(SimTime, SimTime)>])>,
        collect_samples: bool,
    ) -> Result<PassResult, ExecError> {
        let n = job.workers.len();
        let mut ranks: Vec<RankState> = (0..n)
            .map(|_| RankState {
                pc: 0,
                host: SimTime::ZERO,
                streams: HashMap::new(),
                parked_on: None,
                done: false,
            })
            .collect();
        let mut logs: Vec<IntervalLog> = vec![IntervalLog::default(); n];
        let mut fired: Vec<HashMap<(u64, u32), SimTime>> = vec![HashMap::new(); n];
        let mut inflight: HashMap<CollKey, Vec<Arrival>> = HashMap::new();
        let mut waiters: HashMap<CollKey, Vec<usize>> = HashMap::new();
        let mut samples: Vec<(KernelKind, SimTime)> = Vec::new();

        let mut runnable: VecDeque<usize> = (0..n).collect();
        while let Some(wi) = runnable.pop_front() {
            if ranks[wi].done || ranks[wi].parked_on.is_some() {
                continue;
            }
            self.advance(
                wi,
                job,
                cluster,
                &mut ranks,
                &mut logs,
                &mut fired,
                &mut inflight,
                &mut waiters,
                &mut runnable,
                contention,
                collect_samples,
                &mut samples,
            );
        }

        let parked: Vec<u32> = ranks
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .map(|(i, _)| job.workers[i].rank)
            .collect();
        if !parked.is_empty() {
            for (i, s) in ranks.iter().enumerate().filter(|(_, s)| !s.done) {
                let ev = job.workers[i].events.get(s.pc);
                eprintln!(
                    "executor deadlock: rank {} pc {} parked_on {:?} next_op {:?}",
                    job.workers[i].rank,
                    s.pc,
                    s.parked_on,
                    ev.map(|e| (e.stream, e.op.name()))
                );
            }
            return Err(ExecError::Deadlock {
                parked_ranks: parked,
            });
        }

        let rank_end = ranks
            .iter()
            .map(|s| {
                let stream_max = s
                    .streams
                    .values()
                    .map(|st| st.ready)
                    .fold(SimTime::ZERO, SimTime::max);
                s.host.max(stream_max)
            })
            .collect();
        Ok(PassResult {
            rank_end,
            logs,
            samples,
        })
    }

    /// How many participants of this collective will actually arrive in a
    /// (possibly sparse) job.
    fn required_participants(&self, job: &JobTrace, desc: &CollectiveDesc) -> usize {
        let members = match job.comm_groups.get(&desc.comm_id) {
            Some(m) => m,
            None => return desc.kind.required_participants(desc.nranks) as usize,
        };
        match desc.kind {
            CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
                let mut req = 0usize;
                for idx in [desc.rank_in_comm, peer] {
                    if let Some(&g) = members.get(idx as usize) {
                        if job.is_present(g) {
                            req += 1;
                        }
                    }
                }
                req.max(1)
            }
            _ => (job.present_count(members) as usize).max(1),
        }
    }

    /// Advances one rank until it parks or finishes. Collective
    /// resolutions performed here push unparked ranks back to `runnable`.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        wi: usize,
        job: &JobTrace,
        cluster: &ClusterSpec,
        ranks: &mut [RankState],
        logs: &mut [IntervalLog],
        fired: &mut [HashMap<(u64, u32), SimTime>],
        inflight: &mut HashMap<CollKey, Vec<Arrival>>,
        waiters: &mut HashMap<CollKey, Vec<usize>>,
        runnable: &mut VecDeque<usize>,
        contention: Option<(&BusyIntervals, &BusyIntervals)>,
        collect_samples: bool,
        samples: &mut Vec<(KernelKind, SimTime)>,
    ) {
        let worker = &job.workers[wi];
        let rank = worker.rank;
        let events = &worker.events;
        loop {
            let pc = ranks[wi].pc;
            if pc >= events.len() {
                ranks[wi].done = true;
                return;
            }
            let ev = &events[pc];

            // Park (without consuming) if the op touches a stream whose
            // tail is an unresolved collective.
            let needs_stream = matches!(
                ev.op,
                DeviceOp::KernelLaunch { .. }
                    | DeviceOp::MemcpyAsync { .. }
                    | DeviceOp::EventRecord { .. }
                    | DeviceOp::StreamWaitEvent { .. }
                    | DeviceOp::StreamSynchronize
                    | DeviceOp::Collective { .. }
            );
            if needs_stream {
                if let Some(key) = ranks[wi].streams.get(&ev.stream).and_then(|s| s.pending) {
                    ranks[wi].parked_on = Some(key);
                    waiters.entry(key).or_default().push(wi);
                    return;
                }
            }
            if matches!(ev.op, DeviceOp::DeviceSynchronize) {
                if let Some(key) = ranks[wi].streams.values().find_map(|s| s.pending) {
                    ranks[wi].parked_on = Some(key);
                    waiters.entry(key).or_default().push(wi);
                    return;
                }
            }

            // Consume the event: host runs its dispatch-gap first.
            ranks[wi].pc += 1;
            let hj = gaussian_factor(
                Key::new(self.seed)
                    .with(1)
                    .with(rank as u64)
                    .with(pc as u64)
                    .finish(),
                self.host_jitter,
            );
            ranks[wi].host += ev.host_delay.scale(hj);
            let host_now = ranks[wi].host;

            match ev.op {
                DeviceOp::Malloc { .. } | DeviceOp::Free { .. } => {}
                DeviceOp::KernelLaunch { kernel } => {
                    let stream = ranks[wi].streams.entry(ev.stream).or_default();
                    let start = stream.ready.max(host_now);
                    let base = self.kernel_model.kernel_time(&kernel, &cluster.gpu);
                    let jit = gaussian_factor(
                        Key::new(self.seed)
                            .with(2)
                            .with(rank as u64)
                            .with(pc as u64)
                            .finish(),
                        self.kernel_jitter,
                    );
                    let mut dur = base.scale(jit);
                    if let Some((comm_u, _)) = contention {
                        let ov = overlap(start, start + dur, &comm_u[wi]);
                        let frac = ov.as_secs_f64() / dur.as_secs_f64().max(1e-12);
                        dur = dur.scale(1.0 + self.contention_compute * frac.min(1.0));
                    }
                    stream.ready = start + dur;
                    logs[wi].compute.push((start, start + dur));
                    if collect_samples {
                        samples.push((kernel, dur));
                    }
                }
                DeviceOp::MemcpyAsync { bytes, kind, sync } => {
                    let stream = ranks[wi].streams.entry(ev.stream).or_default();
                    let start = stream.ready.max(host_now);
                    let dur = self.kernel_model.memcpy_time(bytes, kind, &cluster.gpu);
                    stream.ready = start + dur;
                    logs[wi].compute.push((start, start + dur));
                    if sync {
                        ranks[wi].host = ranks[wi].host.max(start + dur);
                    }
                }
                DeviceOp::EventRecord { event, version } => {
                    let ready = ranks[wi].streams.entry(ev.stream).or_default().ready;
                    fired[wi].insert((event, version), ready.max(host_now));
                }
                DeviceOp::StreamWaitEvent { event, version } => {
                    let fire = fired[wi]
                        .get(&(event, version))
                        .copied()
                        .unwrap_or(SimTime::ZERO);
                    let stream = ranks[wi].streams.entry(ev.stream).or_default();
                    stream.ready = stream.ready.max(fire);
                }
                DeviceOp::EventSynchronize { event, version } => {
                    let fire = fired[wi]
                        .get(&(event, version))
                        .copied()
                        .unwrap_or(SimTime::ZERO);
                    ranks[wi].host = ranks[wi].host.max(fire);
                }
                DeviceOp::StreamSynchronize => {
                    let ready = ranks[wi].streams.entry(ev.stream).or_default().ready;
                    ranks[wi].host = ranks[wi].host.max(ready);
                }
                DeviceOp::DeviceSynchronize => {
                    let ready = ranks[wi]
                        .streams
                        .values()
                        .map(|s| s.ready)
                        .fold(SimTime::ZERO, SimTime::max);
                    ranks[wi].host = ranks[wi].host.max(ready);
                }
                DeviceOp::Collective { desc } => {
                    let key = CollKey::from_desc(&desc);
                    let arrival_time = {
                        let stream = ranks[wi].streams.entry(ev.stream).or_default();
                        let t = stream.ready.max(host_now);
                        stream.pending = Some(key);
                        t
                    };
                    let arrivals = inflight.entry(key).or_default();
                    arrivals.push(Arrival {
                        widx: wi,
                        rank,
                        stream: ev.stream,
                        time: arrival_time,
                        desc,
                    });
                    let required = self.required_participants(job, &desc);
                    if arrivals.len() >= required {
                        let done_arrivals = inflight.remove(&key).unwrap_or_default();
                        self.resolve_collective(key, &done_arrivals, job, cluster, ranks, logs);
                        if let Some(ws) = waiters.remove(&key) {
                            for w in ws {
                                ranks[w].parked_on = None;
                                runnable.push_back(w);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Completes a collective whose (present) participants have arrived.
    fn resolve_collective(
        &self,
        key: CollKey,
        arrivals: &[Arrival],
        job: &JobTrace,
        cluster: &ClusterSpec,
        ranks: &mut [RankState],
        logs: &mut [IntervalLog],
    ) {
        let last = arrivals
            .iter()
            .map(|a| a.time)
            .fold(SimTime::ZERO, SimTime::max);
        let desc = arrivals[0].desc;
        let n = desc.nranks.max(1);
        let setup = SimTime::from_us(self.nccl_setup_us * (1.0 + (n as f64).log2().max(0.0) / 8.0));
        let start = last + setup;

        // Global ranks participating: for p2p, resolve the endpoint pair
        // from the group; for full collectives, the communicator group.
        let global_ranks: Vec<u32> = match desc.kind {
            CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
                match job.comm_groups.get(&desc.comm_id) {
                    Some(members) => [desc.rank_in_comm, peer]
                        .iter()
                        .filter_map(|&i| members.get(i as usize).copied())
                        .collect(),
                    None => arrivals.iter().map(|a| a.rank).collect(),
                }
            }
            _ => job
                .comm_groups
                .get(&desc.comm_id)
                .cloned()
                .unwrap_or_default(),
        };
        let wire = self
            .net_model
            .collective_time(desc.kind, desc.bytes, &global_ranks, cluster);

        for a in arrivals {
            let skew = gaussian_factor(
                Key::new(self.seed)
                    .with(3)
                    .with(key.comm)
                    .with(key.seq as u64)
                    .with(a.rank as u64)
                    .finish(),
                self.collective_skew,
            );
            let dur = wire.scale(skew);
            let stream = ranks[a.widx].streams.entry(a.stream).or_default();
            stream.ready = start + dur;
            stream.pending = None;
            logs[a.widx].comm.push((a.time, start + dur));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::{Dtype, TraceEvent, WorkerTrace};
    use std::collections::BTreeMap;

    fn kernel(m: u64) -> DeviceOp {
        DeviceOp::KernelLaunch {
            kernel: KernelKind::Gemm {
                m,
                n: 1024,
                k: 1024,
                dtype: Dtype::Fp32,
            },
        }
    }

    fn ev(stream: u32, op: DeviceOp, host_us: f64) -> TraceEvent {
        TraceEvent {
            stream: StreamId(stream),
            op,
            host_delay: SimTime::from_us(host_us),
        }
    }

    fn single_rank_job(events: Vec<TraceEvent>) -> JobTrace {
        let mut w = WorkerTrace::new(0);
        w.events = events;
        JobTrace {
            nranks: 1,
            workers: vec![w],
            comm_groups: BTreeMap::new(),
        }
    }

    fn allreduce(comm: u64, seq: u32, bytes: u64, nranks: u32, rank: u32) -> DeviceOp {
        DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::AllReduce,
                comm_id: comm,
                seq,
                bytes,
                nranks,
                rank_in_comm: rank,
            },
        }
    }

    #[test]
    fn sequential_kernels_accumulate() {
        let exec = GroundTruthExecutor::default();
        let cluster = ClusterSpec::h100(1, 1);
        let one = single_rank_job(vec![ev(0, kernel(1024), 5.0)]);
        let two = single_rank_job(vec![ev(0, kernel(1024), 5.0), ev(0, kernel(1024), 5.0)]);
        let m1 = exec.run(&one, &cluster).unwrap();
        let m2 = exec.run(&two, &cluster).unwrap();
        assert!(m2.iteration_time > m1.iteration_time);
        assert!(m2.iteration_time < m1.iteration_time * 3);
    }

    #[test]
    fn parallel_streams_overlap() {
        let exec = GroundTruthExecutor::default();
        let cluster = ClusterSpec::h100(1, 1);
        // Two big kernels on the same stream vs. on two streams.
        let serial = single_rank_job(vec![ev(0, kernel(4096), 1.0), ev(0, kernel(4096), 1.0)]);
        let overlap = single_rank_job(vec![ev(0, kernel(4096), 1.0), ev(1, kernel(4096), 1.0)]);
        let ts = exec.run(&serial, &cluster).unwrap().iteration_time;
        let to = exec.run(&overlap, &cluster).unwrap().iteration_time;
        assert!(
            to.as_secs_f64() < ts.as_secs_f64() * 0.7,
            "serial {ts} overlap {to}"
        );
    }

    #[test]
    fn event_sync_orders_streams() {
        let exec = GroundTruthExecutor::default();
        let cluster = ClusterSpec::h100(1, 1);
        // Kernel A on stream 1; record event; stream 0 waits; kernel B on
        // stream 0 must start after A.
        let job = single_rank_job(vec![
            ev(1, kernel(4096), 1.0),
            ev(
                1,
                DeviceOp::EventRecord {
                    event: 7,
                    version: 0,
                },
                1.0,
            ),
            ev(
                0,
                DeviceOp::StreamWaitEvent {
                    event: 7,
                    version: 0,
                },
                1.0,
            ),
            ev(0, kernel(4096), 1.0),
        ]);
        let serial = single_rank_job(vec![ev(0, kernel(4096), 1.0), ev(0, kernel(4096), 1.0)]);
        let t_dep = exec.run(&job, &cluster).unwrap().iteration_time;
        let t_serial = exec.run(&serial, &cluster).unwrap().iteration_time;
        // With the dependency the two kernels serialize (within jitter).
        let ratio = t_dep.as_secs_f64() / t_serial.as_secs_f64();
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn collective_rendezvous_waits_for_slowest() {
        let exec = GroundTruthExecutor::default();
        let cluster = ClusterSpec::h100(1, 2);
        // Rank 1 computes before joining; rank 0 joins immediately.
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![ev(0, allreduce(1, 0, 1 << 20, 2, 0), 2.0)];
        let mut w1 = WorkerTrace::new(1);
        w1.events = vec![
            ev(0, kernel(8192), 2.0),
            ev(0, allreduce(1, 0, 1 << 20, 2, 1), 2.0),
        ];
        let mut groups = BTreeMap::new();
        groups.insert(1u64, vec![0u32, 1u32]);
        let job = JobTrace {
            nranks: 2,
            workers: vec![w0, w1],
            comm_groups: groups,
        };
        let m = exec.run(&job, &cluster).unwrap();
        // Rank 0's end time includes rank 1's compute (it waited).
        let k = exec.kernel_model.kernel_time(
            &KernelKind::Gemm {
                m: 8192,
                n: 1024,
                k: 1024,
                dtype: Dtype::Fp32,
            },
            &cluster.gpu,
        );
        assert!(
            m.rank_end_times[0] > k,
            "rank0 {} kernel {}",
            m.rank_end_times[0],
            k
        );
        assert!(m.comm_time > SimTime::ZERO);
    }

    #[test]
    fn mismatched_collective_deadlocks() {
        let exec = GroundTruthExecutor::default();
        let cluster = ClusterSpec::h100(1, 2);
        // Rank 0 joins; rank 1 never does; a follower op on the same
        // stream parks rank 0 forever.
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![
            ev(0, allreduce(1, 0, 1024, 2, 0), 1.0),
            ev(0, kernel(512), 1.0),
        ];
        let mut w1 = WorkerTrace::new(1);
        w1.events = vec![ev(0, kernel(512), 1.0)];
        let mut groups = BTreeMap::new();
        groups.insert(1u64, vec![0u32, 1u32]);
        let job = JobTrace {
            nranks: 2,
            workers: vec![w0, w1],
            comm_groups: groups,
        };
        match exec.run(&job, &cluster) {
            Err(ExecError::Deadlock { parked_ranks }) => assert_eq!(parked_ranks, vec![0]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn sparse_job_rendezvous_counts_present_only() {
        let exec = GroundTruthExecutor::default();
        let cluster = ClusterSpec::h100(1, 8);
        // 8-rank communicator, but only rank 0 was emulated (dedup).
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![
            ev(0, allreduce(1, 0, 1 << 26, 8, 0), 1.0),
            ev(0, DeviceOp::StreamSynchronize, 1.0),
        ];
        let mut groups = BTreeMap::new();
        groups.insert(1u64, (0..8u32).collect::<Vec<_>>());
        let job = JobTrace {
            nranks: 8,
            workers: vec![w0],
            comm_groups: groups,
        };
        let m = exec.run(&job, &cluster).unwrap();
        // The wire time must still reflect an 8-rank ring.
        let wire = exec.net_model.collective_time(
            CollectiveKind::AllReduce,
            1 << 26,
            &(0..8u32).collect::<Vec<_>>(),
            &cluster,
        );
        assert!(m.iteration_time >= wire, "{} vs {}", m.iteration_time, wire);
    }

    #[test]
    fn send_recv_pair_matches() {
        let exec = GroundTruthExecutor::default();
        let cluster = ClusterSpec::h100(1, 2);
        let send = DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::Send { peer: 1 },
                comm_id: 9,
                seq: 0,
                bytes: 1 << 20,
                nranks: 2,
                rank_in_comm: 0,
            },
        };
        let recv = DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::Recv { peer: 0 },
                comm_id: 9,
                seq: 0,
                bytes: 1 << 20,
                nranks: 2,
                rank_in_comm: 1,
            },
        };
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![ev(2, send, 1.0), ev(2, DeviceOp::StreamSynchronize, 1.0)];
        let mut w1 = WorkerTrace::new(1);
        w1.events = vec![ev(2, recv, 1.0), ev(2, DeviceOp::StreamSynchronize, 1.0)];
        let mut groups = BTreeMap::new();
        groups.insert(9u64, vec![0u32, 1u32]);
        let job = JobTrace {
            nranks: 2,
            workers: vec![w0, w1],
            comm_groups: groups,
        };
        let m = exec.run(&job, &cluster).unwrap();
        assert!(m.iteration_time > SimTime::ZERO);
        assert!(m.comm_time > SimTime::ZERO);
    }

    #[test]
    fn contention_inflates_overlapped_compute() {
        let cluster = ClusterSpec::h100(1, 2);
        // Both ranks: a long collective on stream 1 overlapping compute on
        // stream 0.
        let build = |rank: u32| {
            let mut w = WorkerTrace::new(rank);
            w.events = vec![
                ev(1, allreduce(1, 0, 1 << 28, 2, rank), 1.0),
                ev(0, kernel(8192), 1.0),
                ev(0, kernel(8192), 1.0),
            ];
            w
        };
        let mut groups = BTreeMap::new();
        groups.insert(1u64, vec![0u32, 1u32]);
        let job = JobTrace {
            nranks: 2,
            workers: vec![build(0), build(1)],
            comm_groups: groups,
        };
        let with = GroundTruthExecutor::default();
        let without = GroundTruthExecutor {
            contention_compute: 0.0,
            ..with
        };
        let tw = with.run(&job, &cluster).unwrap().compute_time;
        let to = without.run(&job, &cluster).unwrap().compute_time;
        assert!(tw > to, "with contention {tw} vs without {to}");
    }

    #[test]
    fn sample_collection_records_kernels() {
        let exec = GroundTruthExecutor {
            collect_samples: true,
            ..Default::default()
        };
        let cluster = ClusterSpec::h100(1, 1);
        let job = single_rank_job(vec![ev(0, kernel(1024), 1.0), ev(0, kernel(2048), 1.0)]);
        let m = exec.run(&job, &cluster).unwrap();
        assert_eq!(m.kernel_samples.len(), 2);
    }

    #[test]
    fn interval_helpers() {
        let u = union(vec![
            (SimTime(10), SimTime(20)),
            (SimTime(15), SimTime(30)),
            (SimTime(40), SimTime(50)),
        ]);
        assert_eq!(
            u,
            vec![(SimTime(10), SimTime(30)), (SimTime(40), SimTime(50))]
        );
        assert_eq!(overlap(SimTime(0), SimTime(100), &u), SimTime(30));
        assert_eq!(overlap(SimTime(25), SimTime(45), &u), SimTime(10));
        assert_eq!(overlap(SimTime(30), SimTime(40), &u), SimTime::ZERO);
        assert_eq!(total_len(&u), SimTime(30));
    }
}
